// Application migrators: the "application-specific task ... in charge of the
// actual transition" (§9).
//
// A Migrator knows how to move one application between host software and a
// network offload target. Controllers (network- or host-controlled) decide
// *when*; migrators implement *how*.
//
// With the unified App contract, "how" collapses to one generic core:
// StateTransferMigrator flips the target's classifier, applies the §9.2
// park policy, and — when enabled — moves the application's typed AppState
// snapshot between the host and offload placements, for *any* registered
// app. ClassifierMigrator is the classic classifier-flip configuration of
// that core (the paper's behaviour: caches re-warm instead of being
// transferred); PaxosLeaderMigrator layers the §9.2 leader election
// (switch-rule rewrite + ballot/sequence choreography) on the same core.
#ifndef INCOD_SRC_ONDEMAND_MIGRATOR_H_
#define INCOD_SRC_ONDEMAND_MIGRATOR_H_

#include <optional>
#include <string>
#include <vector>

#include "src/app/app.h"
#include "src/device/offload_target.h"
#include "src/net/switch.h"
#include "src/paxos/p4xos.h"
#include "src/paxos/software_roles.h"
#include "src/sim/simulation.h"

namespace incod {

enum class Placement { kHost, kNetwork };

const char* PlacementName(Placement placement);

struct TransitionEvent {
  SimTime at = 0;
  Placement to = Placement::kHost;
};

// Where an application currently runs, and how to move it.
class Migrator {
 public:
  virtual ~Migrator() = default;

  virtual void ShiftToNetwork() = 0;
  virtual void ShiftToHost() = 0;
  virtual std::string MigratorName() const = 0;

  Placement placement() const { return placement_; }
  const std::vector<TransitionEvent>& transitions() const { return transitions_; }

 protected:
  void RecordTransition(SimTime at, Placement to) {
    placement_ = to;
    transitions_.push_back(TransitionEvent{at, to});
  }

 private:
  Placement placement_ = Placement::kHost;
  std::vector<TransitionEvent> transitions_;
};

// §9.2 discusses three ways to park the inactive hardware app:
//   kGatedPark  — "keeps LaKe programmed but inactive": clock-gated logic,
//                 memories in reset. The paper's choice ("the best of both
//                 performance and power efficiency worlds"). Caches re-warm
//                 after each shift.
//   kKeepWarm   — keep the app's memories live while the host serves:
//                 instant warm shifts, "reduced power saving".
//   kReprogram  — load the bitstream only when needed (partial
//                 reconfiguration): deepest idle power (app modules power
//                 gated) but "a momentary traffic halt" on every shift.
enum class ParkPolicy { kGatedPark, kKeepWarm, kReprogram };

const char* ParkPolicyName(ParkPolicy policy);

// Generic placement migrator: classifier flip + park policy on any
// OffloadTarget, plus an optional typed-state transfer between the host and
// offload placements of the app. Works for any registered app — the state
// moves through the App snapshot/restore contract, not per-app plumbing.
class StateTransferMigrator : public Migrator {
 public:
  struct Options {
    bool clock_gate_when_idle = true;
    bool reset_memories_when_idle = true;
    // Reconfiguration halt; only used by FromPolicy(kReprogram).
    SimDuration reprogram_halt = 0;
    ParkPolicy policy = ParkPolicy::kGatedPark;
    // Move the outgoing placement's AppState into the incoming one on every
    // shift. Off by default (the paper's shifts re-warm caches, §9.2); on,
    // the incoming placement starts warm.
    bool transfer_state = false;

    static Options FromPolicy(ParkPolicy policy,
                              SimDuration reprogram_halt = Milliseconds(40));
  };

  // `host_app` / `offload_app` are the two placements of the application
  // (may be null when transfer_state is off — the flip needs neither).
  StateTransferMigrator(Simulation& sim, OffloadTarget& target, Options options,
                        App* host_app = nullptr, App* offload_app = nullptr);

  void ShiftToNetwork() override;
  void ShiftToHost() override;
  std::string MigratorName() const override;

  // Crash-recovery surface. AbandonToHost is ShiftToHost minus the state
  // transfer: the offload placement is dead, so nothing can be snapshotted
  // out of it — the classifier flips home and the park state is applied, but
  // the host app keeps whatever it had (or gets a checkpoint restored
  // separately). Safe on a killed target: only classifier/park setters run.
  virtual void AbandonToHost();
  // Snapshot of the *offload* placement's typed state, for periodic
  // checkpointing to the home host. Empty unless the app is offloaded and
  // has actually served there (mid-reprogram snapshots would be empty-state).
  std::optional<AppState> CheckpointOffloadState() const;
  // Installs a previously-taken checkpoint into the given placement's app,
  // running the same MutateStateForTransfer hook a live transfer would (the
  // Paxos ballot bump applies to restores too).
  void RestoreCheckpointTo(Placement to, AppState state);
  bool offload_served() const { return offload_served_; }
  uint64_t checkpoint_restores() const { return checkpoint_restores_; }

  const Options& options() const { return options_; }
  // Warm/cold knob for subsequent shifts: on, every shift carries the typed
  // AppState snapshot; off, the paper's classifier-flip (caches re-warm).
  // The rack orchestrator applies each app's per-app policy through this.
  virtual void SetTransferState(bool enabled) { options_.transfer_state = enabled; }
  bool transfer_state() const { return options_.transfer_state; }
  OffloadTarget& target() { return target_; }
  const OffloadTarget& target() const { return target_; }
  App* host_app() const { return host_app_; }
  App* offload_app() const { return offload_app_; }
  uint64_t state_transfers() const { return state_transfers_; }

 protected:
  Simulation& sim() { return sim_; }
  // Hook: adjust the snapshot in flight (e.g. the Paxos ballot bump).
  virtual void MutateStateForTransfer(AppState& state, Placement to) {
    (void)state;
    (void)to;
  }

 private:
  void TransferTo(Placement to);
  void ApplyParkedState();

  Simulation& sim_;
  OffloadTarget& target_;
  Options options_;
  App* host_app_;
  App* offload_app_;
  // The offload app has been activated since the last host shift; a shift
  // back before activation (mid-reprogram) must not transfer its state.
  bool offload_served_ = false;
  uint64_t state_transfers_ = 0;
  uint64_t checkpoint_restores_ = 0;
};

// KVS / DNS migrator: the classifier-flip configuration of the generic
// core, reproducing the paper's behaviour exactly (no state transfer unless
// asked). Works against any OffloadTarget — unsupported park knobs are
// no-ops (a switch ASIC parks as kKeepWarm no matter what). Configurable to
// reproduce the Fig 6 experiment (which ran with gating disabled ->
// kKeepWarm).
class ClassifierMigrator : public StateTransferMigrator {
 public:
  using Options = StateTransferMigrator::Options;

  ClassifierMigrator(Simulation& sim, OffloadTarget& target, Options options,
                     App* host_app = nullptr, App* offload_app = nullptr)
      : StateTransferMigrator(sim, target, options, host_app, offload_app) {}
  ClassifierMigrator(Simulation& sim, OffloadTarget& target)
      : ClassifierMigrator(sim, target, Options{}) {}

  std::string MigratorName() const override;
};

// Paxos leader migrator (§9.2): "we use a centralized controller to initiate
// the shift ... the controller modifies switch forwarding rules to send
// messages to the new leader". Layers leader election on the generic core:
//   * transfer_state off (the paper): the incoming leader Reset()s to a
//     higher ballot, starts from sequence 1, and re-learns the next usable
//     instance from acceptor hints and client retries — Fig 7's ~100 ms gap.
//   * transfer_state on (the generic path): ballot and sequence ride the
//     typed snapshot, so the incoming leader continues without a gap.
class PaxosLeaderMigrator : public StateTransferMigrator {
 public:
  struct Options {
    // false (the paper's behaviour): the incoming leader waits passively
    // for sequence hints; proposals are released after `learning_timeout`,
    // and client retries drive recovery — producing Fig 7's ~100 ms gap.
    // true: an active phase-1 probe learns the sequence in one round trip.
    bool active_probe = false;
    SimDuration learning_timeout = Milliseconds(100);
    // Carry ballot + sequence through the generic state-transfer path
    // instead of re-learning (no service gap).
    bool transfer_state = false;
  };

  PaxosLeaderMigrator(Simulation& sim, L2Switch& sw, NodeId leader_service,
                      SoftwareLeader& software_leader, int software_port,
                      OffloadTarget& hardware_target, P4xosFpgaApp& hardware_leader,
                      int hardware_port, Options options);
  PaxosLeaderMigrator(Simulation& sim, L2Switch& sw, NodeId leader_service,
                      SoftwareLeader& software_leader, int software_port,
                      OffloadTarget& hardware_target, P4xosFpgaApp& hardware_leader,
                      int hardware_port)
      : PaxosLeaderMigrator(sim, sw, leader_service, software_leader, software_port,
                            hardware_target, hardware_leader, hardware_port, Options{}) {}

  void ShiftToNetwork() override;
  void ShiftToHost() override;
  // Failover: the hardware leader died, so there is no outgoing state to
  // carry — the software leader Reset()s to a fresh higher ballot and
  // re-learns (or a checkpoint restore follows and supersedes the learning).
  void AbandonToHost() override;
  std::string MigratorName() const override { return "paxos-leader"; }

  // Keeps the leader-election options in lockstep with the generic core's
  // transfer knob (the orchestrator's warm/cold policy flows through here).
  void SetTransferState(bool enabled) override {
    StateTransferMigrator::SetTransferState(enabled);
    leader_options_.transfer_state = enabled;
  }

  uint16_t current_ballot() const { return ballot_; }
  const Options& leader_options() const { return leader_options_; }

 protected:
  void MutateStateForTransfer(AppState& state, Placement to) override;

 private:
  void RepointService(int port);
  void ArmLearningTimeout(Placement for_placement);

  L2Switch& switch_;
  NodeId leader_service_;
  SoftwareLeader& software_leader_;
  int software_port_;
  P4xosFpgaApp& hardware_leader_;
  int hardware_port_;
  Options leader_options_;
  uint16_t ballot_;
};

}  // namespace incod

#endif  // INCOD_SRC_ONDEMAND_MIGRATOR_H_
