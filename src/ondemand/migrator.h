// Application migrators: the "application-specific task ... in charge of the
// actual transition" (§9).
//
// A Migrator knows how to move one application between host software and a
// network offload target. Controllers (network- or host-controlled) decide
// *when*; migrators implement *how*. KVS and DNS shifts are classifier flips
// plus power-state housekeeping on any OffloadTarget (FPGA NIC, SmartNIC, or
// switch ASIC program); the Paxos shift is a leader election through the
// central controller's switch-rule rewrite (§9.2).
#ifndef INCOD_SRC_ONDEMAND_MIGRATOR_H_
#define INCOD_SRC_ONDEMAND_MIGRATOR_H_

#include <string>
#include <vector>

#include "src/device/offload_target.h"
#include "src/net/switch.h"
#include "src/paxos/p4xos.h"
#include "src/paxos/software_roles.h"
#include "src/sim/simulation.h"

namespace incod {

enum class Placement { kHost, kNetwork };

const char* PlacementName(Placement placement);

struct TransitionEvent {
  SimTime at = 0;
  Placement to = Placement::kHost;
};

// Where an application currently runs, and how to move it.
class Migrator {
 public:
  virtual ~Migrator() = default;

  virtual void ShiftToNetwork() = 0;
  virtual void ShiftToHost() = 0;
  virtual std::string MigratorName() const = 0;

  Placement placement() const { return placement_; }
  const std::vector<TransitionEvent>& transitions() const { return transitions_; }

 protected:
  void RecordTransition(SimTime at, Placement to) {
    placement_ = to;
    transitions_.push_back(TransitionEvent{at, to});
  }

 private:
  Placement placement_ = Placement::kHost;
  std::vector<TransitionEvent> transitions_;
};

// §9.2 discusses three ways to park the inactive hardware app:
//   kGatedPark  — "keeps LaKe programmed but inactive": clock-gated logic,
//                 memories in reset. The paper's choice ("the best of both
//                 performance and power efficiency worlds"). Caches re-warm
//                 after each shift.
//   kKeepWarm   — keep the app's memories live while the host serves:
//                 instant warm shifts, "reduced power saving".
//   kReprogram  — load the bitstream only when needed (partial
//                 reconfiguration): deepest idle power (app modules power
//                 gated) but "a momentary traffic halt" on every shift.
enum class ParkPolicy { kGatedPark, kKeepWarm, kReprogram };

const char* ParkPolicyName(ParkPolicy policy);

// KVS / DNS migrator: flips the target's classifier, applying the configured
// park policy while the host serves. Works against any OffloadTarget —
// unsupported park knobs are no-ops (a switch ASIC parks as kKeepWarm no
// matter what). Configurable to reproduce the Fig 6 experiment (which ran
// with gating disabled -> kKeepWarm).
class ClassifierMigrator : public Migrator {
 public:
  struct Options {
    bool clock_gate_when_idle = true;
    bool reset_memories_when_idle = true;
    // Reconfiguration halt; only used by FromPolicy(kReprogram).
    SimDuration reprogram_halt = 0;
    ParkPolicy policy = ParkPolicy::kGatedPark;

    static Options FromPolicy(ParkPolicy policy,
                              SimDuration reprogram_halt = Milliseconds(40));
  };

  ClassifierMigrator(Simulation& sim, OffloadTarget& target, Options options);
  ClassifierMigrator(Simulation& sim, OffloadTarget& target)
      : ClassifierMigrator(sim, target, Options{}) {}

  void ShiftToNetwork() override;
  void ShiftToHost() override;
  std::string MigratorName() const override;

  const Options& options() const { return options_; }
  OffloadTarget& target() { return target_; }

 private:
  void ApplyParkedState();

  Simulation& sim_;
  OffloadTarget& target_;
  Options options_;
};

// Paxos leader migrator (§9.2): "we use a centralized controller to initiate
// the shift ... the controller modifies switch forwarding rules to send
// messages to the new leader". The incoming leader starts from sequence
// number 1 with a higher ballot and re-learns the next usable instance from
// acceptor hints and client retries.
class PaxosLeaderMigrator : public Migrator {
 public:
  struct Options {
    // false (the paper's behaviour): the incoming leader waits passively
    // for sequence hints; proposals are released after `learning_timeout`,
    // and client retries drive recovery — producing Fig 7's ~100 ms gap.
    // true: an active phase-1 probe learns the sequence in one round trip.
    bool active_probe = false;
    SimDuration learning_timeout = Milliseconds(100);
  };

  PaxosLeaderMigrator(Simulation& sim, L2Switch& sw, NodeId leader_service,
                      SoftwareLeader& software_leader, int software_port,
                      OffloadTarget& hardware_target, P4xosFpgaApp& hardware_leader,
                      int hardware_port, Options options);
  PaxosLeaderMigrator(Simulation& sim, L2Switch& sw, NodeId leader_service,
                      SoftwareLeader& software_leader, int software_port,
                      OffloadTarget& hardware_target, P4xosFpgaApp& hardware_leader,
                      int hardware_port)
      : PaxosLeaderMigrator(sim, sw, leader_service, software_leader, software_port,
                            hardware_target, hardware_leader, hardware_port, Options{}) {}

  void ShiftToNetwork() override;
  void ShiftToHost() override;
  std::string MigratorName() const override { return "paxos-leader"; }

  uint16_t current_ballot() const { return ballot_; }
  const Options& options() const { return options_; }

 private:
  void RepointService(int port);
  void ArmLearningTimeout(Placement for_placement);

  Simulation& sim_;
  L2Switch& switch_;
  NodeId leader_service_;
  SoftwareLeader& software_leader_;
  int software_port_;
  OffloadTarget& hardware_target_;
  P4xosFpgaApp& hardware_leader_;
  int hardware_port_;
  Options options_;
  uint16_t ballot_;
};

}  // namespace incod

#endif  // INCOD_SRC_ONDEMAND_MIGRATOR_H_
