#include "src/ondemand/rack.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace incod {

RackPowerLedger::RackPowerLedger(double budget_watts) : budget_(budget_watts) {}

double RackPowerLedger::committed_watts() const {
  double total = 0;
  for (const auto& [key, watts] : commitments_) {
    total += watts;
  }
  return total;
}

double RackPowerLedger::RemainingWatts() const {
  if (unlimited()) {
    return std::numeric_limits<double>::infinity();
  }
  return budget_ - committed_watts();
}

bool RackPowerLedger::TryCommit(const std::string& key, double watts) {
  if (watts < 0) {
    throw std::invalid_argument("RackPowerLedger: negative commitment");
  }
  if (!unlimited()) {
    double prior = 0;
    auto it = commitments_.find(key);
    if (it != commitments_.end()) {
      prior = it->second;
    }
    if (committed_watts() - prior + watts > budget_) {
      return false;
    }
  }
  commitments_[key] = watts;
  return true;
}

void RackPowerLedger::Release(const std::string& key) { commitments_.erase(key); }

// ---------------------------------------------------------------------------

RackOrchestrator::RackOrchestrator(Simulation& sim, RackOrchestratorConfig config)
    : sim_(sim), config_(config), ledger_(config.power_budget_watts) {}

size_t RackOrchestrator::AddApp(RackAppSpec spec) {
  if (started_) {
    throw std::logic_error("RackOrchestrator: AddApp after Start");
  }
  if (spec.software_watts == nullptr || spec.measured_rate_pps == nullptr) {
    throw std::invalid_argument("RackOrchestrator: app needs rate + power models");
  }
  // App names key the shared ledger: duplicates would silently merge two
  // apps' budget commitments into one slot.
  if (spec.name.empty()) {
    throw std::invalid_argument("RackOrchestrator: app needs a name");
  }
  for (const auto& existing : apps_) {
    if (existing.spec.name == spec.name) {
      throw std::invalid_argument("RackOrchestrator: duplicate app name " + spec.name);
    }
  }
  for (const auto& option : spec.options) {
    if (option.target == nullptr || option.migrator == nullptr ||
        option.network_watts == nullptr) {
      throw std::invalid_argument("RackOrchestrator: incomplete placement option");
    }
  }
  AppState state;
  state.spec = std::move(spec);
  apps_.push_back(std::move(state));
  return apps_.size() - 1;
}

void RackOrchestrator::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  SchedulePeriodic(sim_, config_.check_period, config_.check_period, [this] {
    if (stopped_) {
      return false;
    }
    Tick();
    return true;
  });
  SchedulePeriodic(sim_, config_.sample_period, config_.sample_period, [this] {
    if (stopped_) {
      return false;
    }
    Sample();
    return true;
  });
}

const RackPlacementOption* RackOrchestrator::current_option(size_t index) const {
  const AppState& app = apps_.at(index);
  if (app.active_option < 0) {
    return nullptr;
  }
  return &app.spec.options[static_cast<size_t>(app.active_option)];
}

uint64_t RackOrchestrator::ShiftsToTarget(const OffloadTarget& target) const {
  auto it = shifts_to_target_.find(&target);
  return it == shifts_to_target_.end() ? 0 : it->second;
}

double RackOrchestrator::CommittedPps(const OffloadTarget& target) const {
  double total = 0;
  for (const auto& app : apps_) {
    if (app.active_option >= 0 &&
        app.spec.options[static_cast<size_t>(app.active_option)].target == &target) {
      total += app.committed_rate_pps;
    }
  }
  return total;
}

void RackOrchestrator::Tick() {
  for (auto& app : apps_) {
    DecideForApp(app);
  }
}

void RackOrchestrator::Sample() {
  const SimTime now = sim_.Now();
  committed_series_.Append(now, ledger_.committed_watts());
  // Measured watts across the distinct targets the rack can offload to.
  double measured = 0;
  std::vector<const OffloadTarget*> seen;
  size_t offloaded = 0;
  for (const auto& app : apps_) {
    if (app.active_option >= 0) {
      ++offloaded;
    }
    for (const auto& option : app.spec.options) {
      if (std::find(seen.begin(), seen.end(), option.target) == seen.end()) {
        seen.push_back(option.target);
        measured += option.target->OffloadPowerWatts();
      }
    }
  }
  measured_series_.Append(now, measured);
  offloaded_series_.Append(now, static_cast<double>(offloaded));
}

bool RackOrchestrator::OptionEligible(const AppState& app,
                                      const RackPlacementOption& option,
                                      double rate, bool is_current) const {
  if (!is_current && option.target->reprogramming()) {
    return false;  // Mid-reconfiguration: the data path is halted.
  }
  const double capacity = option.target->OffloadCapacityPps();
  if (capacity > 0) {
    // Capacity already promised to *other* apps on this target.
    double committed = CommittedPps(*option.target);
    if (app.active_option >= 0 &&
        app.spec.options[static_cast<size_t>(app.active_option)].target == option.target) {
      committed -= app.committed_rate_pps;
    }
    if (committed + rate > capacity) {
      return false;
    }
  }
  return true;
}

double RackOrchestrator::PredictOptionWatts(const RackPlacementOption& option,
                                            double rate) const {
  double watts = option.network_watts(rate);
  if (option.policy == ParkPolicy::kReprogram &&
      option.target->Traits().supports_reprogramming) {
    // Bias against halt-incurring placements so warm targets win ties.
    watts += config_.reprogram_penalty_watts;
  }
  return watts;
}

void RackOrchestrator::DecideForApp(AppState& app) {
  ++decisions_;
  const SimTime now = sim_.Now();
  if (now - app.last_shift < config_.min_dwell) {
    return;
  }
  // Park while the app's own target reprograms: the shift we started is
  // still in flight (data path halted, state not yet installed), so any
  // decision now would act on a placement that does not exist yet.
  if (app.active_option >= 0 &&
      app.spec.options[static_cast<size_t>(app.active_option)].target->reprogramming()) {
    ++reprogram_deferrals_;
    decision_log_.push_back(RackDecisionRecord{
        RackDecisionRecord::Kind::kDeferral, now, app.spec.name,
        app.spec.options[static_cast<size_t>(app.active_option)].target->TargetName(),
        false});
    return;
  }
  const double rate = app.spec.measured_rate_pps();
  const double software = app.spec.software_watts(rate);

  // Greedy choice: cheapest eligible target at the measured rate. Ranking
  // uses the reprogram-penalized prediction so warm targets win ties; the
  // ledger only ever carries the unpenalized (real) watts.
  int best = -1;
  double best_ranked = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < app.spec.options.size(); ++i) {
    const auto& option = app.spec.options[i];
    if (!OptionEligible(app, option, rate,
                        static_cast<int>(i) == app.active_option)) {
      continue;
    }
    const double ranked = PredictOptionWatts(option, rate);
    if (ranked < best_ranked) {
      best_ranked = ranked;
      best = static_cast<int>(i);
    }
  }

  // PDU headroom an offload actually consumes: the increment over what the
  // host draws anyway when the app idles at home.
  auto commit_watts = [&](int index) {
    const double real = app.spec.options[static_cast<size_t>(index)].network_watts(rate);
    return std::max(0.0, real - app.spec.software_watts(0));
  };

  // Every shift is a classifier flip + optional typed-state transfer
  // through the generic migrator core; the app's warm/cold policy decides
  // whether state rides along.
  auto apply_policy = [&](StateTransferMigrator& migrator) {
    migrator.SetTransferState(app.spec.warm_migration);
  };
  auto count_shift = [&](RackDecisionRecord::Kind kind, const std::string& target) {
    ++total_shifts_;
    if (app.spec.warm_migration) {
      ++warm_shifts_;
    }
    decision_log_.push_back(RackDecisionRecord{kind, now, app.spec.name, target,
                                               app.spec.warm_migration});
  };
  auto place_on = [&](int index) {
    auto& option = app.spec.options[static_cast<size_t>(index)];
    apply_policy(*option.migrator);
    option.migrator->ShiftToNetwork();
    app.active_option = index;
    app.committed_rate_pps = rate;
    app.last_shift = now;
    ++shifts_to_target_[option.target];
    count_shift(RackDecisionRecord::Kind::kShift, option.target->TargetName());
  };
  auto go_home = [&](RackPlacementOption& from) {
    apply_policy(*from.migrator);
    from.migrator->ShiftToHost();
    ledger_.Release(LedgerKey(app));
    app.active_option = -1;
    app.committed_rate_pps = 0;
    app.last_shift = now;
    count_shift(RackDecisionRecord::Kind::kShiftHome, std::string());
  };

  if (app.active_option < 0) {
    // On host: offload if the best target saves enough and the shared
    // budget can absorb it.
    if (best < 0 || software - best_ranked < config_.min_saving_watts) {
      return;
    }
    if (!ledger_.TryCommit(LedgerKey(app), commit_watts(best))) {
      return;  // PDU headroom exhausted: stay home.
    }
    place_on(best);
    return;
  }

  // Offloaded: re-evaluate the current placement at today's rate.
  auto& current = app.spec.options[static_cast<size_t>(app.active_option)];
  const double current_watts = current.network_watts(rate);
  const bool over_capacity = !OptionEligible(app, current, rate, /*is_current=*/true);
  if (over_capacity || software + config_.min_saving_watts < current_watts) {
    go_home(current);
    return;
  }
  // A strictly cheaper eligible target may have freed up since placement:
  // keep the greedy invariant by migrating over (through a host bounce, the
  // only transition migrators provide).
  if (best >= 0 && best != app.active_option &&
      PredictOptionWatts(current, rate) - best_ranked >= config_.min_saving_watts) {
    if (ledger_.TryCommit(LedgerKey(app), commit_watts(best))) {
      // Warm apps carry their state through the host bounce: the outgoing
      // placement snapshots into the host app, and place_on() moves the
      // host app's state onto the incoming target.
      apply_policy(*current.migrator);
      current.migrator->ShiftToHost();
      place_on(best);
      return;
    }
  }
  // Keep the ledger tracking the rate actually served (budget re-check: a
  // risen rate may no longer fit the shared headroom — if so, go home).
  if (!ledger_.TryCommit(LedgerKey(app), commit_watts(app.active_option))) {
    go_home(current);
    return;
  }
  app.committed_rate_pps = rate;
}

}  // namespace incod
