#include "src/ondemand/rack.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace incod {

RackPowerLedger::RackPowerLedger(double budget_watts) : budget_(budget_watts) {}

double RackPowerLedger::committed_watts() const {
  double total = 0;
  for (const auto& [key, watts] : commitments_) {
    total += watts;
  }
  return total;
}

double RackPowerLedger::RemainingWatts() const {
  if (unlimited()) {
    return std::numeric_limits<double>::infinity();
  }
  return budget_ - committed_watts();
}

bool RackPowerLedger::TryCommit(const std::string& key, double watts) {
  if (watts < 0) {
    throw std::invalid_argument("RackPowerLedger: negative commitment");
  }
  if (!unlimited()) {
    double prior = 0;
    auto it = commitments_.find(key);
    if (it != commitments_.end()) {
      prior = it->second;
    }
    if (committed_watts() - prior + watts > budget_) {
      return false;
    }
  }
  commitments_[key] = watts;
  return true;
}

void RackPowerLedger::Release(const std::string& key) { commitments_.erase(key); }

// ---------------------------------------------------------------------------

RackOrchestrator::RackOrchestrator(Simulation& sim, RackOrchestratorConfig config)
    : sim_(sim), config_(config), ledger_(config.power_budget_watts) {}

size_t RackOrchestrator::AddApp(RackAppSpec spec) {
  if (started_) {
    throw std::logic_error("RackOrchestrator: AddApp after Start");
  }
  if (spec.software_watts == nullptr || spec.measured_rate_pps == nullptr) {
    throw std::invalid_argument("RackOrchestrator: app needs rate + power models");
  }
  // App names key the shared ledger: duplicates would silently merge two
  // apps' budget commitments into one slot.
  if (spec.name.empty()) {
    throw std::invalid_argument("RackOrchestrator: app needs a name");
  }
  for (const auto& existing : apps_) {
    if (existing.spec.name == spec.name) {
      throw std::invalid_argument("RackOrchestrator: duplicate app name " + spec.name);
    }
  }
  for (const auto& option : spec.options) {
    if (option.target == nullptr || option.migrator == nullptr ||
        option.network_watts == nullptr) {
      throw std::invalid_argument("RackOrchestrator: incomplete placement option");
    }
  }
  ManagedApp state;
  state.spec = std::move(spec);
  apps_.push_back(std::move(state));
  return apps_.size() - 1;
}

void RackOrchestrator::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  SchedulePeriodic(sim_, config_.check_period, config_.check_period, [this] {
    if (stopped_) {
      return false;
    }
    Tick();
    return true;
  });
  SchedulePeriodic(sim_, config_.sample_period, config_.sample_period, [this] {
    if (stopped_) {
      return false;
    }
    Sample();
    return true;
  });
  if (config_.heartbeat_period > 0) {
    SchedulePeriodic(sim_, config_.heartbeat_period, config_.heartbeat_period, [this] {
      if (stopped_) {
        return false;
      }
      Heartbeat();
      return true;
    });
  }
  for (size_t i = 0; i < apps_.size(); ++i) {
    const SimDuration period = CheckpointPeriodFor(apps_[i]);
    if (period <= 0) {
      continue;
    }
    SchedulePeriodic(sim_, period, period, [this, i] {
      if (stopped_) {
        return false;
      }
      CheckpointApp(apps_[i]);
      return true;
    });
  }
}

SimDuration RackOrchestrator::CheckpointPeriodFor(const ManagedApp& app) const {
  return app.spec.checkpoint_period >= 0 ? app.spec.checkpoint_period
                                         : config_.checkpoint_period;
}

const RackPlacementOption* RackOrchestrator::current_option(size_t index) const {
  const ManagedApp& app = apps_.at(index);
  if (app.active_option < 0) {
    return nullptr;
  }
  return &app.spec.options[static_cast<size_t>(app.active_option)];
}

uint64_t RackOrchestrator::ShiftsToTarget(const OffloadTarget& target) const {
  auto it = shifts_to_target_.find(&target);
  return it == shifts_to_target_.end() ? 0 : it->second;
}

double RackOrchestrator::OffloadDemandWatts() const {
  double demand = 0;
  for (const auto& app : apps_) {
    if (app.active_option >= 0) {
      const auto it = ledger_.commitments().find(app.spec.name);
      demand += it != ledger_.commitments().end() ? it->second : 0;
      continue;
    }
    // At home: the cheapest alive option's would-be ledger increment at the
    // measured rate (an upper bound on what the next tick could commit).
    const double rate = app.spec.measured_rate_pps();
    const double home_idle = app.spec.software_watts(0);
    double best = std::numeric_limits<double>::infinity();
    for (const auto& option : app.spec.options) {
      if (!option.target->TargetAlive()) {
        continue;
      }
      best = std::min(best, std::max(0.0, option.network_watts(rate) - home_idle));
    }
    if (best < std::numeric_limits<double>::infinity()) {
      demand += best;
    }
  }
  return demand;
}

double RackOrchestrator::CommittedPps(const OffloadTarget& target) const {
  double total = 0;
  for (const auto& app : apps_) {
    if (app.active_option >= 0 &&
        app.spec.options[static_cast<size_t>(app.active_option)].target == &target) {
      total += app.committed_rate_pps;
    }
  }
  return total;
}

void RackOrchestrator::Tick() {
  for (auto& app : apps_) {
    DecideForApp(app);
  }
}

void RackOrchestrator::Sample() {
  const SimTime now = sim_.Now();
  committed_series_.Append(now, ledger_.committed_watts());
  // Measured watts across the distinct targets the rack can offload to.
  double measured = 0;
  std::vector<const OffloadTarget*> seen;
  size_t offloaded = 0;
  for (const auto& app : apps_) {
    if (app.active_option >= 0) {
      ++offloaded;
    }
    for (const auto& option : app.spec.options) {
      if (std::find(seen.begin(), seen.end(), option.target) == seen.end()) {
        seen.push_back(option.target);
        measured += option.target->OffloadPowerWatts();
      }
    }
  }
  measured_series_.Append(now, measured);
  offloaded_series_.Append(now, static_cast<double>(offloaded));
}

bool RackOrchestrator::OptionEligible(const ManagedApp& app,
                                      const RackPlacementOption& option,
                                      double rate, bool is_current) const {
  if (!option.target->TargetAlive()) {
    return false;  // Dead silicon cannot host anything.
  }
  if (!is_current && option.target->reprogramming()) {
    return false;  // Mid-reconfiguration: the data path is halted.
  }
  const double capacity = option.target->OffloadCapacityPps();
  if (capacity > 0) {
    // Capacity already promised to *other* apps on this target.
    double committed = CommittedPps(*option.target);
    if (app.active_option >= 0 &&
        app.spec.options[static_cast<size_t>(app.active_option)].target == option.target) {
      committed -= app.committed_rate_pps;
    }
    if (committed + rate > capacity) {
      return false;
    }
  }
  return true;
}

double RackOrchestrator::PredictOptionWatts(const RackPlacementOption& option,
                                            double rate) const {
  double watts = option.network_watts(rate);
  if (option.policy == ParkPolicy::kReprogram &&
      option.target->Traits().supports_reprogramming) {
    // Bias against halt-incurring placements so warm targets win ties.
    watts += config_.reprogram_penalty_watts;
  }
  return watts;
}

void RackOrchestrator::DecideForApp(ManagedApp& app) {
  ++decisions_;
  const SimTime now = sim_.Now();
  if (now - app.last_shift < config_.min_dwell) {
    return;
  }
  // A dead current placement belongs to the failure detector: recovery must
  // abandon (never snapshot state out of dead hardware), so an economics
  // tick that would ShiftToHost has to stand aside until the heartbeat
  // declares the target failed.
  if (app.active_option >= 0 &&
      !app.spec.options[static_cast<size_t>(app.active_option)].target->TargetAlive()) {
    return;
  }
  // Park while the app's own target reprograms: the shift we started is
  // still in flight (data path halted, state not yet installed), so any
  // decision now would act on a placement that does not exist yet.
  if (app.active_option >= 0 &&
      app.spec.options[static_cast<size_t>(app.active_option)].target->reprogramming()) {
    ++reprogram_deferrals_;
    decision_log_.push_back(RackDecisionRecord{
        RackDecisionRecord::Kind::kDeferral, now, app.spec.name,
        app.spec.options[static_cast<size_t>(app.active_option)].target->TargetName(),
        false});
    return;
  }
  const double rate = app.spec.measured_rate_pps();
  const double software = app.spec.software_watts(rate);

  // Greedy choice: cheapest eligible target at the measured rate. Ranking
  // uses the reprogram-penalized prediction so warm targets win ties; the
  // ledger only ever carries the unpenalized (real) watts.
  int best = -1;
  double best_ranked = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < app.spec.options.size(); ++i) {
    const auto& option = app.spec.options[i];
    if (!OptionEligible(app, option, rate,
                        static_cast<int>(i) == app.active_option)) {
      continue;
    }
    const double ranked = PredictOptionWatts(option, rate);
    if (ranked < best_ranked) {
      best_ranked = ranked;
      best = static_cast<int>(i);
    }
  }

  // PDU headroom an offload actually consumes: the increment over what the
  // host draws anyway when the app idles at home.
  auto commit_watts = [&](int index) {
    const double real = app.spec.options[static_cast<size_t>(index)].network_watts(rate);
    return std::max(0.0, real - app.spec.software_watts(0));
  };

  // Every shift is a classifier flip + optional typed-state transfer
  // through the generic migrator core; the app's warm/cold policy decides
  // whether state rides along.
  auto apply_policy = [&](StateTransferMigrator& migrator) {
    migrator.SetTransferState(app.spec.warm_migration);
  };
  auto count_shift = [&](RackDecisionRecord::Kind kind, const std::string& target) {
    ++total_shifts_;
    if (app.spec.warm_migration) {
      ++warm_shifts_;
    }
    decision_log_.push_back(RackDecisionRecord{kind, now, app.spec.name, target,
                                               app.spec.warm_migration});
  };
  auto place_on = [&](int index) {
    auto& option = app.spec.options[static_cast<size_t>(index)];
    apply_policy(*option.migrator);
    option.migrator->ShiftToNetwork();
    app.active_option = index;
    app.committed_rate_pps = rate;
    app.last_shift = now;
    ++shifts_to_target_[option.target];
    count_shift(RackDecisionRecord::Kind::kShift, option.target->TargetName());
  };
  auto go_home = [&]() { ShiftAppHome(app, /*abandon=*/false); };

  if (app.active_option < 0) {
    // On host: offload if the best target saves enough and the shared
    // budget can absorb it.
    if (best < 0 || software - best_ranked < config_.min_saving_watts) {
      return;
    }
    if (!ledger_.TryCommit(LedgerKey(app), commit_watts(best))) {
      return;  // PDU headroom exhausted: stay home.
    }
    place_on(best);
    return;
  }

  // Offloaded: re-evaluate the current placement at today's rate.
  auto& current = app.spec.options[static_cast<size_t>(app.active_option)];
  const double current_watts = current.network_watts(rate);
  const bool over_capacity = !OptionEligible(app, current, rate, /*is_current=*/true);
  if (over_capacity || software + config_.min_saving_watts < current_watts) {
    go_home();
    return;
  }
  // A strictly cheaper eligible target may have freed up since placement:
  // keep the greedy invariant by migrating over (through a host bounce, the
  // only transition migrators provide).
  if (best >= 0 && best != app.active_option &&
      PredictOptionWatts(current, rate) - best_ranked >= config_.min_saving_watts) {
    if (ledger_.TryCommit(LedgerKey(app), commit_watts(best))) {
      // Warm apps carry their state through the host bounce: the outgoing
      // placement snapshots into the host app, and place_on() moves the
      // host app's state onto the incoming target.
      apply_policy(*current.migrator);
      current.migrator->ShiftToHost();
      place_on(best);
      return;
    }
  }
  // Keep the ledger tracking the rate actually served (budget re-check: a
  // risen rate may no longer fit the shared headroom — if so, go home).
  if (!ledger_.TryCommit(LedgerKey(app), commit_watts(app.active_option))) {
    go_home();
    return;
  }
  app.committed_rate_pps = rate;
}

void RackOrchestrator::ShiftAppHome(ManagedApp& app, bool abandon) {
  if (app.active_option < 0) {
    return;
  }
  const SimTime now = sim_.Now();
  auto& option = app.spec.options[static_cast<size_t>(app.active_option)];
  option.migrator->SetTransferState(app.spec.warm_migration);
  if (abandon) {
    option.migrator->AbandonToHost();
  } else {
    option.migrator->ShiftToHost();
  }
  ledger_.Release(LedgerKey(app));
  app.active_option = -1;
  app.committed_rate_pps = 0;
  app.last_shift = now;
  ++total_shifts_;
  if (app.spec.warm_migration) {
    ++warm_shifts_;
  }
  decision_log_.push_back(RackDecisionRecord{RackDecisionRecord::Kind::kShiftHome,
                                             now, app.spec.name, std::string(),
                                             app.spec.warm_migration});
}

void RackOrchestrator::ForcePlacement(size_t app_index, int option_index) {
  ManagedApp& app = apps_.at(app_index);
  if (option_index < 0 ||
      static_cast<size_t>(option_index) >= app.spec.options.size()) {
    throw std::invalid_argument("RackOrchestrator: bad option index for " +
                                app.spec.name);
  }
  if (app.active_option == option_index) {
    return;
  }
  if (app.active_option >= 0) {
    ShiftAppHome(app, /*abandon=*/false);
  }
  const SimTime now = sim_.Now();
  auto& option = app.spec.options[static_cast<size_t>(option_index)];
  const double rate = app.spec.measured_rate_pps();
  const double commit =
      std::max(0.0, option.network_watts(rate) - app.spec.software_watts(0));
  if (!ledger_.TryCommit(LedgerKey(app), commit)) {
    throw std::logic_error("RackOrchestrator: ForcePlacement of " + app.spec.name +
                           " does not fit the power budget");
  }
  option.migrator->SetTransferState(app.spec.warm_migration);
  option.migrator->ShiftToNetwork();
  app.active_option = option_index;
  app.committed_rate_pps = rate;
  app.last_shift = now;
  ++shifts_to_target_[option.target];
  ++total_shifts_;
  if (app.spec.warm_migration) {
    ++warm_shifts_;
  }
  decision_log_.push_back(RackDecisionRecord{RackDecisionRecord::Kind::kShift, now,
                                             app.spec.name,
                                             option.target->TargetName(),
                                             app.spec.warm_migration});
}

void RackOrchestrator::CheckpointApp(ManagedApp& app) {
  if (app.active_option < 0) {
    return;  // At home: the host copy *is* the state; nothing to snapshot.
  }
  auto& option = app.spec.options[static_cast<size_t>(app.active_option)];
  if (!option.target->TargetAlive()) {
    return;  // Cannot snapshot dead hardware; keep the previous checkpoint.
  }
  std::optional<AppState> state = option.migrator->CheckpointOffloadState();
  if (!state.has_value()) {
    return;  // Not serving yet (e.g. mid-reprogram): nothing meaningful.
  }
  app.latest_checkpoint = std::move(*state);
  app.checkpoint_at = sim_.Now();
  ++checkpoints_taken_;
}

void RackOrchestrator::SetHeartbeatReachability(const OffloadTarget* target,
                                                std::function<bool()> reachable) {
  if (reachable == nullptr) {
    reachability_.erase(target);
    return;
  }
  reachability_[target] = std::move(reachable);
}

void RackOrchestrator::Heartbeat() {
  // Poll every distinct target referenced by any app's options. A heartbeat
  // is missed when the device is dead *or* the probe path to it is down;
  // the two only become distinguishable once the path answers again, so the
  // detector acts at the failure threshold on what it can actually know:
  //  * reachable and dead      -> declare the target failed (recovery runs);
  //  * unreachable (any state) -> a flap in progress looks identical to a
  //    death from here, but declaring failure would abandon a live
  //    placement — suppress, log kFlapSuppressed once per streak, and keep
  //    counting. A flap that heals with the device alive resets the streak
  //    (no recovery ever fires); one that heals onto a dead device crosses
  //    straight into the failure branch on the next poll.
  std::set<OffloadTarget*> polled;
  for (auto& app : apps_) {
    for (auto& option : app.spec.options) {
      polled.insert(option.target);
    }
  }
  for (OffloadTarget* target : polled) {
    if (failed_targets_.count(target) != 0) {
      continue;  // Already declared; recovery ran.
    }
    const auto channel = reachability_.find(target);
    const bool reachable = channel == reachability_.end() || channel->second();
    if (target->TargetAlive() && reachable) {
      heartbeat_misses_[target] = 0;
      flap_suspected_.erase(target);
      continue;
    }
    if (++heartbeat_misses_[target] < config_.failure_threshold) {
      continue;
    }
    if (reachable) {
      DeclareTargetFailed(target);
      continue;
    }
    if (flap_suspected_.insert(target).second) {
      ++flap_suppressions_;
      decision_log_.push_back(
          RackDecisionRecord{RackDecisionRecord::Kind::kFlapSuppressed, sim_.Now(),
                             std::string(), target->TargetName(), false});
    }
  }
}

void RackOrchestrator::DeclareTargetFailed(OffloadTarget* target) {
  failed_targets_.insert(target);
  flap_suspected_.erase(target);
  ++failures_detected_;
  decision_log_.push_back(RackDecisionRecord{RackDecisionRecord::Kind::kFailure,
                                             sim_.Now(), std::string(),
                                             target->TargetName(), false});
  for (auto& app : apps_) {
    if (app.active_option >= 0 &&
        app.spec.options[static_cast<size_t>(app.active_option)].target == target) {
      RecoverApp(app);
    }
  }
}

void RackOrchestrator::RecoverApp(ManagedApp& app) {
  const SimTime now = sim_.Now();
  auto& failed = app.spec.options[static_cast<size_t>(app.active_option)];
  // Abandon, never shift: a shift home would snapshot the dead placement's
  // state. The classifier flips home, the ledger commitment is released.
  failed.migrator->AbandonToHost();
  ledger_.Release(LedgerKey(app));
  app.active_option = -1;
  app.committed_rate_pps = 0;
  const bool warm = app.checkpoint_at >= 0;
  if (warm && app.spec.restore_checkpoint_to_home) {
    // The host copy is stale by design (e.g. a Paxos leader's ballot and
    // sequence live wherever the leader last ran): install the checkpoint
    // before the host placement resumes service.
    failed.migrator->RestoreCheckpointTo(Placement::kHost, app.latest_checkpoint);
  }
  // Re-run the greedy placement pass immediately, dwell-exempt: the fault
  // already cost the app its placement, waiting out min_dwell would only
  // stretch the outage.
  app.last_shift = now - config_.min_dwell;
  DecideForApp(app);
  std::string landed;
  if (app.active_option >= 0) {
    auto& option = app.spec.options[static_cast<size_t>(app.active_option)];
    landed = option.target->TargetName();
    if (warm && !app.spec.warm_migration) {
      // The cold-policy shift carried no state: warm-start the surviving
      // placement from the checkpoint (the whole point of taking them).
      option.migrator->RestoreCheckpointTo(Placement::kNetwork,
                                           app.latest_checkpoint);
    }
  }
  ++recoveries_;
  decision_log_.push_back(RackDecisionRecord{RackDecisionRecord::Kind::kRecovery,
                                             now, app.spec.name, landed, warm});
}

void RackOrchestrator::ApplyPowerCap(double watts) {
  ledger_.SetBudgetWatts(watts);
  if (ledger_.unlimited()) {
    return;
  }
  // Restore the invariant committed <= budget immediately: evict the
  // largest commitments first (fewest victims).
  while (ledger_.committed_watts() > ledger_.budget_watts()) {
    ManagedApp* victim = nullptr;
    double victim_watts = -1;
    for (auto& app : apps_) {
      if (app.active_option < 0) {
        continue;
      }
      const auto it = ledger_.commitments().find(LedgerKey(app));
      const double committed = it != ledger_.commitments().end() ? it->second : 0;
      if (committed > victim_watts) {
        victim = &app;
        victim_watts = committed;
      }
    }
    if (victim == nullptr) {
      break;  // Nothing left to evict; the budget is simply lower now.
    }
    const auto& option =
        victim->spec.options[static_cast<size_t>(victim->active_option)];
    ShiftAppHome(*victim, /*abandon=*/!option.target->TargetAlive());
  }
}

}  // namespace incod
