#include "src/ondemand/energy_controller.h"

#include <stdexcept>
#include <utility>

namespace incod {

EnergyAwareController::EnergyAwareController(Simulation& sim, OffloadTarget& target,
                                             Migrator& migrator,
                                             RatePowerFn software_watts,
                                             RatePowerFn network_watts,
                                             EnergyAwareControllerConfig config)
    : sim_(sim),
      target_(target),
      migrator_(migrator),
      software_watts_(std::move(software_watts)),
      network_watts_(std::move(network_watts)),
      config_(config),
      saving_mean_(config.window) {
  if (software_watts_ == nullptr || network_watts_ == nullptr) {
    throw std::invalid_argument("EnergyAwareController: null power model");
  }
}

void EnergyAwareController::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  last_tick_ = sim_.Now();
  last_ingress_count_ = target_.app_ingress_packets();
  SchedulePeriodic(sim_, config_.check_period, config_.check_period, [this] {
    if (stopped_) {
      return false;
    }
    Tick();
    return true;
  });
}

void EnergyAwareController::Tick() {
  const SimTime now = sim_.Now();
  const SimDuration dt = now - last_tick_;
  if (dt <= 0) {
    return;
  }
  const uint64_t count = target_.app_ingress_packets();
  const double rate = static_cast<double>(count - last_ingress_count_) / ToSeconds(dt);
  last_ingress_count_ = count;
  last_tick_ = now;

  // Positive saving: the network placement would draw less at this rate.
  last_saving_ = software_watts_(rate) - network_watts_(rate);
  saving_mean_.AddSample(now, last_saving_);

  if (now - last_shift_ < config_.min_dwell || !saving_mean_.WindowFull(now)) {
    return;
  }
  const double saving = saving_mean_.Mean(now);
  if (migrator_.placement() == Placement::kHost && saving >= config_.min_saving_watts) {
    migrator_.ShiftToNetwork();
    last_shift_ = now;
  } else if (migrator_.placement() == Placement::kNetwork &&
             saving <= -config_.min_saving_watts) {
    migrator_.ShiftToHost();
    last_shift_ = now;
  }
}

}  // namespace incod
