#include "src/ondemand/energy_advisor.h"

#include <algorithm>
#include <stdexcept>

#include "src/device/smartnic.h"

namespace incod {

RatePowerFn MakeServerRatePower(PiecewiseLinearCurve utilization_to_watts,
                                SimDuration core_time_per_request, int threads) {
  if (threads < 1) {
    throw std::invalid_argument("MakeServerRatePower: threads >= 1");
  }
  const double core_seconds = ToSeconds(core_time_per_request);
  const double max_util = static_cast<double>(threads);
  return [curve = std::move(utilization_to_watts), core_seconds, max_util](double rate) {
    const double util = std::min(max_util, rate * core_seconds);
    return curve.Evaluate(util);
  };
}

RatePowerFn MakeFpgaRatePower(double host_idle_watts, double board_idle_watts,
                              double dynamic_watts_at_capacity, double capacity_pps) {
  if (capacity_pps <= 0) {
    throw std::invalid_argument("MakeFpgaRatePower: capacity must be > 0");
  }
  return [=](double rate) {
    const double util = std::min(1.0, rate / capacity_pps);
    return host_idle_watts + board_idle_watts + dynamic_watts_at_capacity * util;
  };
}

RatePowerFn MakeSwitchMarginalPower(double program_overhead_fraction,
                                    double max_power_watts, double line_rate_pps) {
  if (line_rate_pps <= 0) {
    throw std::invalid_argument("MakeSwitchMarginalPower: line rate must be > 0");
  }
  return [=](double rate) {
    const double util = std::min(1.0, rate / line_rate_pps);
    // Marginal cost of running the program on traffic already being
    // forwarded: overhead fraction of the load-dependent power only.
    return max_power_watts * program_overhead_fraction * util;
  };
}

RatePowerFn MakeSmartNicRatePower(double host_idle_watts, double board_idle_watts,
                                  double board_max_watts, double capacity_pps) {
  // Same shape as the FPGA model with the dynamic term parameterized as the
  // idle-to-max swing (how SmartNIC presets are specified, §10).
  return MakeFpgaRatePower(host_idle_watts, board_idle_watts,
                           board_max_watts - board_idle_watts, capacity_pps);
}

RatePowerFn MakeSmartNicRatePower(double host_idle_watts, const SmartNicPreset& preset,
                                  double app_mpps_fraction) {
  return MakeSmartNicRatePower(host_idle_watts, preset.idle_watts, preset.max_watts,
                               preset.peak_mpps * 1e6 * app_mpps_fraction);
}

PlacementAdvice AdvisePlacement(const RatePowerFn& software, const RatePowerFn& network,
                                double max_rate_pps) {
  PlacementAdvice advice;
  const auto tipping = TippingPointRate(software, network, 0.0, max_rate_pps, 1.0);
  if (!tipping.has_value()) {
    advice.network_never_wins = true;
    return advice;
  }
  advice.tipping_rate_pps = *tipping;
  advice.network_always_wins = *tipping <= 1.0;
  return advice;
}

double PeriodEnergyJoules(const RatePowerFn& power, double idle_watts,
                          double total_packets, double rate, double period_seconds) {
  if (rate <= 0) {
    return idle_watts * period_seconds;
  }
  const double busy_seconds = std::min(period_seconds, total_packets / rate);
  const double idle_seconds = period_seconds - busy_seconds;
  return power(rate) * busy_seconds + idle_watts * idle_seconds;
}

}  // namespace incod
