// Placement advisor: §8's "When to Use In-Network Computing" made executable.
//
// Builds rate->power functions for deployments (server curves + service
// times; device ledgers + dynamic watts) and answers the two questions of
// §8: should a standard network device be replaced with a programmable one,
// and at what rate should a workload shift into the network. Also covers
// the §9.4 ToR-switch analysis, where the shared forwarding power makes the
// tipping point approach zero.
#ifndef INCOD_SRC_ONDEMAND_ENERGY_ADVISOR_H_
#define INCOD_SRC_ONDEMAND_ENERGY_ADVISOR_H_

#include <functional>
#include <optional>
#include <string>

#include "src/power/cpu_power.h"
#include "src/power/energy_model.h"
#include "src/sim/time.h"

namespace incod {

struct SmartNicPreset;  // device/smartnic.h; this header stays device-free.

// rate (pps) -> wall watts.
using RatePowerFn = std::function<double(double)>;

// Server running a software app: utilization = rate * core-seconds/request
// spread across `threads` workers; watts from the calibrated curve. Rates
// beyond saturation clamp at peak utilization.
RatePowerFn MakeServerRatePower(PiecewiseLinearCurve utilization_to_watts,
                                SimDuration core_time_per_request, int threads);

// Host + FPGA NIC deployment: host idle watts plus board power with a linear
// dynamic term up to `capacity_pps`.
RatePowerFn MakeFpgaRatePower(double host_idle_watts, double board_idle_watts,
                              double dynamic_watts_at_capacity, double capacity_pps);

// Programmable switch already forwarding traffic: only the in-network
// program's marginal power counts (§9.4). `forwarding_watts` is shared by
// both placements and excluded.
RatePowerFn MakeSwitchMarginalPower(double program_overhead_fraction,
                                    double max_power_watts, double line_rate_pps);

// Host + SmartNIC deployment (§10 presets): host idle watts plus board
// power scaling linearly from idle to max at `capacity_pps` (the preset's
// peak_mpps). Same shape the behavioral SmartNic device reports live.
RatePowerFn MakeSmartNicRatePower(double host_idle_watts, double board_idle_watts,
                                  double board_max_watts, double capacity_pps);

// Convenience over a §10 preset hosting a specific app firmware: the
// capacity is the preset's peak scaled by the app's per-arch Mpps fraction
// (the same ceiling the behavioral SmartNic enforces for a hosted App).
RatePowerFn MakeSmartNicRatePower(double host_idle_watts, const SmartNicPreset& preset,
                                  double app_mpps_fraction = 1.0);

struct PlacementAdvice {
  // Rate at/above which the network deployment draws no more power.
  std::optional<double> tipping_rate_pps;
  // Network never wins below this sweep bound.
  bool network_never_wins = false;
  // Network wins even at (near) zero rate.
  bool network_always_wins = false;
};

PlacementAdvice AdvisePlacement(const RatePowerFn& software, const RatePowerFn& network,
                                double max_rate_pps);

// Energy (joules) of serving `total_packets` at `rate`, then idling the
// remainder of `period_seconds` — convenience over §8's eq. 1 for comparing
// placements over a scheduling period.
double PeriodEnergyJoules(const RatePowerFn& power, double idle_watts,
                          double total_packets, double rate, double period_seconds);

}  // namespace incod

#endif  // INCOD_SRC_ONDEMAND_ENERGY_ADVISOR_H_
