#include "src/ondemand/migrator.h"

#include <utility>

namespace incod {

const char* PlacementName(Placement placement) {
  return placement == Placement::kHost ? "host" : "network";
}

const char* ParkPolicyName(ParkPolicy policy) {
  switch (policy) {
    case ParkPolicy::kGatedPark:
      return "gated-park";
    case ParkPolicy::kKeepWarm:
      return "keep-warm";
    case ParkPolicy::kReprogram:
      return "reprogram";
  }
  return "?";
}

StateTransferMigrator::Options StateTransferMigrator::Options::FromPolicy(
    ParkPolicy policy, SimDuration reprogram_halt) {
  Options options;
  options.policy = policy;
  switch (policy) {
    case ParkPolicy::kGatedPark:
      options.clock_gate_when_idle = true;
      options.reset_memories_when_idle = true;
      break;
    case ParkPolicy::kKeepWarm:
      options.clock_gate_when_idle = false;
      options.reset_memories_when_idle = false;
      break;
    case ParkPolicy::kReprogram:
      options.clock_gate_when_idle = true;
      options.reset_memories_when_idle = true;
      options.reprogram_halt = reprogram_halt;
      break;
  }
  return options;
}

StateTransferMigrator::StateTransferMigrator(Simulation& sim, OffloadTarget& target,
                                             Options options, App* host_app,
                                             App* offload_app)
    : sim_(sim),
      target_(target),
      options_(options),
      host_app_(host_app),
      offload_app_(offload_app) {
  // Start in the host placement with the configured idle power savings.
  target_.SetAppActive(false);
  ApplyParkedState();
}

void StateTransferMigrator::ApplyParkedState() {
  target_.SetClockGating(options_.clock_gate_when_idle);
  target_.SetMemoryReset(options_.reset_memories_when_idle);
  if (options_.policy == ParkPolicy::kReprogram) {
    target_.PowerGateParkedApp();
  }
}

void StateTransferMigrator::TransferTo(Placement to) {
  if (!options_.transfer_state || host_app_ == nullptr || offload_app_ == nullptr) {
    return;
  }
  App& from = to == Placement::kNetwork ? *host_app_ : *offload_app_;
  App& dst = to == Placement::kNetwork ? *offload_app_ : *host_app_;
  AppState state = from.SnapshotState();
  MutateStateForTransfer(state, to);
  dst.RestoreState(state);
  ++state_transfers_;
}

std::string StateTransferMigrator::MigratorName() const {
  return "state-transfer/" + target_.TargetName();
}

std::string ClassifierMigrator::MigratorName() const {
  return "classifier/" + target().TargetName();
}

void StateTransferMigrator::ShiftToNetwork() {
  if (placement() == Placement::kNetwork) {
    return;
  }
  if (options_.policy == ParkPolicy::kReprogram && options_.reprogram_halt > 0 &&
      target_.Traits().supports_reprogramming) {
    // Loading the bitstream halts the data path (§9.2: partial
    // reconfiguration "may result in a momentary traffic halt").
    target_.SetReprogramming(true);
    RecordTransition(sim_.Now(), Placement::kNetwork);
    sim_.Schedule(options_.reprogram_halt, [this] {
      if (placement() != Placement::kNetwork) {
        return;  // Shifted back while reprogramming.
      }
      target_.SetReprogramming(false);
      target_.SetMemoryReset(false);
      target_.SetClockGating(false);
      TransferTo(Placement::kNetwork);
      target_.SetAppActive(true);  // Re-activation restores module states.
      offload_served_ = true;
    });
    return;
  }
  // Order matters: wake memories and clocks, then (optionally) install the
  // transferred state, then divert traffic. Without a transfer the caches
  // start cold (all misses go to the host) and warm up; query rate is
  // maintained throughout (§9.2).
  target_.SetMemoryReset(false);
  target_.SetClockGating(false);
  TransferTo(Placement::kNetwork);
  target_.SetAppActive(true);
  offload_served_ = true;
  RecordTransition(sim_.Now(), Placement::kNetwork);
}

void StateTransferMigrator::ShiftToHost() {
  if (placement() == Placement::kHost) {
    return;
  }
  // Snapshot the offloaded app before deactivation/parking can reset the
  // memories that hold its state — but only if it actually served: shifting
  // back during a kReprogram halt means the offload app never activated,
  // and transferring its initial (empty) state would wipe the host's.
  if (offload_served_) {
    TransferTo(Placement::kHost);
  }
  offload_served_ = false;
  target_.SetReprogramming(false);
  target_.SetAppActive(false);
  ApplyParkedState();
  RecordTransition(sim_.Now(), Placement::kHost);
}

void StateTransferMigrator::AbandonToHost() {
  if (placement() == Placement::kHost) {
    return;
  }
  // No TransferTo: the offload placement is dead, its state unreachable.
  offload_served_ = false;
  target_.SetReprogramming(false);
  target_.SetAppActive(false);
  ApplyParkedState();
  RecordTransition(sim_.Now(), Placement::kHost);
}

std::optional<AppState> StateTransferMigrator::CheckpointOffloadState() const {
  if (offload_app_ == nullptr || !offload_served_ ||
      placement() != Placement::kNetwork) {
    return std::nullopt;
  }
  return offload_app_->SnapshotState();
}

void StateTransferMigrator::RestoreCheckpointTo(Placement to, AppState state) {
  App* dst = to == Placement::kNetwork ? offload_app_ : host_app_;
  if (dst == nullptr) {
    return;
  }
  MutateStateForTransfer(state, to);
  dst->RestoreState(state);
  ++checkpoint_restores_;
}

PaxosLeaderMigrator::PaxosLeaderMigrator(Simulation& sim, L2Switch& sw,
                                         NodeId leader_service,
                                         SoftwareLeader& software_leader,
                                         int software_port, OffloadTarget& hardware_target,
                                         P4xosFpgaApp& hardware_leader, int hardware_port,
                                         Options options)
    : StateTransferMigrator(
          sim, hardware_target,
          [&options] {
            // The FPGA leader keeps on-chip state only: no park knobs to
            // apply while the host serves (kKeepWarm semantics).
            StateTransferMigrator::Options base =
                StateTransferMigrator::Options::FromPolicy(ParkPolicy::kKeepWarm);
            base.transfer_state = options.transfer_state;
            return base;
          }(),
          &software_leader, &hardware_leader),
      switch_(sw),
      leader_service_(leader_service),
      software_leader_(software_leader),
      software_port_(software_port),
      hardware_leader_(hardware_leader),
      hardware_port_(hardware_port),
      leader_options_(options),
      ballot_(software_leader.state().ballot()) {
  // Initial placement: software leader serves the service address.
  RepointService(software_port_);
  software_leader_.SetActive(true);
}

void PaxosLeaderMigrator::RepointService(int port) {
  L2Switch::ForwardingRule rule;
  rule.proto = AppProto::kPaxos;
  rule.match_dst = leader_service_;
  rule.out_port = port;
  rule.priority = 10;
  switch_.InstallRule(rule);
}

void PaxosLeaderMigrator::MutateStateForTransfer(AppState& state, Placement to) {
  (void)to;
  // A new leader must always run with a ballot above any prior leader's,
  // even when it inherits the sequence position.
  if (PaxosAppState* px = std::get_if<PaxosAppState>(&state.data)) {
    px->ballot = ++ballot_;
  }
}

void PaxosLeaderMigrator::ShiftToNetwork() {
  if (placement() == Placement::kNetwork) {
    return;
  }
  if (!leader_options_.transfer_state) {
    ++ballot_;
    // The new leader "starts with an initial sequence number of 1 and must
    // learn the next sequence number that it can use" (§9.2).
    hardware_leader_.leader()->Reset(ballot_);
  }
  // Classifier flip (and, on the generic path, the ballot/sequence
  // transfer) through the shared core.
  StateTransferMigrator::ShiftToNetwork();
  software_leader_.SetActive(false);
  RepointService(hardware_port_);
  if (!leader_options_.transfer_state) {
    // §9.2: the incoming leader learns the latest instance from the
    // acceptors before proposing (client requests are buffered meanwhile).
    hardware_leader_.BeginSequenceLearning(leader_options_.active_probe);
    ArmLearningTimeout(Placement::kNetwork);
  }
}

void PaxosLeaderMigrator::ArmLearningTimeout(Placement for_placement) {
  // Passive learning (the paper's mode) must not deadlock: after the
  // timeout, release buffered proposals; acceptor hints and client retries
  // then teach the sequence (§9.2, Fig 7's ~100 ms gap).
  sim().Schedule(leader_options_.learning_timeout, [this, for_placement] {
    if (placement() != for_placement) {
      return;  // Another shift happened meanwhile.
    }
    if (for_placement == Placement::kNetwork) {
      if (hardware_leader_.leader()->awaiting_sequence()) {
        hardware_leader_.TransmitOutbox(
            hardware_leader_.leader()->AbandonSequenceLearning());
      }
    } else if (software_leader_.state().awaiting_sequence()) {
      software_leader_.TransmitOutbox(
          software_leader_.state().AbandonSequenceLearning());
    }
  });
}

void PaxosLeaderMigrator::AbandonToHost() {
  if (placement() == Placement::kHost) {
    return;
  }
  // The dead hardware leader's ballot/sequence are gone: the software leader
  // always restarts from a fresh higher ballot, whatever the transfer knob
  // says. A checkpoint restore (RestoreCheckpointTo) may follow — its
  // RestoreFrom cancels the learning and MutateStateForTransfer bumps the
  // ballot above this Reset's.
  ++ballot_;
  software_leader_.state().Reset(ballot_);
  StateTransferMigrator::AbandonToHost();
  software_leader_.SetActive(true);
  RepointService(software_port_);
  software_leader_.BeginSequenceLearning(leader_options_.active_probe);
  ArmLearningTimeout(Placement::kHost);
}

void PaxosLeaderMigrator::ShiftToHost() {
  if (placement() == Placement::kHost) {
    return;
  }
  if (!leader_options_.transfer_state) {
    ++ballot_;
    software_leader_.state().Reset(ballot_);
  }
  StateTransferMigrator::ShiftToHost();
  software_leader_.SetActive(true);
  RepointService(software_port_);
  if (!leader_options_.transfer_state) {
    software_leader_.BeginSequenceLearning(leader_options_.active_probe);
    ArmLearningTimeout(Placement::kHost);
  }
}

}  // namespace incod
