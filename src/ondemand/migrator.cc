#include "src/ondemand/migrator.h"

namespace incod {

const char* PlacementName(Placement placement) {
  return placement == Placement::kHost ? "host" : "network";
}

const char* ParkPolicyName(ParkPolicy policy) {
  switch (policy) {
    case ParkPolicy::kGatedPark:
      return "gated-park";
    case ParkPolicy::kKeepWarm:
      return "keep-warm";
    case ParkPolicy::kReprogram:
      return "reprogram";
  }
  return "?";
}

ClassifierMigrator::Options ClassifierMigrator::Options::FromPolicy(
    ParkPolicy policy, SimDuration reprogram_halt) {
  Options options;
  options.policy = policy;
  switch (policy) {
    case ParkPolicy::kGatedPark:
      options.clock_gate_when_idle = true;
      options.reset_memories_when_idle = true;
      break;
    case ParkPolicy::kKeepWarm:
      options.clock_gate_when_idle = false;
      options.reset_memories_when_idle = false;
      break;
    case ParkPolicy::kReprogram:
      options.clock_gate_when_idle = true;
      options.reset_memories_when_idle = true;
      options.reprogram_halt = reprogram_halt;
      break;
  }
  return options;
}

ClassifierMigrator::ClassifierMigrator(Simulation& sim, OffloadTarget& target,
                                       Options options)
    : sim_(sim), target_(target), options_(options) {
  // Start in the host placement with the configured idle power savings.
  target_.SetAppActive(false);
  ApplyParkedState();
}

void ClassifierMigrator::ApplyParkedState() {
  target_.SetClockGating(options_.clock_gate_when_idle);
  target_.SetMemoryReset(options_.reset_memories_when_idle);
  if (options_.policy == ParkPolicy::kReprogram) {
    target_.PowerGateParkedApp();
  }
}

std::string ClassifierMigrator::MigratorName() const {
  return "classifier/" + target_.TargetName();
}

void ClassifierMigrator::ShiftToNetwork() {
  if (placement() == Placement::kNetwork) {
    return;
  }
  if (options_.policy == ParkPolicy::kReprogram && options_.reprogram_halt > 0 &&
      target_.Traits().supports_reprogramming) {
    // Loading the bitstream halts the data path (§9.2: partial
    // reconfiguration "may result in a momentary traffic halt").
    target_.SetReprogramming(true);
    RecordTransition(sim_.Now(), Placement::kNetwork);
    sim_.Schedule(options_.reprogram_halt, [this] {
      if (placement() != Placement::kNetwork) {
        return;  // Shifted back while reprogramming.
      }
      target_.SetReprogramming(false);
      target_.SetMemoryReset(false);
      target_.SetClockGating(false);
      target_.SetAppActive(true);  // Re-activation restores module states.
    });
    return;
  }
  // Order matters: wake memories and clocks, then divert traffic. The
  // caches start cold (all misses go to the host) and warm up; query rate
  // is maintained throughout (§9.2).
  target_.SetMemoryReset(false);
  target_.SetClockGating(false);
  target_.SetAppActive(true);
  RecordTransition(sim_.Now(), Placement::kNetwork);
}

void ClassifierMigrator::ShiftToHost() {
  if (placement() == Placement::kHost) {
    return;
  }
  target_.SetReprogramming(false);
  target_.SetAppActive(false);
  ApplyParkedState();
  RecordTransition(sim_.Now(), Placement::kHost);
}

PaxosLeaderMigrator::PaxosLeaderMigrator(Simulation& sim, L2Switch& sw,
                                         NodeId leader_service,
                                         SoftwareLeader& software_leader,
                                         int software_port, OffloadTarget& hardware_target,
                                         P4xosFpgaApp& hardware_leader, int hardware_port,
                                         Options options)
    : sim_(sim),
      switch_(sw),
      leader_service_(leader_service),
      software_leader_(software_leader),
      software_port_(software_port),
      hardware_target_(hardware_target),
      hardware_leader_(hardware_leader),
      hardware_port_(hardware_port),
      options_(options),
      ballot_(software_leader.state().ballot()) {
  // Initial placement: software leader serves the service address.
  RepointService(software_port_);
  software_leader_.SetActive(true);
  hardware_target_.SetAppActive(false);
}

void PaxosLeaderMigrator::RepointService(int port) {
  L2Switch::ForwardingRule rule;
  rule.proto = AppProto::kPaxos;
  rule.match_dst = leader_service_;
  rule.out_port = port;
  rule.priority = 10;
  switch_.InstallRule(rule);
}

void PaxosLeaderMigrator::ShiftToNetwork() {
  if (placement() == Placement::kNetwork) {
    return;
  }
  ++ballot_;
  // The new leader "starts with an initial sequence number of 1 and must
  // learn the next sequence number that it can use" (§9.2).
  hardware_leader_.leader()->Reset(ballot_);
  hardware_target_.SetAppActive(true);
  software_leader_.SetActive(false);
  RepointService(hardware_port_);
  // §9.2: the incoming leader learns the latest instance from the acceptors
  // before proposing (client requests are buffered meanwhile).
  hardware_leader_.BeginSequenceLearning(options_.active_probe);
  RecordTransition(sim_.Now(), Placement::kNetwork);
  ArmLearningTimeout(Placement::kNetwork);
}

void PaxosLeaderMigrator::ArmLearningTimeout(Placement for_placement) {
  // Passive learning (the paper's mode) must not deadlock: after the
  // timeout, release buffered proposals; acceptor hints and client retries
  // then teach the sequence (§9.2, Fig 7's ~100 ms gap).
  sim_.Schedule(options_.learning_timeout, [this, for_placement] {
    if (placement() != for_placement) {
      return;  // Another shift happened meanwhile.
    }
    if (for_placement == Placement::kNetwork) {
      if (hardware_leader_.leader()->awaiting_sequence()) {
        hardware_leader_.TransmitOutbox(
            hardware_leader_.leader()->AbandonSequenceLearning());
      }
    } else if (software_leader_.state().awaiting_sequence()) {
      software_leader_.TransmitOutbox(
          software_leader_.state().AbandonSequenceLearning());
    }
  });
}

void PaxosLeaderMigrator::ShiftToHost() {
  if (placement() == Placement::kHost) {
    return;
  }
  ++ballot_;
  software_leader_.state().Reset(ballot_);
  software_leader_.SetActive(true);
  hardware_target_.SetAppActive(false);
  RepointService(software_port_);
  software_leader_.BeginSequenceLearning(options_.active_probe);
  RecordTransition(sim_.Now(), Placement::kHost);
  ArmLearningTimeout(Placement::kHost);
}

}  // namespace incod
