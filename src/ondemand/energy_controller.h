// Energy-aware on-demand controller.
//
// §9.1 closes with: "The algorithms used in this paper are naive, providing
// a proof of concept. They can be enhanced by more sophisticated
// algorithms" (citing energy-proportionality work such as PEAS). This
// controller is that enhancement: instead of fixed rate/power thresholds it
// predicts both placements' power at the *measured* application rate using
// the §8 model (calibrated rate->watts curves) and shifts whenever the
// predicted saving exceeds a margin, sustained over a window. Hysteresis
// falls out naturally from using a saving margin in both directions.
#ifndef INCOD_SRC_ONDEMAND_ENERGY_CONTROLLER_H_
#define INCOD_SRC_ONDEMAND_ENERGY_CONTROLLER_H_

#include <string>

#include "src/device/offload_target.h"
#include "src/ondemand/controller.h"
#include "src/ondemand/energy_advisor.h"
#include "src/ondemand/migrator.h"
#include "src/sim/simulation.h"
#include "src/stats/timeseries.h"

namespace incod {

struct EnergyAwareControllerConfig {
  // Shift when the predicted saving of the other placement exceeds this
  // many watts, sustained over `window`.
  double min_saving_watts = 2.0;
  SimDuration window = Seconds(2);
  SimDuration check_period = Milliseconds(100);
  SimDuration min_dwell = Seconds(1);
};

class EnergyAwareController : public OffloadController {
 public:
  // `software_watts` / `network_watts` are the calibrated rate->power
  // functions for the two placements (see MakeServerRatePower /
  // MakeFpgaRatePower / MakeSmartNicRatePower). The application rate is
  // read from the target's classifier, which sees the traffic regardless
  // of placement.
  EnergyAwareController(Simulation& sim, OffloadTarget& target, Migrator& migrator,
                        RatePowerFn software_watts, RatePowerFn network_watts,
                        EnergyAwareControllerConfig config = {});

  void Start() override;
  std::string ControllerName() const override { return "energy-aware"; }

  // Predicted watts for each placement at the given rate (for inspection).
  double PredictSoftwareWatts(double rate_pps) const { return software_watts_(rate_pps); }
  double PredictNetworkWatts(double rate_pps) const { return network_watts_(rate_pps); }
  double last_predicted_saving_watts() const { return last_saving_; }

 private:
  void Tick();

  Simulation& sim_;
  OffloadTarget& target_;
  Migrator& migrator_;
  RatePowerFn software_watts_;
  RatePowerFn network_watts_;
  EnergyAwareControllerConfig config_;
  SlidingWindowMean saving_mean_;
  uint64_t last_ingress_count_ = 0;
  SimTime last_tick_ = 0;
  SimTime last_shift_ = 0;
  double last_saving_ = 0;
  bool started_ = false;
};

}  // namespace incod

#endif  // INCOD_SRC_ONDEMAND_ENERGY_CONTROLLER_H_
