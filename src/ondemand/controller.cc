#include "src/ondemand/controller.h"

namespace incod {

NetworkController::NetworkController(Simulation& sim, OffloadTarget& target, Migrator& migrator,
                                     NetworkControllerConfig config)
    : sim_(sim),
      target_(target),
      migrator_(migrator),
      config_(config),
      up_mean_(config.up_window),
      down_mean_(config.down_window) {}

void NetworkController::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  last_tick_ = sim_.Now();
  last_ingress_count_ = target_.app_ingress_packets();
  SchedulePeriodic(sim_, config_.check_period, config_.check_period, [this] {
    if (stopped_) {
      return false;
    }
    Tick();
    return true;
  });
}

void NetworkController::Tick() {
  const SimTime now = sim_.Now();
  const SimDuration dt = now - last_tick_;
  if (dt <= 0) {
    return;
  }
  // Classifier-visible message rate since the last check.
  const uint64_t count = target_.app_ingress_packets();
  const double rate = static_cast<double>(count - last_ingress_count_) / ToSeconds(dt);
  last_ingress_count_ = count;
  last_tick_ = now;
  up_mean_.AddSample(now, rate);
  down_mean_.AddSample(now, rate);
  ++decisions_;

  if (now - last_shift_ < config_.min_dwell) {
    return;
  }
  if (migrator_.placement() == Placement::kHost) {
    if (up_mean_.WindowFull(now) && up_mean_.Mean(now) >= config_.up_rate_pps) {
      migrator_.ShiftToNetwork();
      last_shift_ = now;
      down_mean_.Clear();
    }
  } else {
    if (down_mean_.WindowFull(now) && down_mean_.Mean(now) <= config_.down_rate_pps) {
      migrator_.ShiftToHost();
      last_shift_ = now;
      up_mean_.Clear();
    }
  }
}

HostController::HostController(Simulation& sim, Server& server, AppProto app,
                               RaplCounter& rapl, OffloadTarget& target, Migrator& migrator,
                               HostControllerConfig config)
    : sim_(sim),
      server_(server),
      app_(app),
      rapl_(rapl),
      target_(target),
      migrator_(migrator),
      config_(config),
      power_mean_(config.up_window),
      cpu_mean_(config.up_window),
      rate_mean_(config.down_window) {}

void HostController::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  last_tick_ = sim_.Now();
  last_energy_uj_ = rapl_.EnergyMicrojoules();
  SchedulePeriodic(sim_, config_.check_period, config_.check_period, [this] {
    if (stopped_) {
      return false;
    }
    Tick();
    return true;
  });
}

void HostController::Tick() {
  const SimTime now = sim_.Now();
  const SimDuration dt = now - last_tick_;
  if (dt <= 0) {
    return;
  }
  // RAPL read: average package watts since the previous tick.
  const uint64_t energy = rapl_.EnergyMicrojoules();
  last_rapl_watts_ = rapl_.AverageWattsSince(last_energy_uj_, dt);
  last_energy_uj_ = energy;
  last_tick_ = now;

  power_mean_.AddSample(now, last_rapl_watts_);
  cpu_mean_.AddSample(now, server_.AppCpuUsage(app_));
  rate_mean_.AddSample(now, target_.ProcessedRatePerSecond());

  if (now - last_shift_ < config_.min_dwell) {
    return;
  }
  if (migrator_.placement() == Placement::kHost) {
    // "If the application exceeds a (programmable) power threshold set for
    // offloading, and CPU usage is high, the controller shifts the workload
    // to the network" — inspected over time (§9.1).
    if (power_mean_.WindowFull(now) && power_mean_.Mean(now) >= config_.up_power_watts &&
        cpu_mean_.Mean(now) >= config_.up_cpu_usage) {
      migrator_.ShiftToNetwork();
      last_shift_ = now;
      rate_mean_.Clear();
    }
  } else {
    // "In order to shift back to the host from the network, the controller
    // needs information from the network (e.g., packet rate processed using
    // in-network computing)" (§9.1).
    if (rate_mean_.WindowFull(now) && rate_mean_.Mean(now) <= config_.down_rate_pps &&
        power_mean_.Mean(now) <= config_.down_power_watts) {
      migrator_.ShiftToHost();
      last_shift_ = now;
      power_mean_.Clear();
      cpu_mean_.Clear();
    }
  }
}

}  // namespace incod
