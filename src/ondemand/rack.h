// Rack-scale on-demand orchestration.
//
// §9.1's controllers manage one (host, device, app) pair. A rack runs many:
// several servers, a mix of offload targets (FPGA NICs, SmartNICs, the
// programmable ToR switch), and a shared power budget at the PDU. The
// orchestrator generalizes the paper's placement decision to that setting:
// every decision period it reads each application's classifier-visible rate,
// predicts both placements' power with the §8 models, and greedily places
// each app on the cheapest *eligible* target — eligible meaning the target
// has spare packet capacity, is not mid-reprogram, and the rack's shared
// power ledger can absorb the predicted draw. Apps whose offload stops
// paying for itself are shifted home and their budget released.
#ifndef INCOD_SRC_ONDEMAND_RACK_H_
#define INCOD_SRC_ONDEMAND_RACK_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/app/app_state.h"
#include "src/device/offload_target.h"
#include "src/ondemand/energy_advisor.h"
#include "src/ondemand/migrator.h"
#include "src/sim/simulation.h"
#include "src/stats/timeseries.h"

namespace incod {

// Shared rack power budget: tracks watts committed to offload placements so
// concurrent shifts cannot oversubscribe the PDU headroom reserved for
// in-network computing.
class RackPowerLedger {
 public:
  // budget_watts <= 0 means unlimited.
  explicit RackPowerLedger(double budget_watts = 0);

  // Commits `watts` under `key` (replacing any prior commitment for the
  // key). Returns false — and leaves the prior commitment intact — if the
  // budget would be exceeded.
  bool TryCommit(const std::string& key, double watts);
  void Release(const std::string& key);

  // PSU brownout: steps the budget (existing commitments may now exceed it;
  // the orchestrator's ApplyPowerCap evicts until the invariant holds again).
  void SetBudgetWatts(double watts) { budget_ = watts; }

  double budget_watts() const { return budget_; }
  bool unlimited() const { return budget_ <= 0; }
  double committed_watts() const;
  double RemainingWatts() const;
  const std::map<std::string, double>& commitments() const { return commitments_; }

 private:
  double budget_;
  std::map<std::string, double> commitments_;
};

// One way to place an app in the network: a target, the migrator that moves
// the app onto it, and the predicted placement power at a given rate. Every
// shift goes through the generic StateTransferMigrator core (classifier
// flip + park policy + optional typed-state transfer), so the orchestrator
// can move any registered app warm or cold without per-app plumbing.
struct RackPlacementOption {
  OffloadTarget* target = nullptr;
  StateTransferMigrator* migrator = nullptr;
  // Predicted *total* watts of serving at `rate` on this target, on the
  // same absolute scale as RackAppSpec::software_watts — include the host's
  // idle draw whenever the host stays powered (it almost always does), and
  // only the §9.4 marginal program watts on top for a ToR switch. The
  // ledger does not commit this number directly: it commits the increment
  // over the app's software idle (network_watts(rate) - software_watts(0)),
  // which is the PDU headroom the offload actually consumes.
  RatePowerFn network_watts;
  // Park policy the migrator applies; kReprogram placements pay the
  // configured penalty so warm targets win ties (§9.2's halt trade-off).
  ParkPolicy policy = ParkPolicy::kGatedPark;
};

struct RackAppSpec {
  std::string name;
  // Predicted host-placement watts at a given rate (§8 server curves).
  RatePowerFn software_watts;
  // Classifier-visible request rate, readable regardless of placement.
  std::function<double()> measured_rate_pps;
  std::vector<RackPlacementOption> options;
  // Per-app warm/cold migration policy. Warm: every orchestrator shift
  // carries the app's typed AppState through the generic state-transfer
  // path (LaKe caches arrive filled, a Paxos leader keeps ballot+sequence —
  // no Fig 6/7 transition gap). Cold (default): the paper's behaviour —
  // classifier flip only, state re-warms/re-learns after each shift.
  bool warm_migration = false;
  // Checkpoint cadence for this app while offloaded (< 0: inherit the
  // orchestrator config's checkpoint_period; 0: never checkpoint).
  SimDuration checkpoint_period = -1;
  // On crash recovery, also restore the latest checkpoint into the *host*
  // placement before re-deciding. Right when the host copy is not
  // authoritative (a Paxos leader's ballot/sequence live only where the
  // leader last ran); wrong for caches whose host store is the source of
  // truth (restoring a stale LRU over memcached would lose writes).
  bool restore_checkpoint_to_home = false;
};

// One entry of the orchestrator's decision log: every performed shift and
// every reprogram deferral, in decision order. The log is the audit trail
// the aggregate counters (total_shifts, warm_shifts, reprogram_deferrals)
// must reconcile against — tested exhaustively by the rack property suite.
struct RackDecisionRecord {
  // kFailure: the heartbeat detector declared a target dead (app empty,
  // target = the dead target). kRecovery: a victim app finished its
  // recovery pass (target = where it landed, empty for the host; warm = a
  // checkpoint was available to restore from). kFlapSuppressed: the miss
  // count crossed the failure threshold but the device itself is alive —
  // the orchestrator<->target path is flapping, so recovery was withheld
  // (one record per unreachability streak, app empty, target = the
  // unreachable target).
  enum class Kind { kShift, kShiftHome, kDeferral, kFailure, kRecovery,
                    kFlapSuppressed };
  Kind kind = Kind::kShift;
  SimTime at = 0;
  std::string app;
  std::string target;  // Destination TargetName() (empty: the host placement).
  bool warm = false;   // Typed-state transfer rode along (per-app policy).
};

struct RackOrchestratorConfig {
  // Shared offload power budget (<= 0: unlimited).
  double power_budget_watts = 0;
  // Shift only when the predicted saving exceeds this margin (hysteresis
  // falls out of applying it in both directions, like EnergyAwareController).
  double min_saving_watts = 2.0;
  // Predicted-watts penalty for choosing a reprogram-parked target.
  double reprogram_penalty_watts = 1.0;
  // Per-app damping.
  SimDuration check_period = Milliseconds(100);
  SimDuration min_dwell = Seconds(1);
  // Power/commitment timeseries cadence.
  SimDuration sample_period = Milliseconds(100);
  // Failure detector: poll every target's TargetAlive() at this cadence
  // (0: detector off); declare a target failed after this many consecutive
  // missed heartbeats and warm-restore its victims.
  SimDuration heartbeat_period = 0;
  int failure_threshold = 2;
  // Default checkpoint cadence for offloaded apps (0: off); RackAppSpec
  // overrides per app.
  SimDuration checkpoint_period = 0;
};

class RackOrchestrator {
 public:
  RackOrchestrator(Simulation& sim, RackOrchestratorConfig config = {});

  // Registers an application with its candidate placements. All referenced
  // targets/migrators must outlive the orchestrator. Returns the app index.
  size_t AddApp(RackAppSpec spec);

  void Start();
  void Stop() { stopped_ = true; }

  // Places an app on one of its options regardless of economics (benches
  // and failure drills: put the app where the fault will strike). Goes
  // through the same migrator/ledger machinery as a decided shift and is
  // logged as one; throws if the ledger cannot absorb the commitment.
  void ForcePlacement(size_t app_index, int option_index);

  // PSU brownout step: re-bases the shared budget and, when the committed
  // watts now exceed it, shifts the largest-commitment apps home until the
  // ledger invariant (committed <= budget) holds again. Victims on dead
  // targets are abandoned (no state transfer out of dead hardware).
  void ApplyPowerCap(double watts);

  // Declares how the orchestrator's heartbeats reach `target` (typically a
  // closure over the member link's down state). A heartbeat is missed when
  // the target is dead *or* unreachable; if the miss count crosses the
  // failure threshold while the device itself is alive, the detector
  // suppresses recovery (a link flap is not a death) and logs
  // kFlapSuppressed instead. Without a channel the target is always
  // considered reachable (the pre-PR god's-eye behaviour).
  void SetHeartbeatReachability(const OffloadTarget* target,
                                std::function<bool()> reachable);

  // --- Introspection ---
  const RackPowerLedger& ledger() const { return ledger_; }
  size_t app_count() const { return apps_.size(); }
  const std::string& app_name(size_t index) const { return apps_[index].spec.name; }
  // Currently chosen placement option for the app (nullptr: on host).
  const RackPlacementOption* current_option(size_t index) const;
  // Shifts the orchestrator performed onto the given target.
  uint64_t ShiftsToTarget(const OffloadTarget& target) const;
  uint64_t total_shifts() const { return total_shifts_; }
  // Shifts performed with the typed-state transfer enabled (warm policy).
  uint64_t warm_shifts() const { return warm_shifts_; }
  // Decisions skipped because the app's own target was mid-reprogram (the
  // app stays parked until its reconfiguration completes).
  uint64_t reprogram_deferrals() const { return reprogram_deferrals_; }
  uint64_t decisions_evaluated() const { return decisions_; }
  // Crash-recovery counters, reconciled against the decision log's
  // kFailure/kRecovery records by the property suite.
  uint64_t checkpoints_taken() const { return checkpoints_taken_; }
  uint64_t failures_detected() const { return failures_detected_; }
  uint64_t recoveries() const { return recoveries_; }
  // Unreachability streaks that crossed the failure threshold with the
  // device still alive (heartbeat link flaps, not deaths) — recovery was
  // suppressed. Reconciled against kFlapSuppressed decision records.
  uint64_t flap_suppressions() const { return flap_suppressions_; }
  // Checkpoint staleness surface: when the app's latest snapshot was taken
  // (-1: none yet).
  bool has_checkpoint(size_t index) const { return apps_.at(index).checkpoint_at >= 0; }
  SimTime last_checkpoint_at(size_t index) const { return apps_.at(index).checkpoint_at; }
  // Audit trail of shifts and deferrals, in decision order.
  const std::vector<RackDecisionRecord>& decision_log() const { return decision_log_; }
  // Rate a target is currently committed to absorb (capacity accounting).
  double CommittedPps(const OffloadTarget& target) const;

  // Watts of PDU headroom this rack would like for offloads right now: the
  // actual ledger commitment for offloaded apps plus, for each app still at
  // home, the cheapest alive option's would-be commitment at the measured
  // rate. The row orchestrator's demand-weighted apportionment reads this
  // through the periodic rack reports.
  double OffloadDemandWatts() const;

  // Per-rack timeseries, sampled every `sample_period` after Start():
  // committed offload watts, measured target watts, and offloaded-app count.
  const TimeSeries& committed_watts_series() const { return committed_series_; }
  const TimeSeries& measured_target_watts_series() const { return measured_series_; }
  const TimeSeries& offloaded_apps_series() const { return offloaded_series_; }

 private:
  // Renamed from the historical nested AppState: `latest_checkpoint` below
  // is an incod::AppState (the typed application snapshot).
  struct ManagedApp {
    RackAppSpec spec;
    int active_option = -1;  // Index into spec.options; -1: host placement.
    SimTime last_shift = 0;
    double committed_rate_pps = 0;
    // Latest periodic checkpoint of the offloaded placement, held "at the
    // home host" for warm restore; checkpoint_at < 0 means none taken.
    AppState latest_checkpoint;
    SimTime checkpoint_at = -1;
  };

  void Tick();
  void Sample();
  void Heartbeat();
  void DecideForApp(ManagedApp& app);
  void CheckpointApp(ManagedApp& app);
  void DeclareTargetFailed(OffloadTarget* target);
  void RecoverApp(ManagedApp& app);
  // Shift (or, when the placement is dead, abandon) the app back to the
  // host, releasing its ledger commitment and logging kShiftHome.
  void ShiftAppHome(ManagedApp& app, bool abandon);
  SimDuration CheckpointPeriodFor(const ManagedApp& app) const;
  // `is_current` exempts the app's own placement from the mid-reprogram
  // exclusion (yanking an app home because its own reconfiguration is
  // still in flight would abort the very shift we started).
  bool OptionEligible(const ManagedApp& app, const RackPlacementOption& option,
                      double rate, bool is_current) const;
  double PredictOptionWatts(const RackPlacementOption& option, double rate) const;
  std::string LedgerKey(const ManagedApp& app) const { return app.spec.name; }

  Simulation& sim_;
  RackOrchestratorConfig config_;
  RackPowerLedger ledger_;
  std::vector<ManagedApp> apps_;
  std::vector<RackDecisionRecord> decision_log_;
  std::map<const OffloadTarget*, uint64_t> shifts_to_target_;
  std::map<const OffloadTarget*, int> heartbeat_misses_;
  std::map<const OffloadTarget*, std::function<bool()>> reachability_;
  // Targets in a logged flap-suppression streak (cleared when reachable).
  std::set<const OffloadTarget*> flap_suspected_;
  std::set<const OffloadTarget*> failed_targets_;
  TimeSeries committed_series_{"rack_committed_watts"};
  TimeSeries measured_series_{"rack_target_watts"};
  TimeSeries offloaded_series_{"rack_offloaded_apps"};
  uint64_t total_shifts_ = 0;
  uint64_t warm_shifts_ = 0;
  uint64_t reprogram_deferrals_ = 0;
  uint64_t decisions_ = 0;
  uint64_t checkpoints_taken_ = 0;
  uint64_t failures_detected_ = 0;
  uint64_t recoveries_ = 0;
  uint64_t flap_suppressions_ = 0;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace incod

#endif  // INCOD_SRC_ONDEMAND_RACK_H_
