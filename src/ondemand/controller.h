// On-demand offload controllers (§9.1).
//
// Two proof-of-concept controllers decide when to shift a workload between
// host and network, each with a mirrored parameter pair for hysteresis:
//
//  * NetworkController — runs "within the FPGA's classifier" (40 lines in
//    the paper's prototype). Signal: average application message rate over
//    a sliding averaging window. Pros: reacts early, offloads the host.
//    Cons: cannot see host power ("it only has access to the packet rate").
//
//  * HostController — runs on the host (204 lines, 0.3 % CPU in the paper,
//    "mainly for performing RAPL reads"). Signals: the application's CPU
//    usage and RAPL package power, inspected over time to avoid "harsh
//    decisions based on spikes and outliers"; shifting back additionally
//    requires rate feedback from the network device.
//
// Both controllers read their device signals through the OffloadTarget
// interface, so the same decision code runs against an FPGA NIC, a
// SmartNIC, or a switch ASIC program.
#ifndef INCOD_SRC_ONDEMAND_CONTROLLER_H_
#define INCOD_SRC_ONDEMAND_CONTROLLER_H_

#include <functional>
#include <string>
#include <vector>

#include "src/device/offload_target.h"
#include "src/host/server.h"
#include "src/ondemand/migrator.h"
#include "src/power/meter.h"
#include "src/sim/simulation.h"
#include "src/stats/timeseries.h"

namespace incod {

class OffloadController {
 public:
  virtual ~OffloadController() = default;

  virtual void Start() = 0;
  virtual void Stop() { stopped_ = true; }
  virtual std::string ControllerName() const = 0;

 protected:
  bool stopped_ = false;
};

// ---------------------------------------------------------------------------

struct NetworkControllerConfig {
  // Shift host -> network when the average app message rate over
  // `up_window` is at least `up_rate_pps`.
  double up_rate_pps = 150000;
  SimDuration up_window = Seconds(1);
  // Mirrored pair for network -> host.
  double down_rate_pps = 50000;
  SimDuration down_window = Seconds(3);
  // Decision cadence.
  SimDuration check_period = Milliseconds(100);
  // Minimum dwell after any shift (additional back-and-forth damping).
  SimDuration min_dwell = Seconds(1);
};

class NetworkController : public OffloadController {
 public:
  NetworkController(Simulation& sim, OffloadTarget& target, Migrator& migrator,
                    NetworkControllerConfig config = {});

  void Start() override;
  std::string ControllerName() const override { return "network-controlled"; }

  const NetworkControllerConfig& config() const { return config_; }
  uint64_t decisions_evaluated() const { return decisions_; }

 private:
  void Tick();

  Simulation& sim_;
  OffloadTarget& target_;
  Migrator& migrator_;
  NetworkControllerConfig config_;
  SlidingWindowMean up_mean_;
  SlidingWindowMean down_mean_;
  uint64_t last_ingress_count_ = 0;
  SimTime last_tick_ = 0;
  SimTime last_shift_ = 0;
  bool started_ = false;
  uint64_t decisions_ = 0;
};

// ---------------------------------------------------------------------------

struct HostControllerConfig {
  // Shift host -> network when RAPL power exceeds `up_power_watts` AND the
  // app's CPU usage exceeds `up_cpu_usage`, both sustained over `up_window`
  // (Fig 6 uses three seconds of sustained high load).
  double up_power_watts = 25.0;
  double up_cpu_usage = 0.5;
  SimDuration up_window = Seconds(3);
  // Shift network -> host when the device-reported processed rate falls
  // below `down_rate_pps` AND RAPL power is below `down_power_watts` over
  // `down_window` (rate feedback prevents inefficient bounce-back, §9.1).
  double down_rate_pps = 50000;
  double down_power_watts = 20.0;
  SimDuration down_window = Seconds(3);
  SimDuration check_period = Milliseconds(100);
  SimDuration min_dwell = Seconds(1);
};

class HostController : public OffloadController {
 public:
  HostController(Simulation& sim, Server& server, AppProto app, RaplCounter& rapl,
                 OffloadTarget& target, Migrator& migrator,
                 HostControllerConfig config = {});

  void Start() override;
  std::string ControllerName() const override { return "host-controlled"; }

  const HostControllerConfig& config() const { return config_; }
  // Most recent RAPL-derived power reading (for the Fig 6 timeline).
  double last_rapl_watts() const { return last_rapl_watts_; }

 private:
  void Tick();

  Simulation& sim_;
  Server& server_;
  AppProto app_;
  RaplCounter& rapl_;
  OffloadTarget& target_;
  Migrator& migrator_;
  HostControllerConfig config_;
  SlidingWindowMean power_mean_;
  SlidingWindowMean cpu_mean_;
  SlidingWindowMean rate_mean_;
  uint64_t last_energy_uj_ = 0;
  SimTime last_tick_ = 0;
  SimTime last_shift_ = 0;
  double last_rapl_watts_ = 0;
  bool started_ = false;
};

}  // namespace incod

#endif  // INCOD_SRC_ONDEMAND_CONTROLLER_H_
