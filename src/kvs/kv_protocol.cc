#include "src/kvs/kv_protocol.h"

namespace incod {

const char* KvOpName(KvOp op) {
  switch (op) {
    case KvOp::kGet:
      return "GET";
    case KvOp::kSet:
      return "SET";
    case KvOp::kDelete:
      return "DELETE";
  }
  return "?";
}

uint32_t KvRequestWireBytes(const KvRequest& request) {
  uint32_t bytes = kKvHeaderBytes + 8;  // Header + key.
  if (request.op == KvOp::kSet) {
    bytes += request.value_bytes;
  }
  return bytes;
}

uint32_t KvResponseWireBytes(const KvResponse& response) {
  uint32_t bytes = kKvHeaderBytes + 8;
  if (response.op == KvOp::kGet && response.hit) {
    bytes += response.value_bytes;
  }
  return bytes;
}

Packet MakeKvRequestPacket(NodeId src, NodeId dst, const KvRequest& request, uint64_t id,
                           SimTime now) {
  Packet pkt;
  pkt.src = src;
  pkt.dst = dst;
  pkt.proto = AppProto::kKv;
  pkt.size_bytes = KvRequestWireBytes(request);
  pkt.id = id;
  pkt.created_at = now;
  pkt.payload = request;
  return pkt;
}

Packet MakeKvResponsePacket(NodeId src, NodeId dst, const KvResponse& response,
                            uint64_t id, SimTime now) {
  Packet pkt;
  pkt.src = src;
  pkt.dst = dst;
  pkt.proto = AppProto::kKv;
  pkt.size_bytes = KvResponseWireBytes(response);
  pkt.id = id;
  pkt.created_at = now;
  pkt.payload = response;
  return pkt;
}

}  // namespace incod
