#include "src/kvs/netcache.h"

#include <stdexcept>
#include <utility>

#include "src/sim/simulation.h"

namespace incod {

KvSwitchCache::KvSwitchCache(KvSwitchCacheConfig config)
    : config_(config),
      cache_(config.cache_entries),
      sketch_(config.sketch_width, config.sketch_depth) {
  if (config_.kvs_service == 0) {
    throw std::invalid_argument("KvSwitchCache: kvs_service required");
  }
}

double KvSwitchCache::HitRatio() const {
  const uint64_t total = hits_.value() + misses_.value();
  return total == 0 ? 0.0 : static_cast<double>(hits_.value()) / static_cast<double>(total);
}

bool KvSwitchCache::HandleGet(AppContext& ctx, const Packet& packet,
                              const KvRequest& request) {
  uint32_t bytes = 0;
  if (cache_.Get(request.key, &bytes)) {
    hits_.Increment();
    KvResponse resp{KvOp::kGet, request.key, true, bytes};
    ctx.Reply(
        MakeKvResponsePacket(packet.dst, packet.src, resp, packet.id, ctx.sim().Now()));
    return true;  // Served at line rate; request terminated in the switch.
  }
  // Miss: count towards hotness and let the server answer (the fill
  // happens when the response passes back through, mirroring NetCache's
  // controller-mediated insertion).
  misses_.Increment();
  sketch_.Increment(request.key);
  return false;
}

void KvSwitchCache::ObserveResponse(const Packet& packet, const KvResponse& response) {
  (void)packet;
  if (response.op != KvOp::kGet || !response.hit) {
    return;
  }
  if (response.value_bytes > config_.max_value_bytes) {
    return;  // Does not fit the register-array slot.
  }
  if (sketch_.Estimate(response.key) >= config_.hot_threshold) {
    cache_.Set(response.key, response.value_bytes);
    insertions_.Increment();
  }
}

void KvSwitchCache::HandlePacket(AppContext& ctx, Packet packet) {
  if (const KvRequest* request = PayloadIf<KvRequest>(packet);
      request != nullptr && packet.dst == config_.kvs_service) {
    switch (request->op) {
      case KvOp::kGet:
        if (HandleGet(ctx, packet, *request)) {
          return;
        }
        break;
      case KvOp::kSet:
      case KvOp::kDelete:
        // Write-around with invalidation: the server owns the data.
        if (cache_.Delete(request->key)) {
          invalidations_.Increment();
        }
        break;
    }
  } else if (const KvResponse* response = PayloadIf<KvResponse>(packet);
             response != nullptr && packet.src == config_.kvs_service) {
    ObserveResponse(packet, *response);
  }
  // Everything not answered at line rate continues through the pipeline.
  ctx.Punt(std::move(packet));
}

AppState KvSwitchCache::SnapshotState() const {
  KvAppState kv;
  kv.primary = KvEntriesFromPairs(cache_.SnapshotLru());
  return AppState{proto(), AppName(), std::move(kv)};
}

void KvSwitchCache::RestoreState(const AppState& state) {
  const KvAppState* kv = std::get_if<KvAppState>(&state.data);
  if (kv == nullptr) {
    return;
  }
  cache_.RestoreLru(KvPairsFromEntries(kv->primary));
}

}  // namespace incod
