#include "src/kvs/netcache.h"

#include <stdexcept>
#include <utility>

namespace incod {

KvSwitchCache::KvSwitchCache(KvSwitchCacheConfig config)
    : config_(config),
      cache_(config.cache_entries),
      sketch_(config.sketch_width, config.sketch_depth) {
  if (config_.kvs_service == 0) {
    throw std::invalid_argument("KvSwitchCache: kvs_service required");
  }
}

double KvSwitchCache::HitRatio() const {
  const uint64_t total = hits_.value() + misses_.value();
  return total == 0 ? 0.0 : static_cast<double>(hits_.value()) / static_cast<double>(total);
}

bool KvSwitchCache::HandleGet(SwitchAsic& sw, const Packet& packet,
                              const KvRequest& request) {
  uint32_t bytes = 0;
  if (cache_.Get(request.key, &bytes)) {
    hits_.Increment();
    KvResponse resp{KvOp::kGet, request.key, true, bytes};
    sw.TransmitFromPipeline(
        MakeKvResponsePacket(packet.dst, packet.src, resp, packet.id, sw.sim().Now()));
    return true;  // Served at line rate; request terminated in the switch.
  }
  // Miss: count towards hotness and let the server answer (the fill
  // happens when the response passes back through, mirroring NetCache's
  // controller-mediated insertion).
  misses_.Increment();
  sketch_.Increment(request.key);
  return false;
}

void KvSwitchCache::ObserveResponse(const Packet& packet, const KvResponse& response) {
  (void)packet;
  if (response.op != KvOp::kGet || !response.hit) {
    return;
  }
  if (response.value_bytes > config_.max_value_bytes) {
    return;  // Does not fit the register-array slot.
  }
  if (sketch_.Estimate(response.key) >= config_.hot_threshold) {
    cache_.Set(response.key, response.value_bytes);
    insertions_.Increment();
  }
}

bool KvSwitchCache::Process(SwitchAsic& sw, Packet& packet) {
  if (packet.proto != AppProto::kKv) {
    return false;
  }
  if (const KvRequest* request = PayloadIf<KvRequest>(packet);
      request != nullptr && packet.dst == config_.kvs_service) {
    switch (request->op) {
      case KvOp::kGet:
        return HandleGet(sw, packet, *request);
      case KvOp::kSet:
      case KvOp::kDelete:
        // Write-around with invalidation: the server owns the data.
        if (cache_.Delete(request->key)) {
          invalidations_.Increment();
        }
        return false;
    }
    return false;
  }
  if (const KvResponse* response = PayloadIf<KvResponse>(packet);
      response != nullptr && packet.src == config_.kvs_service) {
    ObserveResponse(packet, *response);
    return false;  // Responses always continue to the client.
  }
  return false;
}

}  // namespace incod
