// memcached-style key-value wire messages (struct-only).
//
// Split from kv_protocol.h so packet.h can include the message structs for
// the payload variant without a circular include; kv_protocol.h re-exports
// these alongside the wire-size and packet-building helpers.
#ifndef INCOD_SRC_KVS_KV_MESSAGES_H_
#define INCOD_SRC_KVS_KV_MESSAGES_H_

#include <cstdint>

namespace incod {

enum class KvOp : uint8_t { kGet, kSet, kDelete };

const char* KvOpName(KvOp op);

struct KvRequest {
  KvOp op = KvOp::kGet;
  uint64_t key = 0;
  uint32_t value_bytes = 0;  // SET payload size (value content is not modeled).
};

struct KvResponse {
  KvOp op = KvOp::kGet;
  uint64_t key = 0;
  bool hit = false;          // GET: found; SET/DELETE: stored/deleted.
  uint32_t value_bytes = 0;  // GET hit: returned value size.
};

}  // namespace incod

#endif  // INCOD_SRC_KVS_KV_MESSAGES_H_
