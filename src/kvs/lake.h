// LaKe: layered key-value store cache on the FPGA NIC (§3.1, §5).
//
// Two cache levels sit in front of the host's memcached:
//   L1: on-chip BRAM (small, ~1.4 us total hit latency),
//   L2: on-board DRAM (33M entries, a few hundred ns extra; §5.3),
// with misses punted over PCIe to the host ("A query is only forwarded to
// software if there are misses at both layers"). SETs update both cache
// levels (write-through) and continue to the authoritative host store.
// GET-miss replies from the host fill the caches on their way out.
//
// Power (§5.1-5.3): logic overhead over the reference NIC is 2.2 W for five
// PEs plus classifier/interconnect; each PE costs ~0.25 W and sustains up to
// 3.3 Mqps; DRAM interface 4.8 W; SRAM interface 6 W.
#ifndef INCOD_SRC_KVS_LAKE_H_
#define INCOD_SRC_KVS_LAKE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/app/app.h"
#include "src/kvs/kv_protocol.h"
#include "src/kvs/kv_store.h"
#include "src/stats/counters.h"

namespace incod {

struct LakeConfig {
  int num_pes = 5;                 // 5 PEs reach 10GE line rate (§3.1).
  size_t l1_entries = 4096;        // On-chip BRAM cache.
  bool use_dram = true;            // L2 cache in on-board DRAM.
  bool use_sram = true;            // Free-chunk list in SRAM (power only).
  size_t l2_entries = 33'000'000;  // 4GB DRAM: 33M 64B-chunk entries (§5.3).
  // Per-PE initiation interval: 3.3 Mqps per PE (§5.2).
  SimDuration pe_service = Nanoseconds(303);
  // Constant pipeline traversal cost (parse + hash + egress).
  SimDuration pipeline_latency = Nanoseconds(800);
  // Additional L1 (BRAM) lookup-to-reply time: total on-chip hit <= 1.4 us.
  SimDuration l1_reply_delay = Nanoseconds(300);
  // Additional DRAM access time for an L2 hit (total ~1.9 us, §5.3).
  SimDuration l2_reply_delay = Nanoseconds(800);
};

class LakeCache : public App {
 public:
  explicit LakeCache(LakeConfig config = {});

  AppProto proto() const override { return AppProto::kKv; }
  std::string AppName() const override { return "lake"; }
  bool SupportsPlacement(PlacementKind placement) const override {
    return placement == PlacementKind::kFpgaNic;
  }

  std::vector<ModulePowerSpec> PowerModules() const;
  FpgaPipelineSpec PipelineSpec() const;
  OffloadPlacementProfile OffloadProfile() const override {
    OffloadPlacementProfile profile;
    profile.pipeline = PipelineSpec();
    profile.power_modules = PowerModules();
    profile.dynamic_watts_at_capacity = 1.0;
    return profile;
  }

  void HandlePacket(AppContext& ctx, Packet packet) override;
  void OnMemoryReset() override;
  void OnHostEgress(AppContext& ctx, const Packet& packet) override;

  // App state contract: both cache levels in LRU order (the warm state a
  // kKeepWarm park or a generic state transfer preserves).
  AppState SnapshotState() const override;
  void RestoreState(const AppState& state) override;

  // Pre-populates both cache levels (benchmark warm start).
  void WarmFill(uint64_t first_key, uint64_t count, uint32_t value_bytes);

  KvStore& l1() { return *l1_; }
  KvStore* l2() { return l2_.get(); }
  const LakeConfig& config() const { return config_; }

  uint64_t l1_hits() const { return l1_hits_.value(); }
  uint64_t l2_hits() const { return l2_hits_.value(); }
  uint64_t misses_to_host() const { return misses_to_host_.value(); }
  // Hardware-served fraction of GETs (cache effectiveness).
  double HardwareHitRatio() const;

 private:
  void Reply(AppContext& ctx, const Packet& request, const KvResponse& response,
             SimDuration extra_delay);

  LakeConfig config_;
  std::unique_ptr<KvStore> l1_;
  std::unique_ptr<KvStore> l2_;
  Counter l1_hits_;
  Counter l2_hits_;
  Counter misses_to_host_;
};

}  // namespace incod

#endif  // INCOD_SRC_KVS_LAKE_H_
