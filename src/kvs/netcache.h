// NetCache-style key-value cache in the switch ASIC pipeline.
//
// The paper points to NetCache/NetChain (Jin et al.) as proof that caches
// fit a Tofino, and §9.2 argues DNS/KVS responses "fit comfortably within
// the storage limits for values identified in their evaluation". This
// program caches hot keys in switch register arrays: GETs that hit are
// answered at line rate; misses and writes pass through to the server.
// Hot-key detection uses a count-min sketch over the miss stream, and
// cached entries are invalidated by passing SET/DELETEs.
//
// Implemented as a unified App on the switch-ASIC placement: the pipeline
// feeds it through SwitchHostedApp, replies leave via ctx.Reply() and
// pass-through traffic via ctx.Punt().
#ifndef INCOD_SRC_KVS_NETCACHE_H_
#define INCOD_SRC_KVS_NETCACHE_H_

#include <string>

#include "src/app/switch_app.h"
#include "src/kvs/kv_protocol.h"
#include "src/kvs/kv_store.h"
#include "src/stats/count_min.h"
#include "src/stats/counters.h"

namespace incod {

struct KvSwitchCacheConfig {
  NodeId kvs_service = 0;      // Address of the KVS this cache fronts.
  size_t cache_entries = 65536;  // Register-array budget (NetCache: 64K items).
  uint32_t max_value_bytes = 128;  // Values above this are not cacheable.
  // A key becomes cache-worthy after this many estimated accesses.
  uint64_t hot_threshold = 8;
  size_t sketch_width = 4096;
  size_t sketch_depth = 3;
  // §6-style power accounting relative to L2 forwarding.
  double power_overhead_at_full_load = 0.02;
};

class KvSwitchCache : public SwitchHostedApp {
 public:
  explicit KvSwitchCache(KvSwitchCacheConfig config);

  AppProto proto() const override { return AppProto::kKv; }
  std::string AppName() const override { return "netcache-kv"; }
  OffloadPlacementProfile OffloadProfile() const override {
    OffloadPlacementProfile profile;
    profile.switch_power_overhead_at_full_load = config_.power_overhead_at_full_load;
    return profile;
  }

  // Requests to the fronted service and responses from it (for cache fill).
  bool Matches(const Packet& packet) const override {
    return packet.proto == AppProto::kKv;
  }
  void HandlePacket(AppContext& ctx, Packet packet) override;

  // App state contract: the register-array cache contents in LRU order.
  AppState SnapshotState() const override;
  void RestoreState(const AppState& state) override;

  KvStore& cache() { return cache_; }
  uint64_t hits() const { return hits_.value(); }
  uint64_t misses_forwarded() const { return misses_.value(); }
  uint64_t invalidations() const { return invalidations_.value(); }
  uint64_t insertions() const { return insertions_.value(); }
  double HitRatio() const;

 private:
  // Returns true when the GET was answered from the cache.
  bool HandleGet(AppContext& ctx, const Packet& packet, const KvRequest& request);
  void ObserveResponse(const Packet& packet, const KvResponse& response);

  KvSwitchCacheConfig config_;
  KvStore cache_;
  CountMinSketch sketch_;
  Counter hits_;
  Counter misses_;
  Counter invalidations_;
  Counter insertions_;
};

}  // namespace incod

#endif  // INCOD_SRC_KVS_NETCACHE_H_
