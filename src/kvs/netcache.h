// NetCache-style key-value cache in the switch ASIC pipeline.
//
// The paper points to NetCache/NetChain (Jin et al.) as proof that caches
// fit a Tofino, and §9.2 argues DNS/KVS responses "fit comfortably within
// the storage limits for values identified in their evaluation". This
// program caches hot keys in switch register arrays: GETs that hit are
// answered at line rate; misses and writes pass through to the server.
// Hot-key detection uses a count-min sketch over the miss stream, and
// cached entries are invalidated by passing SET/DELETEs.
#ifndef INCOD_SRC_KVS_NETCACHE_H_
#define INCOD_SRC_KVS_NETCACHE_H_

#include <string>

#include "src/device/switch_asic.h"
#include "src/kvs/kv_protocol.h"
#include "src/kvs/kv_store.h"
#include "src/stats/count_min.h"
#include "src/stats/counters.h"

namespace incod {

struct KvSwitchCacheConfig {
  NodeId kvs_service = 0;      // Address of the KVS this cache fronts.
  size_t cache_entries = 65536;  // Register-array budget (NetCache: 64K items).
  uint32_t max_value_bytes = 128;  // Values above this are not cacheable.
  // A key becomes cache-worthy after this many estimated accesses.
  uint64_t hot_threshold = 8;
  size_t sketch_width = 4096;
  size_t sketch_depth = 3;
  // §6-style power accounting relative to L2 forwarding.
  double power_overhead_at_full_load = 0.02;
};

class KvSwitchCache : public SwitchProgram {
 public:
  explicit KvSwitchCache(KvSwitchCacheConfig config);

  std::string ProgramName() const override { return "netcache-kv"; }
  double PowerOverheadAtFullLoad() const override {
    return config_.power_overhead_at_full_load;
  }
  bool Process(SwitchAsic& sw, Packet& packet) override;

  KvStore& cache() { return cache_; }
  uint64_t hits() const { return hits_.value(); }
  uint64_t misses_forwarded() const { return misses_.value(); }
  uint64_t invalidations() const { return invalidations_.value(); }
  uint64_t insertions() const { return insertions_.value(); }
  double HitRatio() const;

 private:
  bool HandleGet(SwitchAsic& sw, const Packet& packet, const KvRequest& request);
  void ObserveResponse(const Packet& packet, const KvResponse& response);

  KvSwitchCacheConfig config_;
  KvStore cache_;
  CountMinSketch sketch_;
  Counter hits_;
  Counter misses_;
  Counter invalidations_;
  Counter insertions_;
};

}  // namespace incod

#endif  // INCOD_SRC_KVS_NETCACHE_H_
