#include "src/kvs/lake.h"

#include <stdexcept>
#include <utility>

#include "src/device/fpga_nic.h"
#include "src/sim/simulation.h"

namespace incod {

LakeCache::LakeCache(LakeConfig config) : config_(config) {
  if (config_.num_pes < 1) {
    throw std::invalid_argument("LakeCache: need >= 1 PE");
  }
  l1_ = std::make_unique<KvStore>(config_.l1_entries);
  if (config_.use_dram) {
    l2_ = std::make_unique<KvStore>(config_.l2_entries);
  }
}

std::vector<ModulePowerSpec> LakeCache::PowerModules() const {
  std::vector<ModulePowerSpec> modules;
  // Classifier + interconnect: the 2.2 W logic total (§5.2) minus the PEs.
  modules.push_back(MakeModuleSpec("classifier", 0.95, kLogicStaticFraction, 1.0));
  for (int i = 0; i < config_.num_pes; ++i) {
    modules.push_back(MakeModuleSpec("pe" + std::to_string(i), kFpgaPeWatts,
                                     kLogicStaticFraction, 1.0));
  }
  if (config_.use_dram) {
    modules.push_back(MakeModuleSpec("dram_if", kFpgaDramWatts, 1.0, kMemResetFraction));
  }
  if (config_.use_sram) {
    modules.push_back(MakeModuleSpec("sram_if", kFpgaSramWatts, 1.0, kMemResetFraction));
  }
  return modules;
}

FpgaPipelineSpec LakeCache::PipelineSpec() const {
  FpgaPipelineSpec spec;
  spec.workers = config_.num_pes;
  spec.worker_service = config_.pe_service;
  spec.pipeline_latency = config_.pipeline_latency;
  spec.input_queue_capacity = 512;
  return spec;
}

void LakeCache::Reply(AppContext& ctx, const Packet& request, const KvResponse& response,
                      SimDuration extra_delay) {
  const NodeId src = ctx.self_node() != 0 ? ctx.self_node() : request.dst;
  Packet out = MakeKvResponsePacket(src, request.src, response, request.id,
                                    ctx.sim().Now());
  AppContext* c = &ctx;
  ctx.sim().Schedule(extra_delay, [c, out = std::move(out)]() mutable {
    c->Reply(std::move(out));
  });
}

void LakeCache::HandlePacket(AppContext& ctx, Packet packet) {
  const KvRequest req = PayloadAs<KvRequest>(packet);
  switch (req.op) {
    case KvOp::kGet: {
      uint32_t bytes = 0;
      if (l1_->Get(req.key, &bytes)) {
        l1_hits_.Increment();
        Reply(ctx, packet, KvResponse{KvOp::kGet, req.key, true, bytes},
              config_.l1_reply_delay);
        return;
      }
      if (l2_ != nullptr && l2_->Get(req.key, &bytes)) {
        l2_hits_.Increment();
        // Promote to L1 for subsequent hits.
        l1_->Set(req.key, bytes);
        Reply(ctx, packet, KvResponse{KvOp::kGet, req.key, true, bytes},
              config_.l2_reply_delay);
        return;
      }
      misses_to_host_.Increment();
      ctx.Punt(std::move(packet));
      return;
    }
    case KvOp::kSet: {
      // Write-through: update the cache levels, then let the host store the
      // authoritative copy (it also produces the client's reply).
      l1_->Set(req.key, req.value_bytes);
      if (l2_ != nullptr) {
        l2_->Set(req.key, req.value_bytes);
      }
      ctx.Punt(std::move(packet));
      return;
    }
    case KvOp::kDelete: {
      l1_->Delete(req.key);
      if (l2_ != nullptr) {
        l2_->Delete(req.key);
      }
      ctx.Punt(std::move(packet));
      return;
    }
  }
}

void LakeCache::OnMemoryReset() {
  // Both cache levels lose their contents: "at first all memory accesses
  // will be a miss ... until the cache, both on and off chip, warms" (§9.2).
  l1_->Clear();
  if (l2_ != nullptr) {
    l2_->Clear();
  }
}

void LakeCache::OnHostEgress(AppContext& ctx, const Packet& packet) {
  (void)ctx;
  const KvResponse* resp_if = PayloadIf<KvResponse>(packet);
  if (resp_if == nullptr) {
    return;
  }
  const KvResponse& resp = *resp_if;
  if (resp.op == KvOp::kGet && resp.hit) {
    // Fill on the way out: the next GET for this key hits in hardware.
    if (l2_ != nullptr) {
      l2_->Set(resp.key, resp.value_bytes);
    }
    l1_->Set(resp.key, resp.value_bytes);
  }
}

void LakeCache::WarmFill(uint64_t first_key, uint64_t count, uint32_t value_bytes) {
  for (uint64_t k = first_key; k < first_key + count; ++k) {
    if (l2_ != nullptr) {
      l2_->Set(k, value_bytes);
    }
    if (k < first_key + l1_->capacity()) {
      l1_->Set(k, value_bytes);
    }
  }
}

double LakeCache::HardwareHitRatio() const {
  const uint64_t hw = l1_hits_.value() + l2_hits_.value();
  const uint64_t total = hw + misses_to_host_.value();
  return total == 0 ? 0.0 : static_cast<double>(hw) / static_cast<double>(total);
}

AppState LakeCache::SnapshotState() const {
  KvAppState kv;
  kv.primary = KvEntriesFromPairs(l1_->SnapshotLru());
  if (l2_ != nullptr) {
    kv.secondary = KvEntriesFromPairs(l2_->SnapshotLru());
  }
  return AppState{proto(), AppName(), std::move(kv)};
}

void LakeCache::RestoreState(const AppState& state) {
  const KvAppState* kv = std::get_if<KvAppState>(&state.data);
  if (kv == nullptr) {
    return;
  }
  l1_->RestoreLru(KvPairsFromEntries(kv->primary));
  if (l2_ != nullptr) {
    // A host store's snapshot has everything in `primary`; LaKe fills its
    // large L2 from whichever side carries the bulk contents.
    l2_->RestoreLru(
        KvPairsFromEntries(kv->secondary.empty() ? kv->primary : kv->secondary));
  }
}

}  // namespace incod
