// Software memcached model (host placement of the KVS app family).
//
// Calibration (§4.2): memcached v1.5.1 on the i7-6700K peaks around 1 Mpps
// with all four cores busy. With the kernel stack's 1 µs rx + 0.5 µs tx
// per-packet cost, a 2.5 µs application service time yields 250 Kqps per
// worker thread — 1 Mqps across 4 threads.
#ifndef INCOD_SRC_KVS_MEMCACHED_SERVER_H_
#define INCOD_SRC_KVS_MEMCACHED_SERVER_H_

#include <string>

#include "src/app/app.h"
#include "src/kvs/kv_protocol.h"
#include "src/kvs/kv_store.h"

namespace incod {

struct MemcachedConfig {
  size_t capacity_entries = 1 << 22;  // 4M entries in host DRAM.
  int threads = 4;
  SimDuration get_cpu_time = Nanoseconds(2500);
  SimDuration set_cpu_time = Nanoseconds(2800);
};

class MemcachedServer : public App {
 public:
  explicit MemcachedServer(MemcachedConfig config = {});

  AppProto proto() const override { return AppProto::kKv; }
  std::string AppName() const override { return "memcached"; }
  bool SupportsPlacement(PlacementKind placement) const override {
    return placement == PlacementKind::kHost;
  }
  HostPlacementProfile HostProfile() const override {
    return HostPlacementProfile{config_.threads, std::nullopt};
  }

  SimDuration CpuTimePerRequest(const Packet& packet) const override;
  void HandlePacket(AppContext& ctx, Packet packet) override;

  // App state contract: the authoritative store contents in LRU order.
  AppState SnapshotState() const override;
  void RestoreState(const AppState& state) override;

  KvStore& store() { return store_; }
  const KvStore& store() const { return store_; }
  uint64_t gets() const { return gets_.value(); }
  uint64_t sets() const { return sets_.value(); }

 private:
  MemcachedConfig config_;
  KvStore store_;
  Counter gets_;
  Counter sets_;
};

}  // namespace incod

#endif  // INCOD_SRC_KVS_MEMCACHED_SERVER_H_
