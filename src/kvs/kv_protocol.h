// memcached-style key-value protocol messages.
//
// The paper's LaKe supports "standard memcached functionality" (§3.1); we
// model the binary-protocol semantics (GET/SET/DELETE over UDP) with numeric
// keys and byte-counted values.
#ifndef INCOD_SRC_KVS_KV_PROTOCOL_H_
#define INCOD_SRC_KVS_KV_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "src/kvs/kv_messages.h"
#include "src/net/packet.h"
#include "src/sim/time.h"

namespace incod {

// Wire sizes (UDP + memcached binary framing).
constexpr uint32_t kKvHeaderBytes = 66;

uint32_t KvRequestWireBytes(const KvRequest& request);
uint32_t KvResponseWireBytes(const KvResponse& response);

// Builds a request packet addressed to a KVS service.
Packet MakeKvRequestPacket(NodeId src, NodeId dst, const KvRequest& request, uint64_t id,
                           SimTime now);
Packet MakeKvResponsePacket(NodeId src, NodeId dst, const KvResponse& response,
                            uint64_t id, SimTime now);

}  // namespace incod

#endif  // INCOD_SRC_KVS_KV_PROTOCOL_H_
