// memcached-style key-value protocol messages.
//
// The paper's LaKe supports "standard memcached functionality" (§3.1); we
// model the binary-protocol semantics (GET/SET/DELETE over UDP) with numeric
// keys and byte-counted values.
#ifndef INCOD_SRC_KVS_KV_PROTOCOL_H_
#define INCOD_SRC_KVS_KV_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "src/net/packet.h"
#include "src/sim/time.h"

namespace incod {

enum class KvOp : uint8_t { kGet, kSet, kDelete };

const char* KvOpName(KvOp op);

struct KvRequest {
  KvOp op = KvOp::kGet;
  uint64_t key = 0;
  uint32_t value_bytes = 0;  // SET payload size (value content is not modeled).
};

struct KvResponse {
  KvOp op = KvOp::kGet;
  uint64_t key = 0;
  bool hit = false;          // GET: found; SET/DELETE: stored/deleted.
  uint32_t value_bytes = 0;  // GET hit: returned value size.
};

// Wire sizes (UDP + memcached binary framing).
constexpr uint32_t kKvHeaderBytes = 66;

uint32_t KvRequestWireBytes(const KvRequest& request);
uint32_t KvResponseWireBytes(const KvResponse& response);

// Builds a request packet addressed to a KVS service.
Packet MakeKvRequestPacket(NodeId src, NodeId dst, const KvRequest& request, uint64_t id,
                           SimTime now);
Packet MakeKvResponsePacket(NodeId src, NodeId dst, const KvResponse& response,
                            uint64_t id, SimTime now);

}  // namespace incod

#endif  // INCOD_SRC_KVS_KV_PROTOCOL_H_
