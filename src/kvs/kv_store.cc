#include "src/kvs/kv_store.h"

#include <stdexcept>

namespace incod {

KvStore::KvStore(size_t capacity_entries) : capacity_(capacity_entries) {
  if (capacity_entries == 0) {
    throw std::invalid_argument("KvStore: capacity must be > 0");
  }
}

bool KvStore::Get(uint64_t key, uint32_t* value_bytes) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    lookups_.Miss();
    return false;
  }
  lookups_.Hit();
  lru_.splice(lru_.begin(), lru_, it->second);
  if (value_bytes != nullptr) {
    *value_bytes = it->second->value_bytes;
  }
  return true;
}

void KvStore::Set(uint64_t key, uint32_t value_bytes) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->value_bytes = value_bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (index_.size() >= capacity_) {
    const Entry& victim = lru_.back();
    index_.erase(victim.key);
    lru_.pop_back();
    evictions_.Increment();
  }
  lru_.push_front(Entry{key, value_bytes});
  index_[key] = lru_.begin();
}

bool KvStore::Delete(uint64_t key) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    return false;
  }
  lru_.erase(it->second);
  index_.erase(it);
  return true;
}

void KvStore::Clear() {
  lru_.clear();
  index_.clear();
}

std::vector<std::pair<uint64_t, uint32_t>> KvStore::SnapshotLru() const {
  std::vector<std::pair<uint64_t, uint32_t>> entries;
  entries.reserve(lru_.size());
  // Front of the list is most recently used; emit coldest first.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    entries.emplace_back(it->key, it->value_bytes);
  }
  return entries;
}

void KvStore::RestoreLru(const std::vector<std::pair<uint64_t, uint32_t>>& entries) {
  Clear();
  for (const auto& [key, value_bytes] : entries) {
    Set(key, value_bytes);
  }
}

}  // namespace incod
