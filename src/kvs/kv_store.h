// Bounded key-value store with LRU eviction.
//
// The same store logic backs the software memcached model and both levels
// of LaKe's layered cache, so shifting a workload between host and network
// preserves semantics (a requirement of on-demand shifting, §9).
#ifndef INCOD_SRC_KVS_KV_STORE_H_
#define INCOD_SRC_KVS_KV_STORE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/stats/counters.h"

namespace incod {

class KvStore {
 public:
  // capacity_entries: maximum number of resident keys (0 is invalid).
  explicit KvStore(size_t capacity_entries);

  // Returns true and writes the stored value size on hit; promotes the entry
  // to most-recently-used.
  bool Get(uint64_t key, uint32_t* value_bytes);

  // Inserts or updates; evicts the least-recently-used entry when full.
  void Set(uint64_t key, uint32_t value_bytes);

  // Returns true if the key existed.
  bool Delete(uint64_t key);

  bool Contains(uint64_t key) const { return index_.count(key) != 0; }

  void Clear();

  // State-transfer support (the App snapshot contract): entries in least-
  // to most-recently-used order, so replaying them through Set() rebuilds
  // the exact LRU order. RestoreLru clears first; restoring into a smaller
  // store evicts the coldest entries, as a real transfer would.
  std::vector<std::pair<uint64_t, uint32_t>> SnapshotLru() const;
  void RestoreLru(const std::vector<std::pair<uint64_t, uint32_t>>& entries);

  size_t size() const { return index_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t evictions() const { return evictions_.value(); }
  const RatioCounter& lookup_stats() const { return lookups_; }
  void ResetStats() { lookups_.Reset(); evictions_.Reset(); }

 private:
  struct Entry {
    uint64_t key;
    uint32_t value_bytes;
  };

  size_t capacity_;
  std::list<Entry> lru_;  // Front: most recently used.
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_;
  RatioCounter lookups_;
  Counter evictions_;
};

}  // namespace incod

#endif  // INCOD_SRC_KVS_KV_STORE_H_
