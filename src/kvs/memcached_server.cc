#include "src/kvs/memcached_server.h"

#include <utility>

#include "src/host/server.h"

namespace incod {

MemcachedServer::MemcachedServer(MemcachedConfig config)
    : config_(config), store_(config.capacity_entries) {}

SimDuration MemcachedServer::CpuTimePerRequest(const Packet& packet) const {
  const KvRequest& req = PayloadAs<KvRequest>(packet);
  switch (req.op) {
    case KvOp::kGet:
      return config_.get_cpu_time;
    case KvOp::kSet:
    case KvOp::kDelete:
      return config_.set_cpu_time;
  }
  return config_.get_cpu_time;
}

void MemcachedServer::Execute(Packet packet) {
  const KvRequest req = PayloadAs<KvRequest>(packet);
  KvResponse resp;
  resp.op = req.op;
  resp.key = req.key;
  switch (req.op) {
    case KvOp::kGet: {
      gets_.Increment();
      uint32_t bytes = 0;
      resp.hit = store_.Get(req.key, &bytes);
      resp.value_bytes = bytes;
      break;
    }
    case KvOp::kSet:
      sets_.Increment();
      store_.Set(req.key, req.value_bytes);
      resp.hit = true;
      break;
    case KvOp::kDelete:
      sets_.Increment();
      resp.hit = store_.Delete(req.key);
      break;
  }
  server()->Transmit(MakeKvResponsePacket(server()->node(), packet.src, resp, packet.id,
                                          server()->sim().Now()));
}

}  // namespace incod
