#include "src/kvs/memcached_server.h"

#include <utility>

#include "src/sim/simulation.h"

namespace incod {

MemcachedServer::MemcachedServer(MemcachedConfig config)
    : config_(config), store_(config.capacity_entries) {}

SimDuration MemcachedServer::CpuTimePerRequest(const Packet& packet) const {
  const KvRequest& req = PayloadAs<KvRequest>(packet);
  switch (req.op) {
    case KvOp::kGet:
      return config_.get_cpu_time;
    case KvOp::kSet:
    case KvOp::kDelete:
      return config_.set_cpu_time;
  }
  return config_.get_cpu_time;
}

void MemcachedServer::HandlePacket(AppContext& ctx, Packet packet) {
  const KvRequest req = PayloadAs<KvRequest>(packet);
  KvResponse resp;
  resp.op = req.op;
  resp.key = req.key;
  switch (req.op) {
    case KvOp::kGet: {
      gets_.Increment();
      uint32_t bytes = 0;
      resp.hit = store_.Get(req.key, &bytes);
      resp.value_bytes = bytes;
      break;
    }
    case KvOp::kSet:
      sets_.Increment();
      store_.Set(req.key, req.value_bytes);
      resp.hit = true;
      break;
    case KvOp::kDelete:
      sets_.Increment();
      resp.hit = store_.Delete(req.key);
      break;
  }
  ctx.Reply(MakeKvResponsePacket(ctx.self_node(), packet.src, resp, packet.id,
                                 ctx.sim().Now()));
}

AppState MemcachedServer::SnapshotState() const {
  KvAppState kv;
  kv.primary = KvEntriesFromPairs(store_.SnapshotLru());
  return AppState{proto(), AppName(), std::move(kv)};
}

void MemcachedServer::RestoreState(const AppState& state) {
  const KvAppState* kv = std::get_if<KvAppState>(&state.data);
  if (kv == nullptr) {
    return;
  }
  // A layered cache's snapshot splits into secondary (bulk L2) and primary
  // (hot L1). The authoritative store takes both: bulk first, then the hot
  // entries so they land most-recently-used (and win on duplicate keys).
  std::vector<std::pair<uint64_t, uint32_t>> entries =
      KvPairsFromEntries(kv->secondary);
  const auto primary = KvPairsFromEntries(kv->primary);
  entries.insert(entries.end(), primary.begin(), primary.end());
  store_.RestoreLru(entries);
}

}  // namespace incod
