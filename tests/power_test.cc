// Tests for the power models: curves, CPU presets, module ledger, PSU,
// meters, and the §8 energy model.
#include <gtest/gtest.h>

#include "src/power/cpu_power.h"
#include "src/power/curve.h"
#include "src/power/energy_model.h"
#include "src/power/ledger.h"
#include "src/power/meter.h"
#include "src/power/psu.h"
#include "src/sim/simulation.h"

namespace incod {
namespace {

TEST(CurveTest, InterpolatesLinearly) {
  PiecewiseLinearCurve curve({{0, 0}, {10, 100}});
  EXPECT_DOUBLE_EQ(curve.Evaluate(5), 50.0);
  EXPECT_DOUBLE_EQ(curve.Evaluate(2.5), 25.0);
}

TEST(CurveTest, ClampsOutsideDomain) {
  PiecewiseLinearCurve curve({{1, 10}, {2, 20}});
  EXPECT_DOUBLE_EQ(curve.Evaluate(0), 10.0);
  EXPECT_DOUBLE_EQ(curve.Evaluate(5), 20.0);
}

TEST(CurveTest, MultiSegment) {
  PiecewiseLinearCurve curve({{0, 0}, {1, 10}, {3, 20}});
  EXPECT_DOUBLE_EQ(curve.Evaluate(0.5), 5.0);
  EXPECT_DOUBLE_EQ(curve.Evaluate(2.0), 15.0);
}

TEST(CurveTest, InverseLower) {
  PiecewiseLinearCurve curve({{0, 0}, {10, 100}});
  EXPECT_DOUBLE_EQ(curve.InverseLower(50), 5.0);
  EXPECT_DOUBLE_EQ(curve.InverseLower(-5), 0.0);
  EXPECT_DOUBLE_EQ(curve.InverseLower(500), 10.0);
}

TEST(CurveTest, RejectsBadPoints) {
  EXPECT_THROW(PiecewiseLinearCurve({{0, 0}}), std::invalid_argument);
  EXPECT_THROW(PiecewiseLinearCurve({{1, 0}, {1, 5}}), std::invalid_argument);
  EXPECT_THROW(PiecewiseLinearCurve({{2, 0}, {1, 5}}), std::invalid_argument);
}

TEST(CurveTest, MinMaxAndMonotonicity) {
  PiecewiseLinearCurve curve({{0, 5}, {1, 3}, {2, 9}});
  EXPECT_DOUBLE_EQ(curve.MinY(), 3.0);
  EXPECT_DOUBLE_EQ(curve.MaxY(), 9.0);
  EXPECT_FALSE(curve.IsNonDecreasing());
  PiecewiseLinearCurve mono({{0, 1}, {1, 2}});
  EXPECT_TRUE(mono.IsNonDecreasing());
}

TEST(CpuPowerTest, XeonMatchesPaperAnchors) {
  // §7: idle 56 W; one core 91 W; 10 % of one core 86 W; all 28 cores 134 W.
  CpuPowerModel xeon = MakeXeonE52660Server("xeon");
  xeon.SetUtilization(0.0);
  EXPECT_DOUBLE_EQ(xeon.PowerWatts(), 56.0);
  xeon.SetUtilization(0.1);
  EXPECT_DOUBLE_EQ(xeon.PowerWatts(), 86.0);
  xeon.SetUtilization(1.0);
  EXPECT_DOUBLE_EQ(xeon.PowerWatts(), 91.0);
  xeon.SetUtilization(28.0);
  EXPECT_DOUBLE_EQ(xeon.PowerWatts(), 134.0);
}

TEST(CpuPowerTest, XeonExtraCoreCostsFewWatts) {
  // §7: "the overhead of an additional core running is small, in the order
  // of 1W-2W".
  CpuPowerModel xeon = MakeXeonE52660Server("xeon");
  xeon.SetUtilization(1.0);
  const double one = xeon.PowerWatts();
  xeon.SetUtilization(2.0);
  const double two = xeon.PowerWatts();
  EXPECT_GE(two - one, 0.5);
  EXPECT_LE(two - one, 2.5);
}

TEST(CpuPowerTest, UtilizationClamps) {
  CpuPowerModel i7 = MakeI7Server("i7", I7MemcachedCurve());
  i7.SetUtilization(-1.0);
  EXPECT_DOUBLE_EQ(i7.utilization(), 0.0);
  i7.SetUtilization(100.0);
  EXPECT_DOUBLE_EQ(i7.utilization(), 4.0);
}

TEST(CpuPowerTest, I7CurvesAreMonotone) {
  EXPECT_TRUE(I7MemcachedCurve().IsNonDecreasing());
  EXPECT_TRUE(I7LibpaxosCurve().IsNonDecreasing());
  EXPECT_TRUE(I7DpdkCurve().IsNonDecreasing());
  EXPECT_TRUE(I7NsdCurve().IsNonDecreasing());
  EXPECT_TRUE(XeonE52660SyntheticCurve().IsNonDecreasing());
}

TEST(CpuPowerTest, DpdkBurnsNearlyPeakAtLowLoad) {
  // §4.3: DPDK "power consumption ... is high even under low load".
  const auto dpdk = I7DpdkCurve();
  EXPECT_GT(dpdk.Evaluate(1.0), 0.85 * dpdk.Evaluate(4.0));
}

TEST(LedgerTest, StatesScalePower) {
  PowerLedger ledger("board");
  ledger.AddModule(MakeModuleSpec("logic", 2.0, 0.6, 1.0), ModulePowerState::kIdle);
  ledger.AddModule(MakeModuleSpec("dram", 4.8, 1.0, 0.6), ModulePowerState::kIdle);
  EXPECT_DOUBLE_EQ(ledger.PowerWatts(), 6.8);
  ledger.SetState("logic", ModulePowerState::kClockGated);
  EXPECT_DOUBLE_EQ(ledger.PowerWatts(), 1.2 + 4.8);
  ledger.SetState("dram", ModulePowerState::kReset);  // 40 % saving.
  EXPECT_NEAR(ledger.PowerWatts(), 1.2 + 2.88, 1e-9);
  ledger.SetState("dram", ModulePowerState::kPowerGated);
  EXPECT_DOUBLE_EQ(ledger.PowerWatts(), 1.2);
}

TEST(LedgerTest, DuplicateAndMissingModules) {
  PowerLedger ledger("board");
  ledger.AddModule(MakeModuleSpec("m", 1.0, 1.0, 1.0));
  EXPECT_THROW(ledger.AddModule(MakeModuleSpec("m", 1.0, 1.0, 1.0)),
               std::invalid_argument);
  EXPECT_THROW(ledger.SetState("missing", ModulePowerState::kActive), std::out_of_range);
  EXPECT_TRUE(ledger.HasModule("m"));
  EXPECT_FALSE(ledger.HasModule("missing"));
}

TEST(LedgerTest, SetStateAllAndNames) {
  PowerLedger ledger("board");
  ledger.AddModule(MakeModuleSpec("a", 1.0, 0.5, 0.5));
  ledger.AddModule(MakeModuleSpec("b", 3.0, 0.5, 0.5));
  ledger.SetStateAll(ModulePowerState::kPowerGated);
  EXPECT_DOUBLE_EQ(ledger.PowerWatts(), 0.0);
  EXPECT_EQ(ledger.ModuleNames().size(), 2u);
  EXPECT_STREQ(ModulePowerStateName(ModulePowerState::kReset), "reset");
}

TEST(PsuTest, EfficiencyLossIncreasesWallPower) {
  PsuModel psu(150.0);
  EXPECT_GT(psu.WallWatts(15.0), 15.0);
  EXPECT_DOUBLE_EQ(psu.WallWatts(0.0), 0.0);
  // Efficiency is better at mid load than at a sliver of load.
  EXPECT_GT(psu.EfficiencyAt(75.0), psu.EfficiencyAt(2.0));
}

TEST(PsuTest, RejectsNonPositiveRating) {
  EXPECT_THROW(PsuModel(0), std::invalid_argument);
}

class ConstantSource : public PowerSource {
 public:
  explicit ConstantSource(double watts) : watts_(watts) {}
  double PowerWatts() const override { return watts_; }
  std::string PowerName() const override { return "const"; }
  void set_watts(double watts) { watts_ = watts; }

 private:
  double watts_;
};

TEST(MeterTest, IntegratesConstantPower) {
  Simulation sim;
  ConstantSource source(50.0);
  WallPowerMeter meter(sim, Milliseconds(1));
  meter.Attach(&source);
  meter.Start();
  sim.RunUntil(Seconds(2));
  // 50 W for 2 s = 100 J.
  EXPECT_NEAR(meter.EnergyJoules(), 100.0, 0.5);
  EXPECT_DOUBLE_EQ(meter.InstantWatts(), 50.0);
}

TEST(MeterTest, SumsMultipleSources) {
  Simulation sim;
  ConstantSource a(10.0);
  ConstantSource b(20.0);
  WallPowerMeter meter(sim);
  meter.Attach(&a);
  meter.Attach(&b);
  EXPECT_DOUBLE_EQ(meter.InstantWatts(), 30.0);
}

TEST(MeterTest, MeanWattsOverInterval) {
  Simulation sim;
  ConstantSource source(40.0);
  WallPowerMeter meter(sim, Milliseconds(1));
  meter.Attach(&source);
  meter.Start();
  sim.Schedule(Seconds(1), [&] { source.set_watts(80.0); });
  sim.RunUntil(Seconds(2));
  EXPECT_NEAR(meter.MeanWatts(0, Seconds(1)), 40.0, 0.5);
  EXPECT_NEAR(meter.MeanWatts(Seconds(1), Seconds(2)), 80.0, 0.5);
}

TEST(MeterTest, StopHaltsSampling) {
  Simulation sim;
  ConstantSource source(10.0);
  WallPowerMeter meter(sim, Milliseconds(1));
  meter.Attach(&source);
  meter.Start();
  sim.RunUntil(Milliseconds(10));
  meter.Stop();
  const double energy = meter.EnergyJoules();
  sim.RunUntil(Seconds(1));
  EXPECT_NEAR(meter.EnergyJoules(), energy, 0.011);
}

TEST(RaplTest, AccumulatesEnergy) {
  Simulation sim;
  double watts = 30.0;
  RaplCounter rapl(sim, [&] { return watts; }, Milliseconds(1));
  rapl.Start();
  sim.RunUntil(Seconds(1));
  // ~30 J = 30e6 uJ.
  EXPECT_NEAR(static_cast<double>(rapl.EnergyMicrojoules()), 30e6, 1e5);
}

TEST(RaplTest, AverageWattsSince) {
  Simulation sim;
  RaplCounter rapl(sim, [] { return 25.0; }, Milliseconds(1));
  rapl.Start();
  sim.RunUntil(Seconds(1));
  const uint64_t e1 = rapl.EnergyMicrojoules();
  sim.RunUntil(Seconds(3));
  EXPECT_NEAR(rapl.AverageWattsSince(e1, Seconds(2)), 25.0, 0.5);
  EXPECT_DOUBLE_EQ(rapl.AverageWattsSince(0, 0), 0.0);
}

TEST(EnergyModelTest, Eq1Composition) {
  EnergyProfile profile;
  profile.idle_watts = 10.0;
  profile.dynamic_watts = [](double rate) { return rate / 1000.0; };
  profile.sleep_watts = 5.0;
  profile.sleep_seconds = 2.0;
  // 1000 packets at 100 pps -> Td = 10 s at Pd = 10 + 0.1 = 10.1 W; plus
  // sleep 10 J; plus 3 s idle at 10 W.
  const double energy = EnergyJoules(profile, 1000, 100, 3.0);
  EXPECT_NEAR(energy, 10.1 * 10 + 10 + 30, 1e-9);
}

TEST(EnergyModelTest, RejectsZeroRateWithWork) {
  EnergyProfile profile;
  profile.dynamic_watts = [](double) { return 0.0; };
  EXPECT_THROW(EnergyJoules(profile, 10, 0, 0), std::invalid_argument);
}

TEST(EnergyModelTest, TippingPointFound) {
  // Software: 35 + 0.0001 * R ; network: 47 flat -> tip at R = 120000.
  auto software = [](double r) { return 35.0 + 1e-4 * r; };
  auto network = [](double r) {
    (void)r;
    return 47.0;
  };
  const auto tip = TippingPointRate(software, network, 0, 1e6, 1.0);
  ASSERT_TRUE(tip.has_value());
  EXPECT_NEAR(*tip, 120000.0, 10.0);
}

TEST(EnergyModelTest, TippingPointAbsentWhenNetworkNeverWins) {
  auto software = [](double) { return 10.0; };
  auto network = [](double) { return 50.0; };
  EXPECT_FALSE(TippingPointRate(software, network, 0, 1e6).has_value());
}

TEST(EnergyModelTest, TippingPointAtZeroWhenNetworkAlwaysWins) {
  auto software = [](double) { return 50.0; };
  auto network = [](double) { return 10.0; };
  const auto tip = TippingPointRate(software, network, 0, 1e6);
  ASSERT_TRUE(tip.has_value());
  EXPECT_DOUBLE_EQ(*tip, 0.0);
}

TEST(EnergyModelTest, ProfileOverloadComparesTotalPower) {
  EnergyProfile software;
  software.idle_watts = 35;
  software.dynamic_watts = [](double r) { return r * 1e-4; };
  EnergyProfile network;
  network.idle_watts = 47;
  network.dynamic_watts = [](double) { return 0.5; };
  const auto tip = TippingPointRate(software, network, 0, 1e6, 1.0);
  ASSERT_TRUE(tip.has_value());
  EXPECT_NEAR(*tip, 125000.0, 10.0);
}

}  // namespace
}  // namespace incod
