// Cross-placement conformance matrix.
//
// The unified App contract promises that *where* an application runs is a
// placement decision, not a behaviour change. This suite enforces that
// exhaustively instead of per-scenario:
//
//   1. The support matrix is *declared*: every AppRegistry name must appear
//      in kDeclaredPlacements with the exact placement set it supports. A
//      family cannot silently opt out of a substrate — adding or removing a
//      placement means editing the declaration here, in the open.
//   2. Identical traces -> identical replies: for every name x supported
//      placement, the same warm state and the same request trace must
//      produce the same reply sequence (summarized field by field).
//   3. The warm-migration invariant: snapshot on placement A, restore onto
//      any other supported placement B, snapshot there, restore back onto a
//      fresh A — the A-side snapshot must SerializeAppState bit-identically
//      to the original. This is what makes orchestrator shifts (and host
//      bounces between targets) lossless for every registered app.
//
// When PLACEMENT_CONFORMANCE_OUT is set, a per-placement summary CSV is
// written there on teardown (uploaded as a CI artifact next to the bench
// results).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/app/app.h"
#include "src/app/app_registry.h"
#include "src/app/app_state.h"
#include "src/dns/dns_message.h"
#include "src/dns/nsd_server.h"
#include "src/dns/zone.h"
#include "src/kvs/kv_protocol.h"
#include "src/kvs/memcached_server.h"
#include "src/paxos/paxos_msg.h"
#include "src/paxos/software_roles.h"
#include "src/sim/simulation.h"

namespace incod {
namespace {

constexpr NodeId kService = 200;
constexpr NodeId kClientNode = 100;

const std::vector<PlacementKind> kAllPlacements = {
    PlacementKind::kHost, PlacementKind::kFpgaNic, PlacementKind::kSwitchAsic,
    PlacementKind::kSmartNic};

// The declared support matrix (satellite contract: unsupported pairs are
// visible here, not skipped inside loops).
const std::map<std::string, std::set<PlacementKind>>& DeclaredPlacements() {
  static const std::map<std::string, std::set<PlacementKind>> kDeclared = {
      {"kvs",
       {PlacementKind::kHost, PlacementKind::kFpgaNic, PlacementKind::kSwitchAsic,
        PlacementKind::kSmartNic}},
      {"dns",
       {PlacementKind::kHost, PlacementKind::kFpgaNic, PlacementKind::kSwitchAsic,
        PlacementKind::kSmartNic}},
      {"paxos-leader",
       {PlacementKind::kHost, PlacementKind::kFpgaNic, PlacementKind::kSwitchAsic,
        PlacementKind::kSmartNic}},
      {"paxos-acceptor",
       {PlacementKind::kHost, PlacementKind::kFpgaNic, PlacementKind::kSwitchAsic,
        PlacementKind::kSmartNic}},
      // The learner aggregates majority votes in host memory; no hardware
      // deployment exists in the paper or this model.
      {"paxos-learner", {PlacementKind::kHost}},
  };
  return kDeclared;
}

// ---------------------------------------------------------------------------
// CI summary (PLACEMENT_CONFORMANCE_OUT artifact).
// ---------------------------------------------------------------------------

struct ConformanceSummary {
  struct Row {
    std::string family;
    std::string placement;
    size_t trace_replies = 0;
    size_t state_pairs = 0;
  };

  static ConformanceSummary& Instance() {
    static ConformanceSummary summary;
    return summary;
  }

  Row& RowFor(const std::string& family, PlacementKind placement) {
    const std::string key = family + "|" + PlacementKindName(placement);
    auto it = index.find(key);
    if (it == index.end()) {
      it = index.emplace(key, rows.size()).first;
      rows.push_back(Row{family, PlacementKindName(placement), 0, 0});
    }
    return rows[it->second];
  }

  std::vector<Row> rows;
  std::map<std::string, size_t> index;
};

class SummaryWriter : public ::testing::Environment {
 public:
  void TearDown() override {
    const char* path = std::getenv("PLACEMENT_CONFORMANCE_OUT");
    if (path == nullptr || *path == '\0') {
      return;
    }
    std::ofstream out(path);
    out << "family,placement,trace_replies,state_pairs\n";
    for (const auto& row : ConformanceSummary::Instance().rows) {
      out << row.family << "," << row.placement << "," << row.trace_replies << ","
          << row.state_pairs << "\n";
    }
  }
};

const ::testing::Environment* const kSummaryEnv =
    ::testing::AddGlobalTestEnvironment(new SummaryWriter);

// ---------------------------------------------------------------------------
// Trace driver: a recording substrate + per-family canonical state/trace.
// ---------------------------------------------------------------------------

class RecordingContext : public AppContext {
 public:
  RecordingContext(Simulation& sim, PlacementKind placement)
      : sim_(sim), placement_(placement) {}

  Simulation& sim() override { return sim_; }
  PlacementKind placement() const override { return placement_; }
  // Every substrate answers on the service address so reply sources are
  // comparable across placements.
  NodeId self_node() const override { return kService; }
  void Reply(Packet packet) override { replies.push_back(std::move(packet)); }
  void Punt(Packet packet) override { punts.push_back(std::move(packet)); }

  std::vector<Packet> replies;
  std::vector<Packet> punts;

 private:
  Simulation& sim_;
  PlacementKind placement_;
};

// Shared factory resources, stable across the whole suite.
struct ConformanceEnv {
  ConformanceEnv() {
    // 3-label names stay within every parser's depth budget (the switch
    // pipeline manages 4).
    for (int i = 0; i < 8; ++i) {
      zone.AddRecord(Zone::SyntheticName(static_cast<size_t>(i)),
                     0x0a000000u + static_cast<uint32_t>(i),
                     60 + static_cast<uint32_t>(i));
    }
    group.acceptors = {10, 11, 12};
    group.learners = {30};
    group.leader_service = kService;
  }

  AppFactoryEnv Factory() const {
    AppFactoryEnv env;
    env.zone = &empty_zone;  // Warmth comes from the restored state only.
    env.paxos_group = &group;
    env.service = kService;
    return env;
  }

  Zone zone;
  Zone empty_zone;
  PaxosGroupConfig group;
};

const ConformanceEnv& SharedEnv() {
  static const ConformanceEnv env;
  return env;
}

// Canonical warm state each placement starts from. Sized to fit the
// smallest placement shape (LaKe L1, switch register arrays) so the
// cross-placement round trips are lossless by construction.
AppState CanonicalState(const std::string& family) {
  if (family == "kvs") {
    MemcachedServer host;
    for (uint64_t k = 1; k <= 8; ++k) {
      host.store().Set(k, static_cast<uint32_t>(8 * k));
    }
    uint32_t bytes = 0;
    host.store().Get(3, &bytes);  // LRU order must survive every trip.
    return host.SnapshotState();
  }
  if (family == "dns") {
    NsdServer host(&SharedEnv().zone);
    return host.SnapshotState();
  }
  if (family == "paxos-leader") {
    SoftwareLeader leader(SharedEnv().group, /*ballot=*/3);
    PaxosMessage request;
    request.type = PaxosMsgType::kClientRequest;
    request.value = 77;
    request.client = kClientNode;
    leader.state().HandleMessage(request);
    leader.state().HandleMessage(request);
    return leader.SnapshotState();
  }
  if (family == "paxos-acceptor") {
    SoftwareAcceptor acceptor(SharedEnv().group, /*acceptor_id=*/1);
    for (uint32_t instance = 1; instance <= 3; ++instance) {
      PaxosMessage msg;
      msg.type = PaxosMsgType::kPhase2a;
      msg.instance = instance;
      msg.round = 2;
      msg.value = 500 + instance;
      msg.client = kClientNode;
      acceptor.state().HandleMessage(msg);
    }
    return acceptor.SnapshotState();
  }
  if (family == "paxos-learner") {
    SoftwareLearner learner(SharedEnv().group);
    return learner.SnapshotState();
  }
  throw std::logic_error("no canonical state for " + family);
}

Packet PaxosPacket(const PaxosMessage& msg) {
  return MakePaxosPacket(kClientNode, kService, msg, /*now=*/0);
}

// The identical request trace every placement of the family must answer
// identically. Requests stay within the cross-placement service contract
// (present keys, parseable names, role messages): what a placement merely
// *forwards* — a KVS miss punted to the authoritative host, a deep DNS name
// — is placement policy, not application behaviour.
std::vector<Packet> MakeTrace(const std::string& family) {
  std::vector<Packet> trace;
  if (family == "kvs") {
    uint64_t id = 1;
    for (uint64_t key : {1u, 5u, 3u, 8u, 1u, 2u, 7u, 4u, 6u, 3u}) {
      trace.push_back(MakeKvRequestPacket(kClientNode, kService,
                                          KvRequest{KvOp::kGet, key, 0}, id++, 0));
    }
    return trace;
  }
  if (family == "dns") {
    uint16_t id = 1;
    auto query = [&](const std::string& name) {
      DnsMessage msg;
      msg.id = id;
      msg.questions.push_back(DnsQuestion{name, kDnsTypeA, kDnsClassIn});
      Packet pkt;
      pkt.src = kClientNode;
      pkt.dst = kService;
      pkt.proto = AppProto::kDns;
      pkt.id = id++;
      pkt.payload = std::move(msg);
      return pkt;
    };
    for (size_t i = 0; i < 8; ++i) {
      trace.push_back(query(Zone::SyntheticName(i)));
    }
    // Absent (but parseable) name: every placement answers NXDOMAIN itself.
    trace.push_back(query("missing.bench.example"));
    return trace;
  }
  if (family == "paxos-leader") {
    for (uint64_t value = 1000; value < 1006; ++value) {
      PaxosMessage msg;
      msg.type = PaxosMsgType::kClientRequest;
      msg.value = value;
      msg.client = kClientNode;
      trace.push_back(PaxosPacket(msg));
    }
    return trace;
  }
  if (family == "paxos-acceptor") {
    for (uint32_t instance = 4; instance <= 8; ++instance) {
      PaxosMessage msg;
      msg.type = PaxosMsgType::kPhase2a;
      msg.instance = instance;
      msg.round = 3;
      msg.value = 900 + instance;
      msg.client = kClientNode;
      trace.push_back(PaxosPacket(msg));
    }
    // A re-proposal for a voted instance exercises the promise/NACK path.
    PaxosMessage prepare;
    prepare.type = PaxosMsgType::kPhase1a;
    prepare.instance = 2;
    prepare.round = 1;
    trace.push_back(PaxosPacket(prepare));
    return trace;
  }
  if (family == "paxos-learner") {
    // Majority of phase-2b votes decides the instance -> client response.
    for (uint32_t acceptor : {1u, 2u}) {
      PaxosMessage msg;
      msg.type = PaxosMsgType::kPhase2b;
      msg.instance = 1;
      msg.round = 2;
      msg.value = 501;
      msg.client = kClientNode;
      msg.sender_id = acceptor;
      trace.push_back(PaxosPacket(msg));
    }
    return trace;
  }
  throw std::logic_error("no trace for " + family);
}

std::string SummarizePacket(const Packet& packet) {
  std::ostringstream os;
  os << "src=" << packet.src << " dst=" << packet.dst << " id=" << packet.id
     << " proto=" << static_cast<int>(packet.proto);
  if (const KvResponse* kv = PayloadIf<KvResponse>(packet)) {
    os << " kv op=" << static_cast<int>(kv->op) << " key=" << kv->key
       << " hit=" << kv->hit << " bytes=" << kv->value_bytes;
  } else if (const KvRequest* kvr = PayloadIf<KvRequest>(packet)) {
    os << " kvreq op=" << static_cast<int>(kvr->op) << " key=" << kvr->key;
  } else if (const PaxosMessage* px = PayloadIf<PaxosMessage>(packet)) {
    os << " paxos type=" << PaxosMsgTypeName(px->type) << " inst=" << px->instance
       << " round=" << px->round << " vround=" << px->vround << " value=" << px->value
       << " client=" << px->client << " sender=" << px->sender_id
       << " last_voted=" << px->last_voted_instance;
  } else if (const DnsMessage* dns = PayloadIf<DnsMessage>(packet)) {
    os << " dns id=" << dns->id << " resp=" << dns->is_response
       << " rcode=" << static_cast<int>(dns->rcode) << " aa=" << dns->authoritative
       << " answers=[";
    for (const auto& rr : dns->answers) {
      os << rr.name << "/" << RdataToIpv4(rr.rdata) << "/" << rr.ttl << ";";
    }
    os << "]";
  }
  return os.str();
}

struct DriveResult {
  std::vector<std::string> replies;
  std::vector<std::string> punts;
};

// Builds the app on the placement, installs the canonical warm state, and
// plays the family trace through a bare AppContext, draining any delayed
// replies between requests so ordering is well-defined.
DriveResult DriveTrace(const std::string& family, PlacementKind placement) {
  Simulation sim(/*seed=*/1);
  RecordingContext ctx(sim, placement);
  std::unique_ptr<App> app =
      AppRegistry::Global().Create(family, placement, SharedEnv().Factory());
  app->BindContext(&ctx);
  app->RestoreState(CanonicalState(family));
  app->OnActivate();
  for (const Packet& request : MakeTrace(family)) {
    EXPECT_TRUE(app->Matches(request))
        << family << " on " << PlacementKindName(placement)
        << " refused: " << SummarizePacket(request);
    Packet copy = request;
    app->HandlePacket(ctx, std::move(copy));
    sim.RunUntil(sim.Now() + Milliseconds(1));
  }
  DriveResult result;
  for (const Packet& reply : ctx.replies) {
    result.replies.push_back(SummarizePacket(reply));
  }
  for (const Packet& punt : ctx.punts) {
    result.punts.push_back(SummarizePacket(punt));
  }
  return result;
}

// ---------------------------------------------------------------------------
// 1. The declared matrix is the real matrix.
// ---------------------------------------------------------------------------

TEST(PlacementConformanceTest, SupportMatrixIsFullyDeclared) {
  const auto& declared = DeclaredPlacements();
  for (const std::string& name : AppRegistry::Global().Names()) {
    auto it = declared.find(name);
    ASSERT_NE(it, declared.end())
        << "registry app '" << name
        << "' is not in the conformance declaration — declare its placement "
           "matrix (no app opts out silently)";
    const auto placements = AppRegistry::Global().Placements(name);
    const std::set<PlacementKind> actual(placements.begin(), placements.end());
    EXPECT_EQ(actual, it->second) << name << ": declared matrix out of date";
    for (PlacementKind placement : kAllPlacements) {
      EXPECT_EQ(AppRegistry::Global().Supports(name, placement),
                it->second.count(placement) == 1)
          << name << " on " << PlacementKindName(placement);
    }
  }
  // And the declaration names only real apps.
  for (const auto& [name, placements] : declared) {
    EXPECT_TRUE(AppRegistry::Global().Has(name)) << name;
    EXPECT_FALSE(placements.empty()) << name;
  }
}

// ---------------------------------------------------------------------------
// 2. Identical traces, identical replies.
// ---------------------------------------------------------------------------

TEST(PlacementConformanceTest, IdenticalTracesProduceIdenticalReplies) {
  for (const auto& [family, placements] : DeclaredPlacements()) {
    SCOPED_TRACE(family);
    const PlacementKind reference_placement = *placements.begin();
    const DriveResult reference = DriveTrace(family, reference_placement);
    EXPECT_FALSE(reference.replies.empty()) << family << " trace produced no replies";
    EXPECT_TRUE(reference.punts.empty())
        << family << " conformance trace must stay within the service contract";
    ConformanceSummary::Instance().RowFor(family, reference_placement).trace_replies =
        reference.replies.size();
    for (PlacementKind placement : placements) {
      if (placement == reference_placement) {
        continue;
      }
      SCOPED_TRACE(PlacementKindName(placement));
      const DriveResult got = DriveTrace(family, placement);
      EXPECT_EQ(got.replies, reference.replies);
      EXPECT_EQ(got.punts, reference.punts);
      ConformanceSummary::Instance().RowFor(family, placement).trace_replies =
          got.replies.size();
    }
  }
}

// ---------------------------------------------------------------------------
// 3. The warm-migration invariant, exhaustively.
// ---------------------------------------------------------------------------

TEST(PlacementConformanceTest, StateRoundTripsBitIdenticallyAcrossAllPlacementPairs) {
  for (const auto& [family, placements] : DeclaredPlacements()) {
    SCOPED_TRACE(family);
    const AppState golden = CanonicalState(family);
    const AppFactoryEnv env = SharedEnv().Factory();
    for (PlacementKind from : placements) {
      std::unique_ptr<App> source = AppRegistry::Global().Create(family, from, env);
      source->RestoreState(golden);
      const AppState from_snapshot = source->SnapshotState();
      const std::vector<uint8_t> from_bytes = SerializeAppState(from_snapshot);
      for (PlacementKind to : placements) {
        SCOPED_TRACE(std::string(PlacementKindName(from)) + " -> " +
                     PlacementKindName(to));
        // A -> B: the migrated-to placement reproduces the snapshot ...
        std::unique_ptr<App> dest = AppRegistry::Global().Create(family, to, env);
        dest->RestoreState(from_snapshot);
        const AppState to_snapshot = dest->SnapshotState();
        // ... and B -> A returns bit-identically (the warm shift home).
        std::unique_ptr<App> back = AppRegistry::Global().Create(family, from, env);
        back->RestoreState(to_snapshot);
        EXPECT_EQ(SerializeAppState(back->SnapshotState()), from_bytes);
        ++ConformanceSummary::Instance().RowFor(family, to).state_pairs;
      }
    }
  }
}

}  // namespace
}  // namespace incod
