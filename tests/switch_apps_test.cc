// Tests for the in-switch applications (NetCache-style KVS, switch DNS,
// P4xos on the ASIC), the §9.2 park policies, and the energy-aware
// controller extension.
#include <gtest/gtest.h>

#include <memory>

#include "src/device/fpga_nic.h"
#include "src/device/switch_asic.h"
#include "src/dns/switch_dns.h"
#include "src/host/server.h"
#include "src/kvs/lake.h"
#include "src/kvs/memcached_server.h"
#include "src/kvs/netcache.h"
#include "src/net/topology.h"
#include "src/ondemand/energy_controller.h"
#include "src/ondemand/migrator.h"
#include "src/paxos/p4xos.h"
#include "src/paxos/roles.h"
#include "src/power/cpu_power.h"
#include "src/sim/simulation.h"
#include "src/stats/count_min.h"

namespace incod {
namespace {

// ---- Count-min sketch ----

TEST(CountMinTest, NeverUndercounts) {
  CountMinSketch sketch(256, 3);
  Rng rng(5);
  std::map<uint64_t, uint64_t> truth;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t key = static_cast<uint64_t>(rng.UniformInt(0, 500));
    sketch.Increment(key);
    ++truth[key];
  }
  for (const auto& [key, count] : truth) {
    EXPECT_GE(sketch.Estimate(key), count) << key;
  }
}

TEST(CountMinTest, ReasonableOverestimate) {
  CountMinSketch sketch(4096, 4);
  for (uint64_t k = 0; k < 1000; ++k) {
    sketch.Increment(k);
  }
  sketch.Increment(42, 100);
  // 42 has 101 true; estimate within a small collision margin.
  EXPECT_GE(sketch.Estimate(42), 101u);
  EXPECT_LE(sketch.Estimate(42), 111u);
  EXPECT_EQ(sketch.Estimate(999999), 0u);
}

TEST(CountMinTest, DecayHalves) {
  CountMinSketch sketch(64, 2);
  sketch.Increment(7, 100);
  sketch.Decay();
  EXPECT_GE(sketch.Estimate(7), 50u);
  EXPECT_LE(sketch.Estimate(7), 51u);
  sketch.Clear();
  EXPECT_EQ(sketch.Estimate(7), 0u);
}

TEST(CountMinTest, RejectsZeroDimensions) {
  EXPECT_THROW(CountMinSketch(0, 2), std::invalid_argument);
  EXPECT_THROW(CountMinSketch(16, 0), std::invalid_argument);
}

// ---- In-switch KVS cache ----

struct SwitchKvsHarness {
  SwitchKvsHarness() : sim(1), topo(sim), sw(sim, AsicConfig()), cache(CacheConfig()) {
    // Port 0: client side; port 1: server side.
    client_link = topo.ConnectToSwitch(&sw, &client, 100);
    server_link = topo.ConnectToSwitch(&sw, &server_sink, 1);
    sw.LoadProgram(&cache);
  }
  static SwitchAsicConfig AsicConfig() {
    SwitchAsicConfig config;
    config.rate_window = Milliseconds(10);
    return config;
  }
  static KvSwitchCacheConfig CacheConfig() {
    KvSwitchCacheConfig config;
    config.kvs_service = 1;
    config.cache_entries = 64;
    config.hot_threshold = 3;
    return config;
  }
  struct Collector : PacketSink {
    void Receive(Packet packet) override { packets.push_back(std::move(packet)); }
    std::string SinkName() const override { return "side"; }
    std::vector<Packet> packets;
  };
  void SendGet(uint64_t key, uint64_t id) {
    sw.Receive(MakeKvRequestPacket(100, 1, KvRequest{KvOp::kGet, key, 0}, id, sim.Now()));
  }
  void SendServerResponse(uint64_t key, uint32_t bytes, uint64_t id) {
    sw.Receive(
        MakeKvResponsePacket(1, 100, KvResponse{KvOp::kGet, key, true, bytes}, id, sim.Now()));
  }
  Simulation sim;
  Topology topo;
  SwitchAsic sw;
  KvSwitchCache cache;
  Collector client;
  Collector server_sink;
  Link* client_link;
  Link* server_link;
};

TEST(KvSwitchCacheTest, MissForwardsToServer) {
  SwitchKvsHarness h;
  h.SendGet(5, 1);
  h.sim.Run();
  EXPECT_EQ(h.server_sink.packets.size(), 1u);
  EXPECT_TRUE(h.client.packets.empty());
  EXPECT_EQ(h.cache.misses_forwarded(), 1u);
}

TEST(KvSwitchCacheTest, HotKeyGetsCachedFromResponses) {
  SwitchKvsHarness h;
  // Three misses cross the hot threshold; the third response inserts.
  for (uint64_t id = 1; id <= 3; ++id) {
    h.SendGet(5, id);
    h.SendServerResponse(5, 64, id);
  }
  h.sim.Run();
  EXPECT_GT(h.cache.insertions(), 0u);
  EXPECT_TRUE(h.cache.cache().Contains(5));
  // The next GET is served by the switch at line rate.
  h.SendGet(5, 10);
  h.sim.Run();
  EXPECT_EQ(h.cache.hits(), 1u);
  // Client got 3 passed-through responses + 1 switch reply.
  EXPECT_EQ(h.client.packets.size(), 4u);
}

TEST(KvSwitchCacheTest, CachedHitIsNotAlsoForwardedToServer) {
  // Regression: the switch reply re-enters the pipeline synchronously (the
  // response passes back through the same program); that inner pass must
  // not clobber the outer pass's consumed-verdict, or the already-answered
  // request would also reach the server and be answered twice.
  SwitchKvsHarness h;
  h.cache.cache().Set(5, 64);  // Warm the register array directly.
  h.SendGet(5, 1);
  h.sim.Run();
  EXPECT_EQ(h.cache.hits(), 1u);
  EXPECT_EQ(h.client.packets.size(), 1u);     // The line-rate reply.
  EXPECT_TRUE(h.server_sink.packets.empty());  // Request terminated in-switch.
}

TEST(KvSwitchCacheTest, ColdKeyNotCached) {
  SwitchKvsHarness h;
  h.SendGet(9, 1);
  h.SendServerResponse(9, 64, 1);  // Only one access: below threshold.
  h.sim.Run();
  EXPECT_FALSE(h.cache.cache().Contains(9));
  EXPECT_EQ(h.cache.insertions(), 0u);
}

TEST(KvSwitchCacheTest, OversizedValuesNotCached) {
  SwitchKvsHarness h;
  for (uint64_t id = 1; id <= 5; ++id) {
    h.SendGet(7, id);
    h.SendServerResponse(7, 4096, id);  // Exceeds max_value_bytes.
  }
  h.sim.Run();
  EXPECT_FALSE(h.cache.cache().Contains(7));
}

TEST(KvSwitchCacheTest, WritesInvalidate) {
  SwitchKvsHarness h;
  h.cache.cache().Set(5, 64);
  h.sw.Receive(MakeKvRequestPacket(100, 1, KvRequest{KvOp::kSet, 5, 32}, 1, 0));
  h.sim.Run();
  EXPECT_FALSE(h.cache.cache().Contains(5));
  EXPECT_EQ(h.cache.invalidations(), 1u);
  // The SET continued to the server.
  EXPECT_EQ(h.server_sink.packets.size(), 1u);
}

TEST(KvSwitchCacheTest, RequiresServiceAddress) {
  EXPECT_THROW(KvSwitchCache{KvSwitchCacheConfig{}}, std::invalid_argument);
}

// ---- In-switch DNS ----

struct SwitchDnsHarness {
  SwitchDnsHarness() : sim(1), topo(sim), sw(sim, SwitchAsicConfig{}) {
    zone.FillSynthetic(32);
    DnsSwitchConfig config;
    config.dns_service = 1;
    config.max_labels = 4;
    program = std::make_unique<DnsSwitchProgram>(&zone, config);
    topo.ConnectToSwitch(&sw, &client, 100);
    topo.ConnectToSwitch(&sw, &host, 1);
    sw.LoadProgram(program.get());
  }
  struct Collector : PacketSink {
    void Receive(Packet packet) override { packets.push_back(std::move(packet)); }
    std::string SinkName() const override { return "side"; }
    std::vector<Packet> packets;
  };
  Packet Query(const std::string& name, uint16_t qtype = kDnsTypeA) {
    DnsMessage query;
    query.id = 1;
    query.questions.push_back(DnsQuestion{name, qtype, kDnsClassIn});
    Packet pkt;
    pkt.src = 100;
    pkt.dst = 1;
    pkt.proto = AppProto::kDns;
    pkt.size_bytes = DnsWireBytes(query);
    pkt.payload = query;
    return pkt;
  }
  Simulation sim;
  Topology topo;
  Zone zone;
  SwitchAsic sw;
  std::unique_ptr<DnsSwitchProgram> program;
  Collector client;
  Collector host;
};

TEST(DnsSwitchTest, AnswersAtLineRate) {
  SwitchDnsHarness h;
  h.sw.Receive(h.Query(Zone::SyntheticName(3)));
  h.sim.Run();
  ASSERT_EQ(h.client.packets.size(), 1u);
  EXPECT_TRUE(h.host.packets.empty());
  EXPECT_EQ(PayloadAs<DnsMessage>(h.client.packets[0]).rcode, DnsRcode::kNoError);
  EXPECT_EQ(h.program->answered(), 1u);
}

TEST(DnsSwitchTest, NxDomainForAbsentNames) {
  SwitchDnsHarness h;
  h.sw.Receive(h.Query("nope.absent.example"));
  h.sim.Run();
  ASSERT_EQ(h.client.packets.size(), 1u);
  EXPECT_EQ(PayloadAs<DnsMessage>(h.client.packets[0]).rcode, DnsRcode::kNxDomain);
}

TEST(DnsSwitchTest, DeepNamesPuntToHost) {
  SwitchDnsHarness h;
  h.sw.Receive(h.Query("a.b.c.d.e.f"));  // 6 labels > 4 budget.
  h.sim.Run();
  EXPECT_EQ(h.program->punted_to_host(), 1u);
  EXPECT_EQ(h.host.packets.size(), 1u);
  EXPECT_TRUE(h.client.packets.empty());
}

TEST(DnsSwitchTest, NonATypesPuntToHost) {
  SwitchDnsHarness h;
  h.sw.Receive(h.Query(Zone::SyntheticName(1), kDnsTypeAaaa));
  h.sim.Run();
  EXPECT_EQ(h.program->punted_to_host(), 1u);
  EXPECT_EQ(h.host.packets.size(), 1u);
}

TEST(DnsSwitchTest, RejectsBadConstruction) {
  Zone zone;
  EXPECT_THROW(DnsSwitchProgram(nullptr, DnsSwitchConfig{}), std::invalid_argument);
  EXPECT_THROW(DnsSwitchProgram(&zone, DnsSwitchConfig{}), std::invalid_argument);
}

// ---- Full Paxos round through the switch ASIC ----

TEST(P4xosSwitchTest, ConsensusThroughThePipeline) {
  // Leader AND the three acceptors all live in the switch (NetChain-style);
  // a software learner delivers; the client gets its response — all in one
  // traversal fan-out, no server on the leader path.
  Simulation sim(1);
  Topology topo(sim);
  SwitchAsicConfig asic_config;
  SwitchAsic sw(sim, asic_config);

  PaxosGroupConfig group;
  group.acceptors = {10, 11, 12};
  group.learners = {30};
  group.leader_service = 200;

  P4xosSwitchProgram leader(P4xosRole::kLeader, group, 1, 200);
  P4xosSwitchProgram acceptor0(P4xosRole::kAcceptor, group, 0, 10);
  P4xosSwitchProgram acceptor1(P4xosRole::kAcceptor, group, 1, 11);
  P4xosSwitchProgram acceptor2(P4xosRole::kAcceptor, group, 2, 12);
  sw.LoadProgram(&leader);
  sw.LoadProgram(&acceptor0);
  sw.LoadProgram(&acceptor1);
  sw.LoadProgram(&acceptor2);

  struct Collector : PacketSink {
    void Receive(Packet packet) override { packets.push_back(std::move(packet)); }
    std::string SinkName() const override { return "side"; }
    std::vector<Packet> packets;
  } client;
  ServerConfig learner_config;
  learner_config.node = 30;
  learner_config.stack_rx_cost = Nanoseconds(100);
  Server learner_host(sim, learner_config);
  SoftwareLearner learner(group);
  learner_host.BindApp(&learner);

  topo.ConnectToSwitch(&sw, &client, 100);
  Link* learner_link = topo.ConnectToSwitch(&sw, &learner_host, 30);
  learner_host.SetUplink(learner_link);
  // The leader service and acceptor addresses terminate inside the switch,
  // so no routes are needed for them.

  for (int i = 0; i < 10; ++i) {
    PaxosMessage request;
    request.type = PaxosMsgType::kClientRequest;
    request.value = 1000 + static_cast<PaxosValue>(i);
    request.client = 100;
    sw.Receive(MakePaxosPacket(100, 200, request, sim.Now()));
  }
  sim.Run();

  EXPECT_EQ(learner.state().delivered_count(), 10u);
  EXPECT_EQ(client.packets.size(), 10u);  // One response per request.
  EXPECT_GT(leader.messages_handled(), 0u);
  EXPECT_GT(acceptor0.messages_handled(), 0u);
  EXPECT_GT(sw.consumed_in_pipeline(), 0u);
}

// ---- Park policies (§9.2) ----

struct ParkHarness {
  ParkHarness() : sim(1), fpga(sim, Config()) {
    fpga.InstallApp(&lake);
  }
  static FpgaNicConfig Config() {
    FpgaNicConfig config;
    config.host_node = 1;
    config.device_node = 50;
    return config;
  }
  Simulation sim;
  LakeCache lake{LakeConfig{}};
  FpgaNic fpga;
};

TEST(ParkPolicyTest, IdlePowerOrdering) {
  // Deeper parking saves more: reprogram < gated park < keep warm.
  double watts[3];
  const ParkPolicy policies[] = {ParkPolicy::kReprogram, ParkPolicy::kGatedPark,
                                 ParkPolicy::kKeepWarm};
  for (int i = 0; i < 3; ++i) {
    ParkHarness h;
    ClassifierMigrator migrator(h.sim, h.fpga,
                                ClassifierMigrator::Options::FromPolicy(policies[i]));
    watts[i] = h.fpga.PowerWatts();
  }
  EXPECT_LT(watts[0], watts[1]);
  EXPECT_LT(watts[1], watts[2]);
  EXPECT_STREQ(ParkPolicyName(ParkPolicy::kGatedPark), "gated-park");
}

TEST(ParkPolicyTest, KeepWarmPreservesCaches) {
  ParkHarness h;
  ClassifierMigrator migrator(h.sim, h.fpga,
                              ClassifierMigrator::Options::FromPolicy(ParkPolicy::kKeepWarm));
  h.lake.WarmFill(0, 50, 64);
  migrator.ShiftToNetwork();
  migrator.ShiftToHost();
  EXPECT_EQ(h.lake.l1().size(), 50u);  // No reset: instant warm next shift.
}

TEST(ParkPolicyTest, GatedParkColdCaches) {
  ParkHarness h;
  ClassifierMigrator migrator(h.sim, h.fpga,
                              ClassifierMigrator::Options::FromPolicy(ParkPolicy::kGatedPark));
  h.lake.WarmFill(0, 50, 64);
  migrator.ShiftToNetwork();
  migrator.ShiftToHost();  // Reset on park: caches cleared.
  EXPECT_EQ(h.lake.l1().size(), 0u);
}

TEST(ParkPolicyTest, ReprogramHaltsTraffic) {
  ParkHarness h;
  ClassifierMigrator migrator(
      h.sim, h.fpga,
      ClassifierMigrator::Options::FromPolicy(ParkPolicy::kReprogram, Milliseconds(40)));
  struct Collector : PacketSink {
    void Receive(Packet) override { ++count; }
    std::string SinkName() const override { return "host"; }
    int count = 0;
  } host;
  Topology topo(h.sim);
  Link* host_link = topo.Connect(&h.fpga, &host);
  h.fpga.SetHostLink(host_link);

  migrator.ShiftToNetwork();
  EXPECT_TRUE(h.fpga.reprogramming());
  // Traffic during the halt is dropped ("a momentary traffic halt").
  Packet raw;
  raw.src = 100;
  raw.dst = 1;
  h.fpga.Receive(raw);
  EXPECT_EQ(h.fpga.dropped(), 1u);
  h.sim.RunUntil(Milliseconds(50));
  EXPECT_FALSE(h.fpga.reprogramming());
  EXPECT_TRUE(h.fpga.app_active());
}

// ---- Energy-aware controller ----

struct EnergyControllerHarness {
  EnergyControllerHarness() : sim(1), fpga(sim, ParkHarness::Config()) {
    fpga.InstallApp(&lake);
  }
  void OfferTraffic(double rate_pps, SimDuration duration) {
    const auto gap = static_cast<SimDuration>(1e9 / rate_pps);
    const int64_t n = duration / gap;
    const SimTime start = sim.Now();
    for (int64_t i = 0; i < n; ++i) {
      sim.ScheduleAt(start + i * gap, [this] {
        Packet pkt;
        pkt.src = 100;
        pkt.dst = 1;
        pkt.proto = AppProto::kKv;
        pkt.payload = KvRequest{KvOp::kGet, 1, 0};
        fpga.Receive(pkt);
      });
    }
  }
  struct FakeLikeMigrator : Migrator {
    void ShiftToNetwork() override { RecordTransition(0, Placement::kNetwork); }
    void ShiftToHost() override { RecordTransition(0, Placement::kHost); }
    std::string MigratorName() const override { return "fake"; }
  };

  Simulation sim;
  LakeCache lake{LakeConfig{}};
  FpgaNic fpga;
  FakeLikeMigrator migrator;
};

TEST(EnergyAwareControllerTest, ShiftsWhenModelPredictsSaving) {
  EnergyControllerHarness h;
  EnergyAwareControllerConfig config;
  config.window = Milliseconds(500);
  config.min_dwell = Milliseconds(100);
  EnergyAwareController controller(
      h.sim, h.fpga, h.migrator,
      [](double r) { return MakeServerRatePower(I7MemcachedCurve(), Microseconds(4), 4)(r) + 4.0; },
      MakeFpgaRatePower(35.0, 24.0, 1.0, 13e6), config);
  controller.Start();
  // 400 kpps: software would draw ~85 W vs LaKe's ~59 W -> shift.
  h.OfferTraffic(400000, Seconds(2));
  h.sim.RunUntil(Seconds(2));
  EXPECT_EQ(h.migrator.placement(), Placement::kNetwork);
  EXPECT_GT(controller.last_predicted_saving_watts(), 10.0);
}

TEST(EnergyAwareControllerTest, StaysOnHostWhenSoftwareCheaper) {
  EnergyControllerHarness h;
  EnergyAwareControllerConfig config;
  config.window = Milliseconds(500);
  EnergyAwareController controller(
      h.sim, h.fpga, h.migrator,
      [](double r) { return MakeServerRatePower(I7MemcachedCurve(), Microseconds(4), 4)(r) + 4.0; },
      MakeFpgaRatePower(35.0, 24.0, 1.0, 13e6), config);
  controller.Start();
  h.OfferTraffic(20000, Seconds(2));  // Far below the ~86 kpps tipping point.
  h.sim.RunUntil(Seconds(2));
  EXPECT_EQ(h.migrator.placement(), Placement::kHost);
  EXPECT_LT(controller.last_predicted_saving_watts(), 0.0);
}

TEST(EnergyAwareControllerTest, ShiftsBackWhenLoadDrops) {
  EnergyControllerHarness h;
  EnergyAwareControllerConfig config;
  config.window = Milliseconds(500);
  config.min_dwell = Milliseconds(100);
  EnergyAwareController controller(
      h.sim, h.fpga, h.migrator,
      [](double r) { return MakeServerRatePower(I7MemcachedCurve(), Microseconds(4), 4)(r) + 4.0; },
      MakeFpgaRatePower(35.0, 24.0, 1.0, 13e6), config);
  controller.Start();
  h.OfferTraffic(400000, Seconds(1));
  h.sim.RunUntil(Seconds(1));
  EXPECT_EQ(h.migrator.placement(), Placement::kNetwork);
  h.sim.RunUntil(Seconds(3));  // Silence: software is cheaper at ~0 rate.
  EXPECT_EQ(h.migrator.placement(), Placement::kHost);
}

TEST(EnergyAwareControllerTest, RejectsNullModels) {
  EnergyControllerHarness h;
  EXPECT_THROW(EnergyAwareController(h.sim, h.fpga, h.migrator, nullptr,
                                     MakeFpgaRatePower(35, 24, 1, 13e6)),
               std::invalid_argument);
}

}  // namespace
}  // namespace incod
