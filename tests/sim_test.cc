// Tests for the discrete-event engine and RNG.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "src/sim/random.h"
#include "src/sim/simulation.h"
#include "src/sim/time.h"

namespace incod {
namespace {

TEST(TimeTest, UnitConversions) {
  EXPECT_EQ(Microseconds(1), 1000);
  EXPECT_EQ(Milliseconds(1), 1000 * 1000);
  EXPECT_EQ(Seconds(1), 1000 * 1000 * 1000);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(3)), 3.0);
  EXPECT_DOUBLE_EQ(ToMicroseconds(Microseconds(7)), 7.0);
  EXPECT_DOUBLE_EQ(ToMilliseconds(Milliseconds(9)), 9.0);
}

TEST(TimeTest, SecondsFRounds) {
  EXPECT_EQ(SecondsF(1.0), Seconds(1));
  EXPECT_EQ(SecondsF(0.5e-9), 1);  // Rounds half up to 1 ns.
  EXPECT_EQ(SecondsF(1e-6), Microseconds(1));
}

TEST(SimulationTest, RunsEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.Schedule(Microseconds(30), [&] { order.push_back(3); });
  sim.Schedule(Microseconds(10), [&] { order.push_back(1); });
  sim.Schedule(Microseconds(20), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), Microseconds(30));
}

TEST(SimulationTest, FifoTieBreakAtSameTime) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(Microseconds(5), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulationTest, NestedSchedulingAdvancesTime) {
  Simulation sim;
  SimTime inner_time = -1;
  sim.Schedule(Microseconds(10), [&] {
    sim.Schedule(Microseconds(5), [&] { inner_time = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(inner_time, Microseconds(15));
}

TEST(SimulationTest, NegativeDelayClampsToNow) {
  Simulation sim;
  bool ran = false;
  sim.Schedule(Microseconds(10), [&] {
    sim.Schedule(-Microseconds(100), [&] {
      ran = true;
      EXPECT_EQ(sim.Now(), Microseconds(10));
    });
  });
  sim.Run();
  EXPECT_TRUE(ran);
}

TEST(SimulationTest, RunUntilStopsAtBoundaryAndSetsNow) {
  Simulation sim;
  int count = 0;
  sim.Schedule(Microseconds(10), [&] { ++count; });
  sim.Schedule(Microseconds(20), [&] { ++count; });
  sim.Schedule(Microseconds(30), [&] { ++count; });
  sim.RunUntil(Microseconds(20));
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.Now(), Microseconds(20));
  sim.RunUntil(Microseconds(25));
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.Now(), Microseconds(25));
}

TEST(SimulationTest, CancelPreventsExecution) {
  Simulation sim;
  bool ran = false;
  const uint64_t id = sim.Schedule(Microseconds(10), [&] { ran = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_FALSE(ran);
}

TEST(SimulationTest, CancelTwiceFails) {
  Simulation sim;
  const uint64_t id = sim.Schedule(Microseconds(10), [] {});
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(0));
  EXPECT_FALSE(sim.Cancel(9999));
}

TEST(SimulationTest, CancelAfterExecutionIsHonestNoOp) {
  // Cancelling a stale id (the event already ran) must report false and
  // leave the pending-event accounting intact.
  Simulation sim;
  const uint64_t id = sim.Schedule(Microseconds(10), [] {});
  sim.Run();
  EXPECT_FALSE(sim.Cancel(id));
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.Schedule(Microseconds(10), [] {});
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(SimulationTest, PendingEventsAccountsForCancellations) {
  Simulation sim;
  sim.Schedule(Microseconds(10), [] {});
  const uint64_t id = sim.Schedule(Microseconds(20), [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.Cancel(id);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(SimulationTest, EventsExecutedCounter) {
  Simulation sim;
  for (int i = 0; i < 5; ++i) {
    sim.Schedule(Microseconds(i), [] {});
  }
  sim.Run();
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(SimulationTest, FarFutureOverflowBucketsPreserveOrder) {
  // Events seconds apart overflow the calendar's near window into the far
  // list; interleaved near events must still run in global time order.
  Simulation sim;
  std::vector<int> order;
  sim.Schedule(Seconds(3), [&] { order.push_back(5); });
  sim.Schedule(Microseconds(1), [&] { order.push_back(1); });
  sim.Schedule(Seconds(1), [&] { order.push_back(3); });
  sim.Schedule(Microseconds(2), [&] {
    order.push_back(2);
    // Scheduled mid-run, lands between the two far events.
    sim.Schedule(Seconds(2) - Microseconds(2), [&] { order.push_back(4); });
  });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(sim.Now(), Seconds(3));
}

TEST(SimulationTest, SameTickFifoAcrossFarBoundary) {
  // Two events at the exact same far-future tick keep FIFO order after
  // migrating from the far list into buckets.
  Simulation sim;
  std::vector<int> order;
  sim.Schedule(Seconds(1), [&] { order.push_back(1); });
  sim.Schedule(Seconds(1), [&] { order.push_back(2); });
  sim.Schedule(Milliseconds(1), [&] { order.push_back(0); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SimulationTest, CancelFarFutureEvent) {
  Simulation sim;
  bool near_ran = false;
  bool far_ran = false;
  sim.Schedule(Microseconds(1), [&] { near_ran = true; });
  const uint64_t id = sim.Schedule(Seconds(5), [&] { far_ran = true; });
  EXPECT_EQ(sim.pending_events(), 2u);
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.Run();
  EXPECT_TRUE(near_ran);
  EXPECT_FALSE(far_ran);
  EXPECT_EQ(sim.Now(), Microseconds(1));  // Never advanced to the far tick.
}

TEST(SimulationTest, CancelDuringOwnExecutionIsNoOp) {
  Simulation sim;
  uint64_t id = 0;
  bool cancel_result = true;
  id = sim.Schedule(Microseconds(1), [&] { cancel_result = sim.Cancel(id); });
  sim.Run();
  EXPECT_FALSE(cancel_result);  // Already running: no longer pending.
}

TEST(SimulationTest, StaleIdAfterSlotReuseDoesNotCancelNewEvent) {
  // Ids are generation-tagged: an id from an event that already ran must not
  // cancel a later event that happens to reuse the same slot.
  Simulation sim;
  const uint64_t first = sim.Schedule(Microseconds(1), [] {});
  sim.Run();
  bool second_ran = false;
  sim.Schedule(Microseconds(1), [&] { second_ran = true; });
  EXPECT_FALSE(sim.Cancel(first));
  sim.Run();
  EXPECT_TRUE(second_ran);
}

TEST(SimulationTest, DensityShiftExercisesWidthAdaptation) {
  // A dense ns-scale burst followed by sparse ms timers forces the calendar
  // to re-bucket (narrow, then widen); counts and final time must be exact.
  Simulation sim;
  uint64_t dense = 0;
  struct Burst {
    Simulation* sim;
    uint64_t* count;
    uint64_t remaining;
    void operator()() {
      ++*count;
      if (remaining > 0) {
        sim->Schedule(3, Burst{sim, count, remaining - 1});
      }
    }
  };
  for (int i = 0; i < 8; ++i) {
    sim.Schedule(i, Burst{&sim, &dense, 20000});
  }
  uint64_t sparse = 0;
  for (int i = 1; i <= 50; ++i) {
    sim.Schedule(Milliseconds(i), [&] { ++sparse; });
  }
  sim.Run();
  EXPECT_EQ(dense, 8u * 20001u);
  EXPECT_EQ(sparse, 50u);
  EXPECT_EQ(sim.Now(), Milliseconds(50));
  EXPECT_EQ(sim.events_executed(), dense + sparse);
}

TEST(SimulationTest, HeapEngineMatchesSemantics) {
  // The reference engine passes the same core contract.
  Simulation sim(1, Simulation::EngineKind::kHeap);
  EXPECT_EQ(sim.engine(), Simulation::EngineKind::kHeap);
  std::vector<int> order;
  sim.Schedule(Microseconds(2), [&] { order.push_back(2); });
  sim.Schedule(Microseconds(1), [&] { order.push_back(1); });
  const uint64_t id = sim.Schedule(Microseconds(3), [&] { order.push_back(3); });
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.events_executed(), 2u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulationTest, SchedulePeriodicStopsWhenCallbackReturnsFalse) {
  Simulation sim;
  int ticks = 0;
  SchedulePeriodic(sim, Microseconds(10), Microseconds(10), [&] {
    ++ticks;
    return ticks < 3;
  });
  sim.Run();
  EXPECT_EQ(ticks, 3);
  EXPECT_EQ(sim.Now(), Microseconds(30));
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntBoundsInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // All values reachable.
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(11);
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
  EXPECT_THROW(rng.UniformInt(6, 5), std::invalid_argument);
}

TEST(RngTest, ExponentialMeanConverges) {
  Rng rng(13);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(4.0);
  }
  EXPECT_NEAR(sum / n, 4.0, 0.05);
}

TEST(RngTest, ExponentialRejectsNonPositiveMean) {
  Rng rng(1);
  EXPECT_THROW(rng.Exponential(0), std::invalid_argument);
  EXPECT_THROW(rng.Exponential(-1), std::invalid_argument);
}

TEST(RngTest, NormalMomentsConverge) {
  Rng rng(17);
  double sum = 0;
  double sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) {
      ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.Fork();
  // The child stream should not mirror the parent.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextU64() == child.NextU64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(ZipfTest, SamplesWithinRange) {
  Rng rng(29);
  ZipfDistribution zipf(1000, 0.99);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Sample(rng), 1000u);
  }
}

TEST(ZipfTest, PopularItemsDominate) {
  Rng rng(31);
  ZipfDistribution zipf(100000, 0.99);
  int top10 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Sample(rng) < 10) {
      ++top10;
    }
  }
  // With s=0.99 over 100k items, the top-10 ranks draw a large share.
  EXPECT_GT(top10, n / 5);
}

TEST(ZipfTest, HigherSkewConcentratesMore) {
  Rng rng1(37);
  Rng rng2(37);
  ZipfDistribution mild(10000, 0.7);
  ZipfDistribution steep(10000, 1.3);
  int mild_top = 0;
  int steep_top = 0;
  for (int i = 0; i < 50000; ++i) {
    if (mild.Sample(rng1) < 10) {
      ++mild_top;
    }
    if (steep.Sample(rng2) < 10) {
      ++steep_top;
    }
  }
  EXPECT_GT(steep_top, mild_top);
}

TEST(ZipfTest, RejectsBadParameters) {
  EXPECT_THROW(ZipfDistribution(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfDistribution(10, 0.0), std::invalid_argument);
}

TEST(ZipfTest, SingleElementAlwaysZero) {
  Rng rng(41);
  ZipfDistribution zipf(1, 0.99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(zipf.Sample(rng), 0u);
  }
}

TEST(DiscreteDistributionTest, RespectsWeights) {
  Rng rng(43);
  DiscreteDistribution dist({1.0, 3.0});
  int ones = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (dist.Sample(rng) == 1) {
      ++ones;
    }
  }
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.01);
}

TEST(DiscreteDistributionTest, ZeroWeightNeverSampled) {
  Rng rng(47);
  DiscreteDistribution dist({0.0, 1.0, 0.0});
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(dist.Sample(rng), 1u);
  }
}

TEST(DiscreteDistributionTest, RejectsInvalidWeights) {
  EXPECT_THROW(DiscreteDistribution({}), std::invalid_argument);
  EXPECT_THROW(DiscreteDistribution({-1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(DiscreteDistribution({0.0, 0.0}), std::invalid_argument);
}

// Property sweep: the exponential distribution's mean tracks the parameter.
class ExponentialMeanTest : public ::testing::TestWithParam<double> {};

TEST_P(ExponentialMeanTest, MeanTracksParameter) {
  Rng rng(53);
  const double mean = GetParam();
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(mean);
  }
  EXPECT_NEAR(sum / n / mean, 1.0, 0.03);
}

INSTANTIATE_TEST_SUITE_P(Means, ExponentialMeanTest,
                         ::testing::Values(0.001, 0.1, 1.0, 50.0, 1e6));

}  // namespace
}  // namespace incod
