// Tests for the experiment testbeds: component wiring, metering scope, and
// configuration validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "src/dns/zone.h"
#include "src/kvs/kv_protocol.h"
#include "src/kvs/lake.h"
#include "src/kvs/memcached_server.h"
#include "src/net/switch.h"
#include "src/net/topology.h"
#include "src/ondemand/migrator.h"
#include "src/power/cpu_power.h"
#include "src/scenarios/dns_testbed.h"
#include "src/scenarios/kvs_testbed.h"
#include "src/scenarios/multi_rack.h"
#include "src/scenarios/paxos_testbed.h"
#include "src/sim/sharded.h"
#include "src/workload/arrival.h"

namespace incod {
namespace {

TEST(KvsTestbedTest, SoftwareModeComponents) {
  Simulation sim(1);
  KvsTestbedOptions options;
  options.mode = KvsMode::kSoftwareOnly;
  KvsTestbed testbed(sim, options);
  EXPECT_NE(testbed.server(), nullptr);
  EXPECT_NE(testbed.nic(), nullptr);
  EXPECT_NE(testbed.memcached(), nullptr);
  EXPECT_EQ(testbed.fpga(), nullptr);
  EXPECT_EQ(testbed.lake(), nullptr);
  EXPECT_EQ(testbed.ServiceNode(), kTestbedServerNode);
}

TEST(KvsTestbedTest, LakeModeComponents) {
  Simulation sim(1);
  KvsTestbedOptions options;
  options.mode = KvsMode::kLake;
  KvsTestbed testbed(sim, options);
  EXPECT_NE(testbed.server(), nullptr);
  EXPECT_NE(testbed.fpga(), nullptr);
  EXPECT_NE(testbed.lake(), nullptr);
  EXPECT_EQ(testbed.nic(), nullptr);
  EXPECT_TRUE(testbed.fpga()->app_active());
}

TEST(KvsTestbedTest, StandaloneModeHasNoHost) {
  Simulation sim(1);
  KvsTestbedOptions options;
  options.mode = KvsMode::kLakeStandalone;
  KvsTestbed testbed(sim, options);
  EXPECT_EQ(testbed.server(), nullptr);
  EXPECT_EQ(testbed.memcached(), nullptr);
  EXPECT_NE(testbed.fpga(), nullptr);
  EXPECT_EQ(testbed.ServiceNode(), kTestbedDeviceNode);
}

TEST(KvsTestbedTest, LakeInitiallyInactiveOption) {
  Simulation sim(1);
  KvsTestbedOptions options;
  options.mode = KvsMode::kLake;
  options.lake_initially_active = false;
  KvsTestbed testbed(sim, options);
  EXPECT_FALSE(testbed.fpga()->app_active());
}

TEST(KvsTestbedTest, SecondClientRejected) {
  Simulation sim(1);
  KvsTestbedOptions options;
  options.mode = KvsMode::kSoftwareOnly;
  KvsTestbed testbed(sim, options);
  auto factory = [](NodeId src, uint64_t id, SimTime now, Rng&) {
    return MakeKvRequestPacket(src, 1, KvRequest{}, id, now);
  };
  testbed.AddClient(LoadClientConfig{}, std::make_unique<ConstantArrival>(1000.0),
                    factory);
  EXPECT_THROW(testbed.AddClient(LoadClientConfig{},
                                 std::make_unique<ConstantArrival>(1000.0), factory),
               std::logic_error);
}

TEST(KvsTestbedTest, PrefillWarmsBothSides) {
  Simulation sim(1);
  KvsTestbedOptions options;
  options.mode = KvsMode::kLake;
  KvsTestbed testbed(sim, options);
  testbed.Prefill(100, 64);
  EXPECT_EQ(testbed.memcached()->store().size(), 100u);
  EXPECT_GT(testbed.lake()->l1().size(), 0u);
  EXPECT_EQ(testbed.lake()->l2()->size(), 100u);
}

TEST(KvsTestbedTest, MeterSeesIdleAnchor) {
  Simulation sim(1);
  KvsTestbedOptions options;
  options.mode = KvsMode::kSoftwareOnly;
  KvsTestbed testbed(sim, options);
  // 35 W server + 4 W Mellanox NIC.
  EXPECT_NEAR(testbed.meter().InstantWatts(), 39.0, 0.1);
}

// Differential check for the declarative path: a spec/registry-built LaKe
// testbed must reproduce, event for event, the results of the original
// imperative wiring (reproduced by hand below with concrete app types and
// direct TestbedBuilder calls).
TEST(KvsTestbedTest, RegistryBuiltTestbedMatchesHandWiredResults) {
  struct RunResult {
    uint64_t received = 0;
    uint64_t completed = 0;
    uint64_t l1_hits = 0;
    uint64_t misses = 0;
    double p50 = 0;
    double watts = 0;
  };
  auto factory = [](NodeId src, uint64_t id, SimTime now, Rng& rng) {
    const uint64_t key = static_cast<uint64_t>(rng.UniformInt(0, 999));
    return MakeKvRequestPacket(src, 1, KvRequest{KvOp::kGet, key, 0}, id, now);
  };
  auto drive = [&](Simulation& sim, LoadClient& client, Server& server,
                   LakeCache& lake, WallPowerMeter& meter) {
    client.Start();
    sim.RunUntil(Milliseconds(100));
    RunResult r;
    r.received = client.received();
    r.completed = server.requests_completed();
    r.l1_hits = lake.l1_hits();
    r.misses = lake.misses_to_host();
    r.p50 = client.latency().P50();
    r.watts = meter.MeanWatts(0, sim.Now());
    return r;
  };

  // Spec/registry path: KvsTestbed is a veneer over MakeKvsScenarioSpec.
  RunResult spec_result;
  {
    Simulation sim(21);
    KvsTestbedOptions options;
    options.mode = KvsMode::kLake;
    KvsTestbed testbed(sim, options);
    testbed.Prefill(1000, 64);
    auto& client = testbed.AddClient(LoadClientConfig{},
                                     std::make_unique<ConstantArrival>(300000.0),
                                     factory);
    spec_result = drive(sim, client, *testbed.server(), *testbed.lake(),
                        testbed.meter());
  }

  // Hand-wired path: the pre-redesign imperative construction.
  RunResult hand_result;
  {
    Simulation sim(21);
    TestbedBuilder builder(sim, Milliseconds(1));
    ServerConfig server_config;
    server_config.name = "i7-server";
    server_config.node = kTestbedServerNode;
    server_config.num_cores = 4;
    server_config.power_curve = I7MemcachedCurve();
    Server* server = builder.AddServer(server_config);
    MemcachedServer memcached;
    server->BindApp(&memcached);

    FpgaNicConfig fpga_config;
    fpga_config.name = "netfpga-lake";
    fpga_config.host_node = kTestbedServerNode;
    fpga_config.device_node = kTestbedDeviceNode;
    LakeCache lake;
    FpgaNic* fpga = builder.AddFpgaNic(fpga_config, &lake);
    builder.ConnectPcie(fpga, server, TestbedBuilder::PcieLink(Nanoseconds(2500)));
    fpga->SetAppActive(true);
    builder.StartMeter();

    for (uint64_t k = 0; k < 1000; ++k) {
      memcached.store().Set(k, 64);
    }
    lake.WarmFill(0, 1000, 64);

    LoadClient* client = builder.AddLoadClient(
        LoadClientConfig{}, std::make_unique<ConstantArrival>(300000.0), factory);
    builder.ConnectClient(client, fpga, TestbedBuilder::TenGigLink(Nanoseconds(100)));
    hand_result = drive(sim, *client, *server, lake, builder.meter());
  }

  EXPECT_GT(spec_result.received, 0u);
  EXPECT_EQ(spec_result.received, hand_result.received);
  EXPECT_EQ(spec_result.completed, hand_result.completed);
  EXPECT_EQ(spec_result.l1_hits, hand_result.l1_hits);
  EXPECT_EQ(spec_result.misses, hand_result.misses);
  EXPECT_DOUBLE_EQ(spec_result.p50, hand_result.p50);
  EXPECT_DOUBLE_EQ(spec_result.watts, hand_result.watts);
}

TEST(DnsTestbedTest, ModesAndZoneSharing) {
  Simulation sim(1);
  DnsTestbedOptions options;
  options.mode = DnsMode::kEmu;
  options.zone_size = 123;
  DnsTestbed testbed(sim, options);
  EXPECT_EQ(testbed.zone().size(), 123u);
  EXPECT_NE(testbed.emu(), nullptr);
  EXPECT_NE(testbed.nsd(), nullptr);  // Host fallback present in kEmu mode.
  EXPECT_EQ(testbed.ServiceNode(), kTestbedServerNode);

  DnsTestbedOptions standalone;
  standalone.mode = DnsMode::kEmuStandalone;
  DnsTestbed hostless(sim, standalone);
  EXPECT_EQ(hostless.server(), nullptr);
  EXPECT_EQ(hostless.ServiceNode(), kTestbedDeviceNode);
}

TEST(PaxosTestbedTest, LeaderSutVariantsWireExpectedComponents) {
  Simulation sim(1);
  {
    PaxosTestbedOptions options;
    options.deployment = PaxosDeployment::kLibpaxos;
    PaxosTestbed testbed(sim, options);
    EXPECT_NE(testbed.sut_server(), nullptr);
    EXPECT_EQ(testbed.sut_fpga(), nullptr);
    EXPECT_NE(testbed.software_leader(), nullptr);
    EXPECT_EQ(testbed.fpga_leader(), nullptr);
  }
  {
    PaxosTestbedOptions options;
    options.deployment = PaxosDeployment::kP4xosFpga;
    PaxosTestbed testbed(sim, options);
    EXPECT_NE(testbed.sut_server(), nullptr);  // Host enclosing the board.
    EXPECT_NE(testbed.sut_fpga(), nullptr);
    EXPECT_NE(testbed.fpga_leader(), nullptr);
    EXPECT_EQ(testbed.software_leader(), nullptr);
  }
  {
    PaxosTestbedOptions options;
    options.deployment = PaxosDeployment::kP4xosStandalone;
    PaxosTestbed testbed(sim, options);
    EXPECT_EQ(testbed.sut_server(), nullptr);
    EXPECT_NE(testbed.sut_fpga(), nullptr);
  }
}

TEST(PaxosTestbedTest, DualLeaderHasBothLeaders) {
  Simulation sim(1);
  PaxosTestbedOptions options;
  options.deployment = PaxosDeployment::kP4xosFpga;
  options.dual_leader = true;
  PaxosTestbed testbed(sim, options);
  EXPECT_NE(testbed.software_leader(), nullptr);
  EXPECT_NE(testbed.fpga_leader(), nullptr);
  EXPECT_FALSE(testbed.sut_fpga()->app_active());  // Software serves first.
  EXPECT_GE(testbed.leader_port(), 0);
}

TEST(PaxosTestbedTest, GroupLayout) {
  Simulation sim(1);
  PaxosTestbedOptions options;
  options.num_acceptors = 5;
  PaxosTestbed testbed(sim, options);
  EXPECT_EQ(testbed.group().acceptors.size(), 5u);
  EXPECT_EQ(testbed.group().QuorumSize(), 3u);
  EXPECT_EQ(testbed.group().leader_service, kPaxosLeaderService);
  EXPECT_NE(testbed.learner(), nullptr);
}

TEST(PaxosTestbedTest, InvalidConfigsRejected) {
  Simulation sim(1);
  {
    PaxosTestbedOptions options;
    options.num_acceptors = 0;
    EXPECT_THROW(PaxosTestbed(sim, options), std::invalid_argument);
  }
  {
    PaxosTestbedOptions options;
    options.dual_leader = true;
    options.sut = PaxosSut::kAcceptor;
    EXPECT_THROW(PaxosTestbed(sim, options), std::invalid_argument);
  }
}

// Differential check for the switch-centric declarative path: the
// spec/registry-built Paxos group (PaxosTestbed is now a veneer over
// MakePaxosGroupSpec) must reproduce, event for event, the results of the
// original imperative wiring — reproduced by hand below with concrete app
// types and direct TestbedBuilder calls — including a Fig 7 leader shift
// through the switch-rule rewrite.
TEST(PaxosTestbedTest, SpecBuiltGroupMatchesHandWiredResults) {
  struct RunResult {
    uint64_t completed = 0;
    uint64_t sent = 0;
    uint64_t retries = 0;
    uint64_t leader_messages = 0;
    uint64_t hw_leader_messages = 0;
    uint64_t delivered = 0;
    double p50 = 0;
    double watts = 0;
  };
  PaxosClientConfig client_config;
  client_config.requests_per_second = 20000;
  client_config.retry_timeout = Milliseconds(100);

  auto drive = [&](Simulation& sim, PaxosClient& client, PaxosLeaderMigrator& migrator,
                   SoftwareLeader& sw_leader, P4xosFpgaApp& hw_leader,
                   SoftwareLearner& learner, WallPowerMeter& meter) {
    sim.Schedule(Milliseconds(200), [&] { migrator.ShiftToNetwork(); });
    sim.Schedule(Milliseconds(600), [&] { migrator.ShiftToHost(); });
    client.Start();
    sim.RunUntil(Seconds(1));
    RunResult r;
    r.completed = client.completed();
    r.sent = client.sent();
    r.retries = client.retries();
    r.leader_messages = sw_leader.messages_handled();
    r.hw_leader_messages = hw_leader.messages_handled();
    r.delivered = learner.state().delivered_count();
    r.p50 = client.latency().P50();
    r.watts = meter.MeanWatts(0, sim.Now());
    return r;
  };

  // Spec/registry path: the dual-leader group as PaxosTestbed builds it.
  RunResult spec_result;
  {
    Simulation sim(21);
    PaxosTestbedOptions options;
    options.deployment = PaxosDeployment::kP4xosFpga;
    options.dual_leader = true;
    options.client = client_config;
    PaxosTestbed testbed(sim, options);
    PaxosLeaderMigrator migrator(sim, testbed.net_switch(), kPaxosLeaderService,
                                 *testbed.software_leader(), testbed.leader_port(),
                                 *testbed.sut_fpga(), *testbed.fpga_leader(),
                                 testbed.leader_port());
    spec_result = drive(sim, testbed.client(), migrator, *testbed.software_leader(),
                        *testbed.fpga_leader(), *testbed.learner(), testbed.meter());
  }

  // Hand-wired path: the pre-redesign imperative construction.
  RunResult hand_result;
  {
    Simulation sim(21);
    TestbedBuilder builder(sim, Milliseconds(1));
    PaxosGroupConfig group;
    group.acceptors = {kPaxosAcceptorBaseNode, kPaxosAcceptorBaseNode + 1,
                       kPaxosAcceptorBaseNode + 2};
    group.learners = {kPaxosLearnerNode};
    group.leader_service = kPaxosLeaderService;

    L2Switch* sw = builder.AddL2Switch("tor-switch");

    ServerConfig server_config;
    server_config.name = "leader-host";
    server_config.node = kPaxosLeaderHostNode;
    server_config.num_cores = 4;
    server_config.power_curve = I7LibpaxosCurve();
    Server* host = builder.AddServer(server_config);
    SoftwareLeader sw_leader(group, /*ballot=*/1);
    host->BindApp(&sw_leader);

    FpgaNicConfig fpga_config;
    fpga_config.name = "netfpga-p4xos-leader";
    fpga_config.host_node = kPaxosLeaderHostNode;
    fpga_config.device_node = kPaxosLeaderDeviceNode;
    P4xosFpgaApp hw_leader(P4xosRole::kLeader, group, /*role_id=*/1,
                           kPaxosLeaderService);
    FpgaNic* fpga = builder.AddFpgaNic(fpga_config, &hw_leader);
    fpga->SetAppActive(false);
    const int leader_port = builder.ConnectToSwitchPort(
        sw, fpga, {kPaxosLeaderService, kPaxosLeaderHostNode, kPaxosLeaderDeviceNode},
        TestbedBuilder::TenGigLink(), "leader-10ge");
    builder.ConnectPcie(fpga, host, TestbedBuilder::PcieLink(), "leader-10ge-pcie");

    std::vector<std::unique_ptr<SoftwareAcceptor>> acceptors;
    for (int i = 0; i < 3; ++i) {
      Server* server = builder.AddAuxServer(
          sw, kPaxosAcceptorBaseNode + static_cast<NodeId>(i), "aux-acceptor", 4);
      acceptors.push_back(std::make_unique<SoftwareAcceptor>(
          group, static_cast<uint32_t>(i), PaxosSoftwareConfig{Nanoseconds(300), 2}));
      server->BindApp(acceptors.back().get());
    }
    Server* learner_host = builder.AddAuxServer(sw, kPaxosLearnerNode, "learner-host", 8);
    SoftwareLearner learner(group, PaxosSoftwareConfig{Nanoseconds(100), 8},
                            Milliseconds(50));
    learner_host->BindApp(&learner);
    builder.StartMeter();
    learner.StartGapTimer();

    PaxosClientConfig config = client_config;
    config.node = kPaxosClientNode;
    config.leader_service = kPaxosLeaderService;
    PaxosClient client(sim, config);
    Link* link = builder.topology().ConnectToSwitch(sw, &client, kPaxosClientNode,
                                                    TestbedBuilder::TenGigLink(),
                                                    "client-10ge");
    client.SetUplink(link);

    PaxosLeaderMigrator migrator(sim, *sw, kPaxosLeaderService, sw_leader, leader_port,
                                 *fpga, hw_leader, leader_port);
    hand_result = drive(sim, client, migrator, sw_leader, hw_leader, learner,
                        builder.meter());
  }

  EXPECT_GT(spec_result.completed, 0u);
  EXPECT_EQ(spec_result.completed, hand_result.completed);
  EXPECT_EQ(spec_result.sent, hand_result.sent);
  EXPECT_EQ(spec_result.retries, hand_result.retries);
  EXPECT_EQ(spec_result.leader_messages, hand_result.leader_messages);
  EXPECT_EQ(spec_result.hw_leader_messages, hand_result.hw_leader_messages);
  EXPECT_EQ(spec_result.delivered, hand_result.delivered);
  EXPECT_DOUBLE_EQ(spec_result.p50, hand_result.p50);
  EXPECT_DOUBLE_EQ(spec_result.watts, hand_result.watts);
}

TEST(PaxosTestbedTest, AcceptorSutUsesHardwareLeader) {
  Simulation sim(1);
  PaxosTestbedOptions options;
  options.sut = PaxosSut::kAcceptor;
  options.deployment = PaxosDeployment::kLibpaxos;
  PaxosTestbed testbed(sim, options);
  // The leader must never bottleneck an acceptor sweep: it runs on an
  // (unmetered) FPGA regardless of the acceptor deployment under test.
  EXPECT_NE(testbed.fpga_leader(), nullptr);
  EXPECT_NE(testbed.software_acceptor(0), nullptr);
  EXPECT_NE(testbed.sut_server(), nullptr);
}

// --- MultiRackScenario: veneer over RowSpec vs hand-wired construction ---

struct MultiRackRunResult {
  uint64_t events = 0;
  std::vector<uint64_t> counters;
  double watts = 0;
};

void AppendClientCounters(MultiRackRunResult* result, const LoadClient& client) {
  result->counters.push_back(client.sent());
  result->counters.push_back(client.received());
  result->counters.push_back(client.lost());
  result->counters.push_back(client.latency().P50());
  result->counters.push_back(client.latency().P99());
}

ShardedSimulation::Options MultiRackShardOptions(ShardedSimulation::Mode mode,
                                                 int shards, int threads,
                                                 uint64_t seed) {
  ShardedSimulation::Options sharded;
  sharded.num_shards = shards;
  sharded.num_threads = threads;
  sharded.mode = mode;
  sharded.seed = seed;
  return sharded;
}

MultiRackOptions SmallMultiRackOptions() {
  MultiRackOptions options;
  options.num_racks = 2;
  options.kvs_rate_per_second = 200000;
  options.dns_rate_per_second = 100000;
  options.prefill = 1000;
  options.keyspace = 1000;
  return options;
}

// The pre-row imperative construction, kept verbatim as the differential
// reference: every rack a ScenarioTestbed wired by hand, clients added with
// hand-rolled factories, uplinks and spine routes strung up one by one.
MultiRackRunResult RunHandWiredMultiRack(ShardedSimulation::Mode mode, int threads,
                                         uint64_t seed) {
  const MultiRackOptions options = SmallMultiRackOptions();
  const int num_racks = options.num_racks;
  ShardedSimulation ssim(
      MultiRackShardOptions(mode, num_racks + 1, threads, seed));

  Zone zone;
  zone.FillSynthetic(options.zone_size);
  auto spine = std::make_unique<L2Switch>(ssim.shard(num_racks), "spine");
  Topology spine_topology(ssim.shard(num_racks));
  spine_topology.SetSharded(&ssim, num_racks);
  spine_topology.AssignShard(spine.get(), num_racks);

  std::vector<std::unique_ptr<ScenarioTestbed>> racks;
  std::vector<LoadClient*> kvs_clients;
  std::vector<LoadClient*> dns_clients;
  const auto kvs_host = [](int r) { return MultiRackScenario::KvsHostNode(r); };

  for (int r = 0; r < num_racks; ++r) {
    ScenarioSpec spec;
    spec.name = "rack-" + std::to_string(r);
    spec.shard = r;
    spec.meter_period = options.meter_period;
    spec.host.present = false;
    spec.target.kind = ScenarioTargetKind::kNone;
    spec.env.zone = &zone;
    spec.tor.present = true;
    spec.tor.asic = false;
    spec.tor.name = "tor-" + std::to_string(r);
    {
      ScenarioMemberSpec kvs;
      kvs.name = "kvs";
      kvs.link_name = "kvs-10ge";
      kvs.host.config.name = spec.name + "-kvs-host";
      kvs.host.config.node = kvs_host(r);
      kvs.host.config.num_cores = 4;
      kvs.host.config.power_curve = I7MemcachedCurve();
      kvs.host.apps = {"kvs"};
      kvs.target.kind = ScenarioTargetKind::kFpgaNic;
      kvs.target.name = spec.name + "-lake";
      kvs.target.device_node = MultiRackScenario::KvsDeviceNode(r);
      kvs.target.app = "kvs";
      kvs.switch_routes = {kvs_host(r), MultiRackScenario::KvsDeviceNode(r)};
      spec.members.push_back(std::move(kvs));
    }
    {
      ScenarioMemberSpec dns;
      dns.name = "dns";
      dns.link_name = "dns-10ge";
      dns.host.config.name = spec.name + "-dns-host";
      dns.host.config.node = MultiRackScenario::DnsHostNode(r);
      dns.host.config.num_cores = 4;
      dns.host.config.power_curve = I7NsdCurve();
      dns.host.apps = {"dns"};
      dns.target.kind = ScenarioTargetKind::kConventionalNic;
      dns.switch_routes = {MultiRackScenario::DnsHostNode(r)};
      dns.env.service = MultiRackScenario::DnsHostNode(r);
      spec.members.push_back(std::move(dns));
    }
    racks.push_back(std::make_unique<ScenarioTestbed>(ssim, std::move(spec)));
    ScenarioTestbed& rack = *racks.back();

    LoadClientConfig kvs_client;
    kvs_client.node = MultiRackScenario::KvsClientNode(r);
    const NodeId local = kvs_host(r);
    const NodeId remote = kvs_host((r + 1) % num_racks);
    const int64_t max_key =
        std::max<int64_t>(0, static_cast<int64_t>(options.keyspace) - 1);
    const double cross_fraction = options.cross_rack_fraction;
    kvs_clients.push_back(&rack.AddTorClient(
        kvs_client, std::make_unique<PoissonArrival>(options.kvs_rate_per_second),
        [local, remote, max_key, cross_fraction](NodeId src, uint64_t id,
                                                 SimTime now, Rng& rng) {
          const uint64_t key = static_cast<uint64_t>(rng.UniformInt(0, max_key));
          const bool cross = rng.UniformDouble(0.0, 1.0) < cross_fraction;
          return MakeKvRequestPacket(src, cross ? remote : local,
                                     KvRequest{KvOp::kGet, key, 0}, id, now);
        }));

    LoadClientConfig dns_client;
    dns_client.node = MultiRackScenario::DnsClientNode(r);
    ScenarioWorkloadSpec dns_workload;
    dns_workload.kind = ScenarioWorkloadSpec::Kind::kDnsQueries;
    dns_clients.push_back(&rack.AddTorClient(
        dns_client, std::make_unique<PoissonArrival>(options.dns_rate_per_second),
        MakeScenarioRequestFactory(dns_workload, MultiRackScenario::DnsHostNode(r),
                                   &zone)));
  }

  for (int r = 0; r < num_racks; ++r) {
    ScenarioTestbed& rack = *racks[static_cast<size_t>(r)];
    L2Switch* tor = rack.tor();
    spine_topology.AssignShard(tor, r);
    Link::Config uplink;
    uplink.gigabits_per_second = options.uplink_gigabits_per_second;
    uplink.propagation_delay = options.inter_rack_propagation;
    Link* link = spine_topology.Connect(tor, spine.get(), uplink,
                                        "uplink-" + std::to_string(r));
    const int tor_port = tor->AttachLink(link);
    tor->SetDefaultRoute(tor_port);
    const int spine_port = spine->AttachLink(link);
    for (NodeId node :
         {kvs_host(r), MultiRackScenario::DnsHostNode(r),
          MultiRackScenario::KvsDeviceNode(r), MultiRackScenario::KvsClientNode(r),
          MultiRackScenario::DnsClientNode(r)}) {
      spine->AddRoute(node, spine_port);
    }

    auto* memcached = rack.member_host_app_as<MemcachedServer>(0);
    auto* lake = rack.member_offload_app_as<LakeCache>(0);
    for (uint64_t k = 0; k < options.prefill; ++k) {
      memcached->store().Set(k, options.value_bytes);
    }
    lake->WarmFill(0, options.prefill, options.value_bytes);
  }

  for (LoadClient* client : kvs_clients) {
    client->Start();
  }
  for (LoadClient* client : dns_clients) {
    client->Start();
  }
  ssim.RunUntil(Milliseconds(15));

  MultiRackRunResult result;
  result.events = ssim.events_executed();
  for (int r = 0; r < num_racks; ++r) {
    AppendClientCounters(&result, *kvs_clients[static_cast<size_t>(r)]);
    AppendClientCounters(&result, *dns_clients[static_cast<size_t>(r)]);
    result.watts +=
        racks[static_cast<size_t>(r)]->meter().MeanWatts(0, Milliseconds(15));
  }
  return result;
}

MultiRackRunResult RunVeneerMultiRack(ShardedSimulation::Mode mode, int threads,
                                      uint64_t seed) {
  const MultiRackOptions options = SmallMultiRackOptions();
  ShardedSimulation ssim(
      MultiRackShardOptions(mode, options.num_racks + 1, threads, seed));
  MultiRackScenario fabric(ssim, options);
  fabric.Start();
  ssim.RunUntil(Milliseconds(15));

  MultiRackRunResult result;
  result.events = ssim.events_executed();
  for (int r = 0; r < fabric.num_racks(); ++r) {
    AppendClientCounters(&result, fabric.kvs_client(r));
    AppendClientCounters(&result, fabric.dns_client(r));
    result.watts += fabric.rack(r).meter().MeanWatts(0, Milliseconds(15));
  }
  return result;
}

// The RowSpec veneer must be event-identical to the pre-row hand-wired
// construction — in the single-queue engine *and* when the veneer runs
// sharded-parallel against the hand-wired single-queue reference.
TEST(MultiRackTest, VeneerMatchesHandWiredEventStream) {
  for (const uint64_t seed : {7u, 21u}) {
    const MultiRackRunResult hand =
        RunHandWiredMultiRack(ShardedSimulation::Mode::kSingleQueue, 1, seed);
    EXPECT_GT(hand.events, 50000u) << "seed " << seed;  // Non-trivial run.
    for (const auto mode : {ShardedSimulation::Mode::kSingleQueue,
                            ShardedSimulation::Mode::kParallel}) {
      const int threads = mode == ShardedSimulation::Mode::kParallel ? 3 : 1;
      const MultiRackRunResult veneer = RunVeneerMultiRack(mode, threads, seed);
      EXPECT_EQ(hand.events, veneer.events)
          << "seed " << seed << " mode " << static_cast<int>(mode);
      ASSERT_EQ(hand.counters.size(), veneer.counters.size());
      for (size_t i = 0; i < hand.counters.size(); ++i) {
        EXPECT_EQ(hand.counters[i], veneer.counters[i])
            << "counter " << i << " seed " << seed << " mode "
            << static_cast<int>(mode);
      }
      EXPECT_DOUBLE_EQ(hand.watts, veneer.watts) << "seed " << seed;
    }
  }
}

TEST(MultiRackTest, VeneerExposesRowWiring) {
  MultiRackOptions options = SmallMultiRackOptions();
  ShardedSimulation ssim(MultiRackShardOptions(
      ShardedSimulation::Mode::kSingleQueue, options.num_racks + 1, 1, 7));
  MultiRackScenario fabric(ssim, options);
  EXPECT_EQ(fabric.num_racks(), 2);
  EXPECT_EQ(fabric.row().num_racks(), 2);
  EXPECT_EQ(fabric.row().spine_shard(), 2);
  // Plain fabric: no orchestration, no global budget.
  EXPECT_EQ(fabric.row().rack_orchestrator(0), nullptr);
  EXPECT_EQ(fabric.row().row_orchestrator(), nullptr);
  // The spec builder names racks and uplinks the way the fabric always has.
  const RowSpec spec = MakeMultiRackRowSpec(options);
  ASSERT_EQ(spec.racks.size(), 2u);
  EXPECT_EQ(spec.racks[0].scenario.name, "rack-0");
  EXPECT_EQ(spec.racks[1].scenario.name, "rack-1");
  EXPECT_EQ(spec.racks[0].clients.size(), 2u);
  EXPECT_EQ(spec.racks[0].clients[0].workload.cross_service,
            MultiRackScenario::KvsHostNode(1));
  EXPECT_EQ(spec.racks[1].clients[0].workload.cross_service,
            MultiRackScenario::KvsHostNode(0));
}

}  // namespace
}  // namespace incod
