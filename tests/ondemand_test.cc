// Tests for the on-demand migrators, controllers, and the energy advisor.
#include <gtest/gtest.h>

#include <memory>

#include "src/device/fpga_nic.h"
#include "src/kvs/lake.h"
#include "src/ondemand/controller.h"
#include "src/ondemand/energy_advisor.h"
#include "src/ondemand/migrator.h"
#include "src/power/cpu_power.h"
#include "src/sim/simulation.h"

namespace incod {
namespace {

struct MigratorHarness {
  MigratorHarness() : sim(), fpga(sim, Config()) {
    fpga.InstallApp(&lake);
  }
  static FpgaNicConfig Config() {
    FpgaNicConfig config;
    config.host_node = 1;
    config.device_node = 50;
    return config;
  }
  Simulation sim;
  LakeCache lake{LakeConfig{}};
  FpgaNic fpga;
};

TEST(ClassifierMigratorTest, StartsOnHostWithSavings) {
  MigratorHarness h;
  ClassifierMigrator migrator(h.sim, h.fpga);
  EXPECT_EQ(migrator.placement(), Placement::kHost);
  EXPECT_FALSE(h.fpga.app_active());
  EXPECT_TRUE(h.fpga.clock_gating());
  EXPECT_TRUE(h.fpga.memory_reset());
}

TEST(ClassifierMigratorTest, ShiftToNetworkEnablesEverything) {
  MigratorHarness h;
  ClassifierMigrator migrator(h.sim, h.fpga);
  migrator.ShiftToNetwork();
  EXPECT_EQ(migrator.placement(), Placement::kNetwork);
  EXPECT_TRUE(h.fpga.app_active());
  EXPECT_FALSE(h.fpga.clock_gating());
  EXPECT_FALSE(h.fpga.memory_reset());
  EXPECT_EQ(migrator.transitions().size(), 1u);
  // Idempotent.
  migrator.ShiftToNetwork();
  EXPECT_EQ(migrator.transitions().size(), 1u);
}

TEST(ClassifierMigratorTest, ShiftBackRestoresSavings) {
  MigratorHarness h;
  ClassifierMigrator migrator(h.sim, h.fpga);
  migrator.ShiftToNetwork();
  const double active_watts = h.fpga.PowerWatts();
  migrator.ShiftToHost();
  EXPECT_EQ(migrator.placement(), Placement::kHost);
  EXPECT_LT(h.fpga.PowerWatts(), active_watts);  // Gating saves power.
  EXPECT_EQ(migrator.transitions().size(), 2u);
  EXPECT_EQ(migrator.transitions()[1].to, Placement::kHost);
}

TEST(ClassifierMigratorTest, OptionsDisableSavings) {
  MigratorHarness h;
  ClassifierMigrator::Options options;
  options.clock_gate_when_idle = false;
  options.reset_memories_when_idle = false;
  ClassifierMigrator migrator(h.sim, h.fpga, options);
  EXPECT_FALSE(h.fpga.clock_gating());
  EXPECT_FALSE(h.fpga.memory_reset());
}

TEST(ClassifierMigratorTest, CacheWarmupAfterShift) {
  // §9.2: enabling LaKe after memory reset starts with cold caches.
  MigratorHarness h;
  ClassifierMigrator migrator(h.sim, h.fpga);
  h.lake.WarmFill(0, 100, 64);  // Filled while... then reset on construction
  // (construction already put memories in reset, clearing state).
  EXPECT_EQ(h.lake.l1().size(), 100u);  // WarmFill happened after reset edge.
  migrator.ShiftToNetwork();
  migrator.ShiftToHost();  // Memories back to reset: caches cleared.
  EXPECT_EQ(h.lake.l1().size(), 0u);
}

// A fake migrator for controller tests.
class FakeMigrator : public Migrator {
 public:
  void ShiftToNetwork() override { RecordTransition(0, Placement::kNetwork); }
  void ShiftToHost() override { RecordTransition(0, Placement::kHost); }
  std::string MigratorName() const override { return "fake"; }
};

struct NetworkControllerHarness {
  NetworkControllerHarness() : sim(), fpga(sim, MigratorHarness::Config()) {
    fpga.InstallApp(&lake);
  }
  void OfferTraffic(double rate_pps, SimDuration duration) {
    const auto gap = static_cast<SimDuration>(1e9 / rate_pps);
    const int64_t n = duration / gap;
    const SimTime start = sim.Now();
    for (int64_t i = 0; i < n; ++i) {
      sim.ScheduleAt(start + i * gap, [this] {
        Packet pkt;
        pkt.src = 100;
        pkt.dst = 1;
        pkt.proto = AppProto::kKv;
        pkt.payload = KvRequest{KvOp::kGet, 1, 0};
        fpga.Receive(pkt);
      });
    }
  }
  Simulation sim;
  LakeCache lake{LakeConfig{}};
  FpgaNic fpga;
  FakeMigrator migrator;
};

TEST(NetworkControllerTest, ShiftsUpWhenRateSustained) {
  NetworkControllerHarness h;
  // The device forwards to a host we don't model here; give it a sink link.
  NetworkControllerConfig config;
  config.up_rate_pps = 100000;
  config.up_window = Milliseconds(500);
  config.down_rate_pps = 20000;
  config.down_window = Seconds(1);
  config.min_dwell = Milliseconds(100);
  NetworkController controller(h.sim, h.fpga, h.migrator, config);
  controller.Start();
  h.OfferTraffic(200000, Seconds(2));
  h.sim.RunUntil(Seconds(2));
  EXPECT_EQ(h.migrator.placement(), Placement::kNetwork);
  ASSERT_GE(h.migrator.transitions().size(), 1u);
  EXPECT_EQ(h.migrator.transitions()[0].to, Placement::kNetwork);
}

TEST(NetworkControllerTest, StaysOnHostBelowThreshold) {
  NetworkControllerHarness h;
  NetworkControllerConfig config;
  config.up_rate_pps = 100000;
  config.up_window = Milliseconds(500);
  NetworkController controller(h.sim, h.fpga, h.migrator, config);
  controller.Start();
  h.OfferTraffic(30000, Seconds(2));
  h.sim.RunUntil(Seconds(2));
  EXPECT_EQ(h.migrator.placement(), Placement::kHost);
  EXPECT_TRUE(h.migrator.transitions().empty());
}

TEST(NetworkControllerTest, ShiftsBackWhenLoadDrops) {
  NetworkControllerHarness h;
  NetworkControllerConfig config;
  config.up_rate_pps = 100000;
  config.up_window = Milliseconds(500);
  config.down_rate_pps = 20000;
  config.down_window = Milliseconds(500);
  config.min_dwell = Milliseconds(100);
  NetworkController controller(h.sim, h.fpga, h.migrator, config);
  controller.Start();
  h.OfferTraffic(200000, Seconds(1));
  h.sim.RunUntil(Seconds(1));
  EXPECT_EQ(h.migrator.placement(), Placement::kNetwork);
  // Quiet period: rate collapses below the down threshold.
  h.sim.RunUntil(Seconds(3));
  EXPECT_EQ(h.migrator.placement(), Placement::kHost);
}

TEST(NetworkControllerTest, HysteresisPreventsOscillation) {
  // Rate between the two thresholds must not cause back-and-forth: "Using
  // two sets of parameters provides hysteresis" (§9.1).
  NetworkControllerHarness h;
  NetworkControllerConfig config;
  config.up_rate_pps = 150000;
  config.up_window = Milliseconds(500);
  config.down_rate_pps = 50000;
  config.down_window = Milliseconds(500);
  config.min_dwell = Milliseconds(100);
  NetworkController controller(h.sim, h.fpga, h.migrator, config);
  controller.Start();
  h.OfferTraffic(100000, Seconds(4));  // Between down (50K) and up (150K).
  h.sim.RunUntil(Seconds(4));
  EXPECT_TRUE(h.migrator.transitions().empty());
}

struct HostControllerHarness {
  HostControllerHarness()
      : sim(),
        server(sim, MakeServerConfig()),
        fpga(sim, MigratorHarness::Config()),
        rapl(sim, [this] { return server.RaplPackageWatts(); }, Milliseconds(1)) {
    fpga.InstallApp(&lake);
    rapl.Start();
  }
  static ServerConfig MakeServerConfig() {
    ServerConfig config;
    config.node = 1;
    config.power_curve = I7MemcachedCurve();
    return config;
  }
  Simulation sim;
  Server server;
  LakeCache lake{LakeConfig{}};
  FpgaNic fpga;
  RaplCounter rapl;
  FakeMigrator migrator;
};

TEST(HostControllerTest, ShiftsWhenPowerAndCpuSustained) {
  HostControllerHarness h;
  HostControllerConfig config;
  config.up_power_watts = 25.0;
  config.up_cpu_usage = -1.0;  // CPU gate disabled for this test.
  config.up_window = Seconds(1);
  config.min_dwell = Milliseconds(100);
  HostController controller(h.sim, h.server, AppProto::kKv, h.rapl, h.fpga, h.migrator,
                            config);
  controller.Start();
  h.server.SetBackgroundUtilization(3.5);  // Pushes RAPL well above 25 W.
  h.sim.RunUntil(Seconds(3));
  EXPECT_EQ(h.migrator.placement(), Placement::kNetwork);
}

TEST(HostControllerTest, NoShiftWhenPowerLow) {
  HostControllerHarness h;
  HostControllerConfig config;
  config.up_power_watts = 25.0;
  config.up_cpu_usage = 0.0;
  HostController controller(h.sim, h.server, AppProto::kKv, h.rapl, h.fpga, h.migrator,
                            config);
  controller.Start();
  h.sim.RunUntil(Seconds(3));  // Idle server: RAPL ~8 W.
  EXPECT_EQ(h.migrator.placement(), Placement::kHost);
}

TEST(HostControllerTest, RequiresSustainedWindowNotSpike) {
  // "the information is inspected over time, avoiding harsh decisions based
  // on spikes and outliers" (§9.1).
  HostControllerHarness h;
  HostControllerConfig config;
  config.up_power_watts = 25.0;
  config.up_cpu_usage = -1.0;
  config.up_window = Seconds(3);
  HostController controller(h.sim, h.server, AppProto::kKv, h.rapl, h.fpga, h.migrator,
                            config);
  controller.Start();
  // A 500 ms spike, then idle.
  h.server.SetBackgroundUtilization(4.0);
  h.sim.Schedule(Milliseconds(500), [&] { h.server.SetBackgroundUtilization(0.0); });
  h.sim.RunUntil(Seconds(5));
  EXPECT_EQ(h.migrator.placement(), Placement::kHost);
}

TEST(HostControllerTest, ShiftsBackOnLowDeviceRate) {
  HostControllerHarness h;
  HostControllerConfig config;
  config.up_power_watts = 25.0;
  config.up_cpu_usage = -1.0;
  config.up_window = Milliseconds(500);
  config.down_rate_pps = 1000;  // Device is idle: rate 0 < 1000.
  config.down_power_watts = 200.0;
  config.down_window = Milliseconds(500);
  config.min_dwell = Milliseconds(100);
  HostController controller(h.sim, h.server, AppProto::kKv, h.rapl, h.fpga, h.migrator,
                            config);
  controller.Start();
  h.server.SetBackgroundUtilization(3.5);
  h.sim.RunUntil(Seconds(2));
  EXPECT_EQ(h.migrator.placement(), Placement::kNetwork);
  h.server.SetBackgroundUtilization(0.0);
  h.sim.RunUntil(Seconds(5));
  EXPECT_EQ(h.migrator.placement(), Placement::kHost);
}

// ---- Park policies under migration (§9.2) ----

TEST(ParkPolicyMigrationTest, ReprogramHaltSuppressesClassifierTraffic) {
  // §9.2: loading the bitstream causes "a momentary traffic halt" — for the
  // configured halt window the classifier sees (and forwards) nothing.
  MigratorHarness h;
  const SimDuration halt = Milliseconds(40);
  ClassifierMigrator migrator(
      h.sim, h.fpga, ClassifierMigrator::Options::FromPolicy(ParkPolicy::kReprogram, halt));

  auto offer_packet = [&] {
    Packet pkt;
    pkt.src = 100;
    pkt.dst = 1;
    pkt.proto = AppProto::kKv;
    pkt.payload = KvRequest{KvOp::kGet, 1, 0};
    h.fpga.Receive(pkt);
  };

  migrator.ShiftToNetwork();
  EXPECT_TRUE(h.fpga.reprogramming());
  // Traffic offered through the whole halt window is dropped unseen.
  const int kDuringHalt = 10;
  for (int i = 0; i < kDuringHalt; ++i) {
    h.sim.Schedule(halt * i / kDuringHalt, offer_packet);
  }
  h.sim.RunUntil(halt - Milliseconds(1));
  EXPECT_EQ(h.fpga.app_ingress_packets(), 0u);
  EXPECT_EQ(h.fpga.processed_in_hardware(), 0u);
  EXPECT_EQ(h.fpga.dropped(), static_cast<uint64_t>(kDuringHalt));
  EXPECT_TRUE(h.fpga.reprogramming());

  // Once the halt elapses the app is live and traffic flows again.
  h.sim.RunUntil(halt + Milliseconds(1));
  EXPECT_FALSE(h.fpga.reprogramming());
  EXPECT_TRUE(h.fpga.app_active());
  offer_packet();
  h.sim.Run();
  EXPECT_EQ(h.fpga.app_ingress_packets(), 1u);
  EXPECT_EQ(h.fpga.processed_in_hardware(), 1u);
}

TEST(ParkPolicyMigrationTest, KeepWarmShiftsAreInstant) {
  // kKeepWarm pays idle watts for instant shifts: no reprogramming window,
  // app active the moment the migrator flips the classifier.
  MigratorHarness h;
  ClassifierMigrator migrator(
      h.sim, h.fpga, ClassifierMigrator::Options::FromPolicy(ParkPolicy::kKeepWarm));
  migrator.ShiftToNetwork();
  EXPECT_FALSE(h.fpga.reprogramming());
  EXPECT_TRUE(h.fpga.app_active());
  // A packet at the shift instant is classified and processed.
  Packet pkt;
  pkt.src = 100;
  pkt.dst = 1;
  pkt.proto = AppProto::kKv;
  pkt.payload = KvRequest{KvOp::kGet, 1, 0};
  h.fpga.Receive(pkt);
  h.sim.Run();
  EXPECT_EQ(h.fpga.processed_in_hardware(), 1u);
  // And the shift back is just as instant (memories stay warm).
  h.lake.WarmFill(0, 10, 64);
  migrator.ShiftToHost();
  EXPECT_FALSE(h.fpga.reprogramming());
  EXPECT_EQ(h.lake.l1().size(), 10u);
}

// ---- Hysteresis dwell under oscillating signals (§9.1) ----

// Migrator that stamps transitions with simulated time.
class TimedFakeMigrator : public Migrator {
 public:
  explicit TimedFakeMigrator(Simulation& sim) : sim_(sim) {}
  void ShiftToNetwork() override { RecordTransition(sim_.Now(), Placement::kNetwork); }
  void ShiftToHost() override { RecordTransition(sim_.Now(), Placement::kHost); }
  std::string MigratorName() const override { return "timed-fake"; }

 private:
  Simulation& sim_;
};

void ExpectDwellRespected(const std::vector<TransitionEvent>& transitions,
                          SimDuration min_dwell) {
  for (size_t i = 1; i < transitions.size(); ++i) {
    EXPECT_GE(transitions[i].at - transitions[i - 1].at, min_dwell)
        << "shift " << i << " violated min_dwell";
  }
}

TEST(NetworkControllerTest, OscillatingRateShiftsAtMostOncePerDwell) {
  // A rate square-wave straddling up_rate_pps (and, once offloaded, the
  // down threshold) tempts the controller to flip every window; min_dwell
  // must cap it at one shift per dwell period.
  NetworkControllerHarness h;
  TimedFakeMigrator migrator(h.sim);
  NetworkControllerConfig config;
  config.up_rate_pps = 100000;
  config.up_window = Milliseconds(200);
  config.down_rate_pps = 90000;  // Narrow band: both thresholds crossable.
  config.down_window = Milliseconds(200);
  config.min_dwell = Seconds(1);
  NetworkController controller(h.sim, h.fpga, migrator, config);
  controller.Start();
  // 250 ms bursts of 150 kpps alternating with 250 ms of ~20 kpps.
  for (int cycle = 0; cycle < 16; ++cycle) {
    const SimTime start = cycle * Milliseconds(500);
    h.sim.ScheduleAt(start, [&h] { h.OfferTraffic(150000, Milliseconds(250)); });
    h.sim.ScheduleAt(start + Milliseconds(250),
                     [&h] { h.OfferTraffic(20000, Milliseconds(250)); });
  }
  h.sim.RunUntil(Seconds(8));
  ASSERT_GE(migrator.transitions().size(), 2u);  // It did oscillate...
  ExpectDwellRespected(migrator.transitions(), config.min_dwell);
  // ...but never faster than one shift per dwell: <= sim_time / dwell + 1.
  EXPECT_LE(migrator.transitions().size(), 9u);
}

TEST(HostControllerTest, OscillatingPowerShiftsAtMostOncePerDwell) {
  HostControllerHarness h;
  TimedFakeMigrator migrator(h.sim);
  HostControllerConfig config;
  config.up_power_watts = 25.0;
  config.up_cpu_usage = -1.0;  // Power-only gate for a clean square wave.
  config.up_window = Milliseconds(200);
  config.down_rate_pps = 1000;  // Device idle: rate condition always true.
  config.down_power_watts = 25.0;
  config.down_window = Milliseconds(200);
  config.min_dwell = Seconds(1);
  HostController controller(h.sim, h.server, AppProto::kKv, h.rapl, h.fpga, migrator,
                            config);
  controller.Start();
  // RAPL square wave straddling the 25 W threshold every 300 ms.
  for (int cycle = 0; cycle < 14; ++cycle) {
    const SimTime start = cycle * Milliseconds(600);
    h.sim.ScheduleAt(start, [&h] { h.server.SetBackgroundUtilization(3.5); });
    h.sim.ScheduleAt(start + Milliseconds(300),
                     [&h] { h.server.SetBackgroundUtilization(0.0); });
  }
  h.sim.RunUntil(Seconds(8));
  ASSERT_GE(migrator.transitions().size(), 2u);
  ExpectDwellRespected(migrator.transitions(), config.min_dwell);
  EXPECT_LE(migrator.transitions().size(), 9u);
}

// ---- Energy advisor ----

TEST(EnergyAdvisorTest, ServerRatePowerSaturates) {
  auto fn = MakeServerRatePower(I7MemcachedCurve(), Microseconds(4), 4);
  EXPECT_DOUBLE_EQ(fn(0), 35.0);
  EXPECT_GT(fn(500000), fn(100000));
  // Beyond saturation (1 Mpps) power stops growing.
  EXPECT_DOUBLE_EQ(fn(2e6), fn(1.1e6));
}

TEST(EnergyAdvisorTest, KvsTippingPointNearPaperValue) {
  // Software: memcached curve + 4 W NIC. Network: host idle + LaKe board.
  auto software = MakeServerRatePower(I7MemcachedCurve(), Microseconds(4), 4);
  auto software_with_nic = [software](double r) { return software(r) + 4.0; };
  auto network = MakeFpgaRatePower(35.0, 24.0, 1.0, 13e6);
  const auto advice = AdvisePlacement(software_with_nic, network, 2e6);
  ASSERT_TRUE(advice.tipping_rate_pps.has_value());
  // Fig 3a: "the crossing point occurring around 80Kpps".
  EXPECT_GT(*advice.tipping_rate_pps, 40000.0);
  EXPECT_LT(*advice.tipping_rate_pps, 140000.0);
}

TEST(EnergyAdvisorTest, SwitchTippingPointNearZero) {
  // §9.4: for a ToR switch already forwarding, Pd_N(R) ~ 0 marginal, so the
  // tipping point is almost zero.
  auto software = MakeServerRatePower(I7LibpaxosCurve(), Microseconds(5600) / 1000, 1);
  auto network = MakeSwitchMarginalPower(0.02, 350.0, 2.5e9);
  const auto advice = AdvisePlacement(software, network, 1e6);
  ASSERT_TRUE(advice.tipping_rate_pps.has_value());
  EXPECT_TRUE(advice.network_always_wins);
}

TEST(EnergyAdvisorTest, NeverWinsReported) {
  auto cheap_software = [](double) { return 10.0; };
  auto network = MakeFpgaRatePower(35.0, 24.0, 1.0, 13e6);
  const auto advice = AdvisePlacement(cheap_software, network, 1e6);
  EXPECT_TRUE(advice.network_never_wins);
  EXPECT_FALSE(advice.tipping_rate_pps.has_value());
}

TEST(EnergyAdvisorTest, PeriodEnergyComposition) {
  auto power = [](double) { return 50.0; };
  // 1e6 packets at 1e5 pps = 10 s busy at 50 W + 20 s idle at 10 W = 700 J.
  EXPECT_NEAR(PeriodEnergyJoules(power, 10.0, 1e6, 1e5, 30.0), 700.0, 1e-9);
  // Zero rate: pure idle.
  EXPECT_NEAR(PeriodEnergyJoules(power, 10.0, 0, 0, 30.0), 300.0, 1e-9);
}

TEST(EnergyAdvisorTest, InvalidArgumentsThrow) {
  EXPECT_THROW(MakeServerRatePower(I7MemcachedCurve(), Microseconds(1), 0),
               std::invalid_argument);
  EXPECT_THROW(MakeFpgaRatePower(35, 24, 1, 0), std::invalid_argument);
  EXPECT_THROW(MakeSwitchMarginalPower(0.02, 350, 0), std::invalid_argument);
}

}  // namespace
}  // namespace incod
