// Tests for the unified App contract: typed state snapshot/restore round
// trips (bit-identical), the AppRegistry placement matrix, cross-placement
// state transfer, and the generic StateTransferMigrator paths.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include <algorithm>

#include "src/app/app.h"
#include "src/app/app_registry.h"
#include "src/app/app_state.h"
#include "src/app/smartnic_app.h"
#include "src/app/switch_app.h"
#include "src/dns/emu_dns.h"
#include "src/dns/nsd_server.h"
#include "src/dns/switch_dns.h"
#include "src/kvs/lake.h"
#include "src/kvs/memcached_server.h"
#include "src/kvs/netcache.h"
#include "src/ondemand/migrator.h"
#include "src/paxos/p4xos.h"
#include "src/paxos/software_roles.h"
#include "src/scenarios/kvs_testbed.h"
#include "src/scenarios/paxos_testbed.h"
#include "src/sim/simulation.h"
#include "src/workload/dns_workload.h"

namespace incod {
namespace {

// A minimal substrate for exercising HandlePacket without any device: the
// narrow AppContext is all an application may depend on.
class FakeContext : public AppContext {
 public:
  explicit FakeContext(Simulation& sim, PlacementKind placement = PlacementKind::kHost,
                       NodeId self = 0)
      : sim_(sim), placement_(placement), self_(self) {}

  Simulation& sim() override { return sim_; }
  PlacementKind placement() const override { return placement_; }
  NodeId self_node() const override { return self_; }
  void Reply(Packet packet) override { replies.push_back(std::move(packet)); }
  void Punt(Packet packet) override { punts.push_back(std::move(packet)); }

  std::vector<Packet> replies;
  std::vector<Packet> punts;

 private:
  Simulation& sim_;
  PlacementKind placement_;
  NodeId self_;
};

void ExpectBitIdentical(const AppState& a, const AppState& b) {
  EXPECT_EQ(SerializeAppState(a), SerializeAppState(b));
}

// ---------------------------------------------------------------- KVS -----

TEST(AppStateTest, MemcachedRoundTripIsBitIdentical) {
  MemcachedServer source;
  for (uint64_t k = 1; k <= 5; ++k) {
    source.store().Set(k, static_cast<uint32_t>(10 * k));
  }
  uint32_t bytes = 0;
  source.store().Get(2, &bytes);  // Touch: LRU order must survive the trip.
  const AppState snap = source.SnapshotState();

  MemcachedServer restored;
  restored.RestoreState(snap);
  ExpectBitIdentical(snap, restored.SnapshotState());
  EXPECT_EQ(restored.store().size(), 5u);
  EXPECT_TRUE(restored.store().Contains(2));
}

TEST(AppStateTest, LakeRoundTripKeepsBothLevels) {
  LakeConfig config;
  config.l1_entries = 8;
  config.l2_entries = 64;
  LakeCache source(config);
  source.WarmFill(0, 32, 100);  // L1 holds 8 hottest, L2 all 32.
  const AppState snap = source.SnapshotState();

  LakeCache restored(config);
  restored.RestoreState(snap);
  ExpectBitIdentical(snap, restored.SnapshotState());
  EXPECT_EQ(restored.l1().size(), source.l1().size());
  EXPECT_EQ(restored.l2()->size(), source.l2()->size());
}

TEST(AppStateTest, NetcacheRoundTrip) {
  KvSwitchCacheConfig config;
  config.kvs_service = 1;
  KvSwitchCache source(config);
  source.cache().Set(10, 64);
  source.cache().Set(11, 32);
  const AppState snap = source.SnapshotState();

  KvSwitchCache restored(config);
  restored.RestoreState(snap);
  ExpectBitIdentical(snap, restored.SnapshotState());
}

TEST(AppStateTest, HostToLakeTransferWarmsTheCache) {
  MemcachedServer host;
  for (uint64_t k = 0; k < 20; ++k) {
    host.store().Set(k, 64);
  }
  LakeConfig config;
  config.l1_entries = 8;
  config.l2_entries = 64;
  LakeCache lake(config);
  EXPECT_EQ(lake.l1().size(), 0u);

  lake.RestoreState(host.SnapshotState());
  // The hottest host entries landed in L1; everything fit L2.
  EXPECT_EQ(lake.l1().size(), 8u);
  EXPECT_EQ(lake.l2()->size(), 20u);
  EXPECT_TRUE(lake.l1().Contains(19));  // Most recent survives L1 eviction.
}

// -------------------------------------------------------------- Paxos -----

TEST(AppStateTest, AcceptorVoteLogRoundTrip) {
  PaxosGroupConfig group;
  group.acceptors = {10, 11, 12};
  group.learners = {30};
  group.leader_service = 200;

  SoftwareAcceptor source(group, /*acceptor_id=*/1);
  for (uint32_t instance = 1; instance <= 4; ++instance) {
    PaxosMessage msg;
    msg.type = PaxosMsgType::kPhase2a;
    msg.instance = instance;
    msg.round = 1;
    msg.value = 100 + instance;
    msg.client = 7;
    source.state().HandleMessage(msg);
  }
  const AppState snap = source.SnapshotState();
  const PaxosAppState& px = std::get<PaxosAppState>(snap.data);
  EXPECT_EQ(px.slots.size(), 4u);
  EXPECT_EQ(px.last_voted_instance, 4u);

  SoftwareAcceptor restored(group, /*acceptor_id=*/1);
  restored.RestoreState(snap);
  ExpectBitIdentical(snap, restored.SnapshotState());
  EXPECT_EQ(restored.state().last_voted_instance(), 4u);
  EXPECT_EQ(restored.state().stored_instances(), 4u);
}

TEST(AppStateTest, LeaderBallotAndSequenceRoundTrip) {
  PaxosGroupConfig group;
  group.acceptors = {10, 11, 12};
  group.learners = {30};
  group.leader_service = 200;

  SoftwareLeader source(group, /*ballot=*/3);
  PaxosMessage request;
  request.type = PaxosMsgType::kClientRequest;
  request.value = 42;
  request.client = 100;
  source.state().HandleMessage(request);  // Advances the sequence.
  EXPECT_EQ(source.state().next_instance(), 2u);
  const AppState snap = source.SnapshotState();

  SoftwareLeader restored(group, /*ballot=*/1);
  restored.RestoreState(snap);
  ExpectBitIdentical(snap, restored.SnapshotState());
  EXPECT_EQ(restored.state().ballot(), 3u);
  EXPECT_EQ(restored.state().next_instance(), 2u);
}

TEST(AppStateTest, SoftwareToHardwareLeaderTransfer) {
  PaxosGroupConfig group;
  group.acceptors = {10, 11, 12};
  group.learners = {30};
  group.leader_service = 200;

  SoftwareLeader software(group, /*ballot=*/1);
  PaxosMessage request;
  request.type = PaxosMsgType::kClientRequest;
  request.value = 7;
  request.client = 100;
  software.state().HandleMessage(request);
  software.state().HandleMessage(request);

  P4xosFpgaApp hardware(P4xosRole::kLeader, group, /*role_id=*/1, 200);
  hardware.RestoreState(software.SnapshotState());
  EXPECT_EQ(hardware.leader()->next_instance(), software.state().next_instance());
  EXPECT_EQ(hardware.leader()->ballot(), software.state().ballot());
}

// ---------------------------------------------------------------- DNS -----

TEST(AppStateTest, DnsZoneWarmthRoundTripAcrossPlacements) {
  Zone zone;
  zone.AddRecord("a.example", 0x01020304, 60);
  zone.AddRecord("b.example", 0x0a0b0c0d, 120);

  NsdServer nsd(&zone);
  const AppState snap = nsd.SnapshotState();

  // Restore into a *different placement* holding an empty zone: the
  // snapshot alone must reproduce the answers.
  Zone empty;
  EmuDns emu(&empty);
  emu.RestoreState(snap);
  ExpectBitIdentical(snap, emu.SnapshotState());

  Simulation sim(1);
  FakeContext ctx(sim, PlacementKind::kFpgaNic, /*self=*/50);
  DnsMessage query;
  query.id = 9;
  query.questions.push_back(DnsQuestion{"b.example", kDnsTypeA, kDnsClassIn});
  Packet pkt;
  pkt.src = 100;
  pkt.dst = 1;
  pkt.proto = AppProto::kDns;
  pkt.payload = query;
  emu.HandlePacket(ctx, std::move(pkt));
  ASSERT_EQ(ctx.replies.size(), 1u);
  const DnsMessage& resp = PayloadAs<DnsMessage>(ctx.replies[0]);
  ASSERT_EQ(resp.answers.size(), 1u);
  EXPECT_EQ(RdataToIpv4(resp.answers.front().rdata), 0x0a0b0c0du);
  EXPECT_EQ(emu.answered(), 1u);

  // And the switch placement restores the same warmth.
  DnsSwitchConfig switch_config;
  switch_config.dns_service = 1;
  Zone empty2;
  DnsSwitchProgram switch_dns(&empty2, switch_config);
  switch_dns.RestoreState(snap);
  ExpectBitIdentical(snap, switch_dns.SnapshotState());
}

// ----------------------------------------------------------- Registry -----

TEST(AppRegistryTest, AllAppsBuildOnAllFourPlacements) {
  Zone zone;
  zone.FillSynthetic(16);
  PaxosGroupConfig group;
  group.acceptors = {10, 11, 12};
  group.learners = {30};
  group.leader_service = 200;

  AppFactoryEnv env;
  env.zone = &zone;
  env.paxos_group = &group;
  env.service = 200;

  const PlacementKind placements[] = {PlacementKind::kHost, PlacementKind::kFpgaNic,
                                      PlacementKind::kSwitchAsic,
                                      PlacementKind::kSmartNic};
  struct Family {
    const char* name;
    AppProto proto;
  };
  const Family families[] = {{"kvs", AppProto::kKv},
                             {"dns", AppProto::kDns},
                             {"paxos-leader", AppProto::kPaxos},
                             {"paxos-acceptor", AppProto::kPaxos}};
  for (const Family& family : families) {
    for (PlacementKind placement : placements) {
      SCOPED_TRACE(std::string(family.name) + " on " + PlacementKindName(placement));
      ASSERT_TRUE(AppRegistry::Global().Supports(family.name, placement));
      auto app = AppRegistry::Global().Create(family.name, placement, env);
      ASSERT_NE(app, nullptr);
      EXPECT_EQ(app->proto(), family.proto);
      EXPECT_TRUE(app->SupportsPlacement(placement));
      if (placement == PlacementKind::kSwitchAsic) {
        // Switch-placement apps are loadable pipeline programs.
        EXPECT_NE(dynamic_cast<SwitchProgram*>(app.get()), nullptr);
      }
      if (placement == PlacementKind::kSmartNic) {
        // SmartNIC-placement apps advertise a usable per-arch datapath.
        auto* hosted = dynamic_cast<SmartNicHostedApp*>(app.get());
        ASSERT_NE(hosted, nullptr);
        const SmartNicPlacementProfile profile = app->OffloadProfile().smartnic;
        for (SmartNicArch arch : {SmartNicArch::kFpga, SmartNicArch::kAsic,
                                  SmartNicArch::kAsicPlusFpga, SmartNicArch::kSoc}) {
          EXPECT_GT(profile.MppsFractionFor(arch), 0.0) << SmartNicArchName(arch);
        }
        EXPECT_GE(profile.resource_slots, 1);
      }
      if (placement == PlacementKind::kHost) {
        EXPECT_GE(app->HostProfile().num_threads, 1);
      }
    }
  }
  // The acceptance matrix: every §10-capable family advertises the SmartNIC
  // placement through Placements().
  for (const char* name : {"kvs", "dns", "paxos-leader", "paxos-acceptor"}) {
    const auto all = AppRegistry::Global().Placements(name);
    EXPECT_NE(std::find(all.begin(), all.end(), PlacementKind::kSmartNic), all.end())
        << name;
  }
}

TEST(AppRegistryTest, UnknownNameAndUnsupportedPlacementThrow) {
  AppFactoryEnv env;
  EXPECT_THROW(AppRegistry::Global().Create("no-such-app", PlacementKind::kHost, env),
               std::invalid_argument);
  EXPECT_FALSE(AppRegistry::Global().Supports("paxos-learner", PlacementKind::kFpgaNic));
  EXPECT_THROW(
      AppRegistry::Global().Create("paxos-learner", PlacementKind::kFpgaNic, env),
      std::invalid_argument);
  // Missing resources are loud, not silent.
  EXPECT_THROW(AppRegistry::Global().Create("dns", PlacementKind::kHost, env),
               std::invalid_argument);
}

// ------------------------------------------- Generic state migration ------

RequestFactory UniformGets(NodeId service, uint64_t keyspace) {
  return [service, keyspace](NodeId src, uint64_t id, SimTime now, Rng& rng) {
    const uint64_t key =
        static_cast<uint64_t>(rng.UniformInt(0, static_cast<int>(keyspace) - 1));
    return MakeKvRequestPacket(src, service, KvRequest{KvOp::kGet, key, 0}, id, now);
  };
}

struct KvsShiftResult {
  uint64_t client_received = 0;
  uint64_t server_completed = 0;
  uint64_t lake_l1_hits = 0;
  uint64_t lake_misses = 0;
  double p50 = 0;
};

// Runs a Fig-6-style shift scenario with the given migrator factory.
template <typename MakeMigrator>
KvsShiftResult RunKvsShift(MakeMigrator make_migrator) {
  Simulation sim(11);
  KvsTestbedOptions options;
  options.mode = KvsMode::kLake;
  options.lake_initially_active = false;
  KvsTestbed testbed(sim, options);
  testbed.Prefill(1000, 64);
  auto migrator = make_migrator(sim, testbed);
  auto& client = testbed.AddClient(LoadClientConfig{},
                                   std::make_unique<ConstantArrival>(200000.0),
                                   UniformGets(testbed.ServiceNode(), 1000));
  client.Start();
  sim.Schedule(Milliseconds(50), [&] { migrator->ShiftToNetwork(); });
  sim.Schedule(Milliseconds(150), [&] { migrator->ShiftToHost(); });
  sim.RunUntil(Milliseconds(200));
  KvsShiftResult result;
  result.client_received = client.received();
  result.server_completed = testbed.server()->requests_completed();
  result.lake_l1_hits = testbed.lake()->l1_hits();
  result.lake_misses = testbed.lake()->misses_to_host();
  result.p50 = client.latency().P50();
  return result;
}

TEST(StateTransferMigratorTest, MatchesClassifierMigratorWhenTransferOff) {
  // Differential check: the generic core configured like the pre-redesign
  // ClassifierMigrator produces identical results.
  const KvsShiftResult classic = RunKvsShift([](Simulation& sim, KvsTestbed& testbed) {
    return std::make_unique<ClassifierMigrator>(
        sim, *testbed.fpga(),
        ClassifierMigrator::Options::FromPolicy(ParkPolicy::kGatedPark));
  });
  const KvsShiftResult generic = RunKvsShift([](Simulation& sim, KvsTestbed& testbed) {
    StateTransferMigrator::Options options =
        StateTransferMigrator::Options::FromPolicy(ParkPolicy::kGatedPark);
    options.transfer_state = false;
    return std::make_unique<StateTransferMigrator>(sim, *testbed.fpga(), options,
                                                   testbed.memcached(), testbed.lake());
  });
  EXPECT_EQ(classic.client_received, generic.client_received);
  EXPECT_EQ(classic.server_completed, generic.server_completed);
  EXPECT_EQ(classic.lake_l1_hits, generic.lake_l1_hits);
  EXPECT_EQ(classic.lake_misses, generic.lake_misses);
  EXPECT_EQ(classic.p50, generic.p50);
}

TEST(StateTransferMigratorTest, TransferWarmsTheIncomingPlacement) {
  // Gated park resets LaKe's memories, so a transfer-less shift starts
  // cold; the generic state transfer starts warm and serves more GETs in
  // hardware.
  const KvsShiftResult cold = RunKvsShift([](Simulation& sim, KvsTestbed& testbed) {
    StateTransferMigrator::Options options =
        StateTransferMigrator::Options::FromPolicy(ParkPolicy::kGatedPark);
    return std::make_unique<StateTransferMigrator>(sim, *testbed.fpga(), options,
                                                   testbed.memcached(), testbed.lake());
  });
  const KvsShiftResult warm = RunKvsShift([](Simulation& sim, KvsTestbed& testbed) {
    StateTransferMigrator::Options options =
        StateTransferMigrator::Options::FromPolicy(ParkPolicy::kGatedPark);
    options.transfer_state = true;
    return std::make_unique<StateTransferMigrator>(sim, *testbed.fpga(), options,
                                                   testbed.memcached(), testbed.lake());
  });
  EXPECT_GT(warm.lake_l1_hits, cold.lake_l1_hits);
  EXPECT_LT(warm.lake_misses, cold.lake_misses);
}

struct DnsShiftResult {
  uint64_t emu_answered = 0;
  uint64_t emu_nxdomain = 0;
  uint64_t client_received = 0;
};

// client --10GE-- NetFPGA(Emu DNS, zone per `device_zone_empty`) --PCIe--
// host (NSD, full zone), shifted to the device mid-run by the migrator the
// factory builds.
template <typename MakeMigrator>
DnsShiftResult RunDnsShift(bool device_zone_empty, MakeMigrator make_migrator) {
  Simulation sim(5);
  TestbedBuilder builder(sim, Milliseconds(1));
  Zone zone;
  zone.FillSynthetic(256);
  Zone empty;

  ServerConfig server_config;
  server_config.name = "dns-host";
  server_config.node = 1;
  NsdServer nsd(&zone);
  Server* server = builder.AddServer(server_config);
  server->BindApp(&nsd);

  FpgaNicConfig fpga_config;
  fpga_config.host_node = 1;
  fpga_config.device_node = 50;
  EmuDns emu(device_zone_empty ? &empty : &zone);
  FpgaNic* fpga = builder.AddFpgaNic(fpga_config, &emu);
  builder.ConnectPcie(fpga, server);
  builder.StartMeter();

  auto migrator = make_migrator(sim, *fpga, nsd, emu);

  DnsWorkloadConfig workload;
  workload.dns_service = 1;
  workload.zone_size = 256;
  LoadClient* client = builder.AddLoadClient(
      LoadClientConfig{}, std::make_unique<ConstantArrival>(50000.0),
      MakeDnsRequestFactory(workload));
  builder.ConnectClient(client, fpga);
  client->Start();
  sim.Schedule(Milliseconds(20), [&] { migrator->ShiftToNetwork(); });
  sim.RunUntil(Milliseconds(60));
  return DnsShiftResult{emu.answered(), emu.nxdomain(), client->received()};
}

TEST(StateTransferMigratorTest, AbortedReprogramShiftDoesNotWipeHostState) {
  // kReprogram + transfer_state: shifting back while the bitstream is still
  // loading means the offload app never activated — its initial (empty)
  // state must not be transferred over the host's live store.
  Simulation sim(3);
  KvsTestbedOptions options;
  options.mode = KvsMode::kLake;
  options.lake_initially_active = false;
  KvsTestbed testbed(sim, options);
  testbed.Prefill(1000, 64);

  StateTransferMigrator::Options migrate_options =
      StateTransferMigrator::Options::FromPolicy(ParkPolicy::kReprogram);
  migrate_options.transfer_state = true;
  StateTransferMigrator migrator(sim, *testbed.fpga(), migrate_options,
                                 testbed.memcached(), testbed.lake());
  sim.Schedule(Milliseconds(10), [&] { migrator.ShiftToNetwork(); });
  // Back before the 40 ms reprogram halt elapses.
  sim.Schedule(Milliseconds(20), [&] { migrator.ShiftToHost(); });
  sim.RunUntil(Milliseconds(100));
  EXPECT_EQ(testbed.memcached()->store().size(), 1000u);
}

TEST(StateTransferMigratorTest, DnsShiftTransfersZoneWarmth) {
  // The generic state transfer must carry the host's zone into the device
  // on ShiftToNetwork; without it the empty device answers NXDOMAIN.
  auto make = [](bool transfer_state) {
    return [transfer_state](Simulation& sim, FpgaNic& fpga, NsdServer& nsd,
                            EmuDns& emu) {
      StateTransferMigrator::Options options =
          StateTransferMigrator::Options::FromPolicy(ParkPolicy::kKeepWarm);
      options.transfer_state = transfer_state;
      return std::make_unique<StateTransferMigrator>(sim, fpga, options, &nsd, &emu);
    };
  };
  const DnsShiftResult cold = RunDnsShift(/*device_zone_empty=*/true, make(false));
  const DnsShiftResult warm = RunDnsShift(/*device_zone_empty=*/true, make(true));
  EXPECT_EQ(cold.emu_answered, 0u);
  EXPECT_GT(cold.emu_nxdomain, 0u);
  EXPECT_GT(warm.emu_answered, 500u);
  EXPECT_EQ(warm.emu_nxdomain, 0u);
}

TEST(StateTransferMigratorTest, DnsGenericCoreMatchesClassifierMigrator) {
  // Differential: with the transfer disabled and a shared zone (the
  // pre-redesign wiring), the generic core and ClassifierMigrator produce
  // identical results.
  const DnsShiftResult classic = RunDnsShift(
      /*device_zone_empty=*/false,
      [](Simulation& sim, FpgaNic& fpga, NsdServer&, EmuDns&) {
        return std::make_unique<ClassifierMigrator>(
            sim, fpga, ClassifierMigrator::Options::FromPolicy(ParkPolicy::kGatedPark));
      });
  const DnsShiftResult generic = RunDnsShift(
      /*device_zone_empty=*/false,
      [](Simulation& sim, FpgaNic& fpga, NsdServer& nsd, EmuDns& emu) {
        StateTransferMigrator::Options options =
            StateTransferMigrator::Options::FromPolicy(ParkPolicy::kGatedPark);
        return std::make_unique<StateTransferMigrator>(sim, fpga, options, &nsd, &emu);
      });
  EXPECT_GT(classic.emu_answered, 0u);
  EXPECT_EQ(classic.emu_answered, generic.emu_answered);
  EXPECT_EQ(classic.emu_nxdomain, generic.emu_nxdomain);
  EXPECT_EQ(classic.client_received, generic.client_received);
}

TEST(StateTransferMigratorTest, PaxosLeaderGenericPathSkipsTheLearningGap) {
  Simulation sim(1);
  PaxosTestbedOptions options;
  options.deployment = PaxosDeployment::kP4xosFpga;
  options.dual_leader = true;
  options.client.requests_per_second = 10000;
  PaxosTestbed testbed(sim, options);

  PaxosLeaderMigrator::Options migrator_options;
  migrator_options.transfer_state = true;  // Generic state-transfer path.
  PaxosLeaderMigrator migrator(sim, testbed.net_switch(), kPaxosLeaderService,
                               *testbed.software_leader(), testbed.leader_port(),
                               *testbed.sut_fpga(), *testbed.fpga_leader(),
                               testbed.leader_port(), migrator_options);
  testbed.client().Start();
  uint32_t software_sequence_at_shift = 0;
  sim.Schedule(Seconds(1), [&] {
    software_sequence_at_shift = testbed.software_leader()->state().next_instance();
    migrator.ShiftToNetwork();
    // Ballot continuity and sequence carried over: no Reset-to-1, no
    // passive learning phase.
    EXPECT_EQ(testbed.fpga_leader()->leader()->ballot(), migrator.current_ballot());
    EXPECT_EQ(testbed.fpga_leader()->leader()->next_instance(),
              software_sequence_at_shift);
    EXPECT_FALSE(testbed.fpga_leader()->leader()->awaiting_sequence());
  });
  sim.RunUntil(Seconds(2));

  EXPECT_EQ(migrator.state_transfers(), 1u);
  EXPECT_GT(software_sequence_at_shift, 1u);
  // No Fig-7 gap: the hardware leader proposed without sequence jumps.
  EXPECT_EQ(testbed.fpga_leader()->leader()->sequence_jumps(), 0u);
  EXPECT_GT(testbed.fpga_leader()->messages_handled(), 0u);
  const double completed = static_cast<double>(testbed.client().completed());
  const double sent = static_cast<double>(testbed.client().sent());
  EXPECT_GT(completed / sent, 0.99);
}

// --------------------------------------------------- DNS pool basics ------

TEST(DnsPoolTest, PooledVecCopyMoveAndReuse) {
  PooledVec<DnsQuestion> a;
  for (int i = 0; i < 10; ++i) {  // Forces growth through capacity classes.
    a.push_back(DnsQuestion{"name" + std::to_string(i), kDnsTypeA, kDnsClassIn});
  }
  ASSERT_EQ(a.size(), 10u);
  PooledVec<DnsQuestion> b = a;  // Deep copy.
  a.clear();
  ASSERT_EQ(b.size(), 10u);
  EXPECT_EQ(b[3].name, "name3");
  PooledVec<DnsQuestion> c = std::move(b);
  EXPECT_EQ(c.back().name, "name9");
  // Destroyed buffers are recycled: churn many messages and stay correct.
  for (int round = 0; round < 100; ++round) {
    DnsMessage msg;
    msg.questions.push_back(DnsQuestion{"q.example", kDnsTypeA, kDnsClassIn});
    DnsResourceRecord rr;
    rr.name = "q.example";
    rr.rdata = Ipv4ToRdata(0x7f000001);
    msg.answers.push_back(std::move(rr));
    DnsMessage copy = msg;
    ASSERT_EQ(copy.answers.size(), 1u);
    ASSERT_EQ(RdataToIpv4(copy.answers.front().rdata), 0x7f000001u);
  }
}

TEST(DnsPoolTest, RdataRejectsOversizedAssign) {
  std::vector<uint8_t> big(DnsRdata::kCapacity + 1, 0xab);
  DnsRdata rdata;
  EXPECT_FALSE(rdata.assign(big.begin(), big.end()));
  EXPECT_TRUE(rdata.empty());
  std::vector<uint8_t> four{1, 2, 3, 4};
  EXPECT_TRUE(rdata.assign(four.begin(), four.end()));
  EXPECT_EQ(rdata.size(), 4u);
}

}  // namespace
}  // namespace incod
