// Tests for the rack-scale orchestration layer: the shared power ledger,
// greedy placement across heterogeneous OffloadTargets, and the mixed
// KVS+DNS rack scenario (FPGA NIC + switch ASIC under one orchestrator).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "src/app/smartnic_app.h"
#include "src/kvs/lake.h"
#include "src/kvs/memcached_server.h"
#include "src/ondemand/energy_advisor.h"
#include "src/ondemand/rack.h"
#include "src/scenarios/paxos_testbed.h"
#include "src/scenarios/rack_scenario.h"
#include "src/scenarios/scenario_spec.h"
#include "src/scenarios/trace_rack.h"
#include "src/sim/simulation.h"
#include "src/workload/arrival.h"
#include "src/workload/etc_workload.h"
#include "src/workload/dns_workload.h"

namespace incod {
namespace {

// ---- Shared power ledger ----

TEST(RackPowerLedgerTest, CommitReleaseAccounting) {
  RackPowerLedger ledger(100.0);
  EXPECT_TRUE(ledger.TryCommit("a", 40.0));
  EXPECT_TRUE(ledger.TryCommit("b", 50.0));
  EXPECT_DOUBLE_EQ(ledger.committed_watts(), 90.0);
  EXPECT_DOUBLE_EQ(ledger.RemainingWatts(), 10.0);
  // Over budget: rejected, state unchanged.
  EXPECT_FALSE(ledger.TryCommit("c", 20.0));
  EXPECT_DOUBLE_EQ(ledger.committed_watts(), 90.0);
  ledger.Release("a");
  EXPECT_DOUBLE_EQ(ledger.committed_watts(), 50.0);
  EXPECT_TRUE(ledger.TryCommit("c", 20.0));
}

TEST(RackPowerLedgerTest, RecommitReplacesNotAdds) {
  RackPowerLedger ledger(100.0);
  EXPECT_TRUE(ledger.TryCommit("a", 60.0));
  // Re-commit under the same key replaces the prior value: 80 fits because
  // the old 60 is released in the same operation.
  EXPECT_TRUE(ledger.TryCommit("a", 80.0));
  EXPECT_DOUBLE_EQ(ledger.committed_watts(), 80.0);
  EXPECT_FALSE(ledger.TryCommit("a", 120.0));
  EXPECT_DOUBLE_EQ(ledger.committed_watts(), 80.0);  // Prior intact.
}

TEST(RackPowerLedgerTest, UnlimitedBudget) {
  RackPowerLedger ledger(0);
  EXPECT_TRUE(ledger.unlimited());
  EXPECT_TRUE(ledger.TryCommit("a", 1e9));
  EXPECT_TRUE(std::isinf(ledger.RemainingWatts()));
}

TEST(RackPowerLedgerTest, NegativeCommitThrows) {
  RackPowerLedger ledger(10.0);
  EXPECT_THROW(ledger.TryCommit("a", -1.0), std::invalid_argument);
}

// ---- Orchestrator decisions against fake targets ----

class FakeTarget : public OffloadTarget {
 public:
  explicit FakeTarget(std::string name, double capacity = 1e6)
      : name_(std::move(name)), capacity_(capacity) {}

  std::string TargetName() const override { return name_; }
  void SetAppActive(bool active) override { active_ = active; }
  bool app_active() const override { return active_; }
  double AppIngressRatePerSecond() const override { return rate_; }
  uint64_t app_ingress_packets() const override { return 0; }
  double ProcessedRatePerSecond() const override { return active_ ? rate_ : 0; }
  double OffloadPowerWatts() const override { return 0; }
  double OffloadCapacityPps() const override { return capacity_; }

  void set_rate(double rate) { rate_ = rate; }

 private:
  std::string name_;
  double capacity_;
  double rate_ = 0;
  bool active_ = false;
};

// Placement shifts go through the real generic core (classifier flip on the
// fake target; no bound apps, so no state moves) — the orchestrator only
// ever drives StateTransferMigrators.
class FakeMigrator : public StateTransferMigrator {
 public:
  FakeMigrator(Simulation& sim, FakeTarget& target)
      : StateTransferMigrator(sim, target,
                              Options::FromPolicy(ParkPolicy::kKeepWarm)) {}
};

struct OrchestratorHarness {
  OrchestratorHarness()
      : cheap("cheap-asic"), pricey("pricey-fpga"),
        cheap_migrator(sim, cheap), pricey_migrator(sim, pricey) {}

  // Absolute-scale models (host included on both sides, like the real
  // scenario): software idles at 35 W and climbs with rate; the targets
  // hold flat 65 W / 45 W, i.e. 30 W / 10 W of offload headroom.
  RackAppSpec AppWithBothOptions(double rate) {
    rate_value = rate;
    RackAppSpec spec;
    spec.name = "app";
    spec.software_watts = [](double r) { return 35.0 + r / 5000.0; };
    spec.measured_rate_pps = [this] { return rate_value; };
    spec.options.push_back(RackPlacementOption{
        &pricey, &pricey_migrator, [](double) { return 65.0; }, ParkPolicy::kGatedPark});
    spec.options.push_back(RackPlacementOption{
        &cheap, &cheap_migrator, [](double) { return 45.0; }, ParkPolicy::kKeepWarm});
    return spec;
  }

  Simulation sim;
  FakeTarget cheap;
  FakeTarget pricey;
  FakeMigrator cheap_migrator;
  FakeMigrator pricey_migrator;
  double rate_value = 0;
};

TEST(RackOrchestratorTest, GreedyPicksCheapestEligibleTarget) {
  OrchestratorHarness h;
  RackOrchestrator orchestrator(h.sim, RackOrchestratorConfig{});
  const size_t app = orchestrator.AddApp(h.AppWithBothOptions(200000));
  orchestrator.Start();
  h.sim.RunUntil(Seconds(1));
  ASSERT_NE(orchestrator.current_option(app), nullptr);
  EXPECT_EQ(orchestrator.current_option(app)->target, &h.cheap);
  EXPECT_EQ(orchestrator.ShiftsToTarget(h.cheap), 1u);
  EXPECT_EQ(orchestrator.ShiftsToTarget(h.pricey), 0u);
  EXPECT_TRUE(h.cheap.app_active());
}

TEST(RackOrchestratorTest, CapacityExhaustionFallsBackToNextTarget) {
  OrchestratorHarness h;
  // The cheap target can only absorb 50 kpps; the app runs at 200 kpps.
  FakeTarget tiny("tiny-asic", 50000);
  FakeMigrator tiny_migrator(h.sim, tiny);
  RackAppSpec spec = h.AppWithBothOptions(200000);
  spec.options[1] = RackPlacementOption{&tiny, &tiny_migrator,
                                        [](double) { return 45.0; },
                                        ParkPolicy::kKeepWarm};
  RackOrchestrator orchestrator(h.sim, RackOrchestratorConfig{});
  const size_t app = orchestrator.AddApp(std::move(spec));
  orchestrator.Start();
  h.sim.RunUntil(Seconds(1));
  ASSERT_NE(orchestrator.current_option(app), nullptr);
  EXPECT_EQ(orchestrator.current_option(app)->target, &h.pricey);
}

TEST(RackOrchestratorTest, SharedBudgetBlocksSecondApp) {
  OrchestratorHarness h;
  RackOrchestratorConfig config;
  // Each placement consumes 45 - 35 = 10 W of headroom: room for one only.
  config.power_budget_watts = 15.0;
  RackOrchestrator orchestrator(h.sim, config);

  FakeTarget other("other-asic");
  FakeMigrator other_migrator(h.sim, other);
  RackAppSpec first = h.AppWithBothOptions(200000);
  first.name = "first";
  first.options.erase(first.options.begin());  // Cheap option only.
  RackAppSpec second;
  second.name = "second";
  second.software_watts = [](double r) { return 35.0 + r / 5000.0; };
  second.measured_rate_pps = [] { return 200000.0; };
  second.options.push_back(RackPlacementOption{
      &other, &other_migrator, [](double) { return 45.0; }, ParkPolicy::kKeepWarm});
  const size_t a = orchestrator.AddApp(std::move(first));
  const size_t b = orchestrator.AddApp(std::move(second));
  orchestrator.Start();
  h.sim.RunUntil(Seconds(1));
  // First-registered app won the headroom; the second stays home.
  EXPECT_NE(orchestrator.current_option(a), nullptr);
  EXPECT_EQ(orchestrator.current_option(b), nullptr);
  EXPECT_LE(orchestrator.ledger().committed_watts(),
            orchestrator.ledger().budget_watts());
}

TEST(RackOrchestratorTest, LedgerCommitsOffloadHeadroomNotAbsoluteWatts) {
  OrchestratorHarness h;
  RackOrchestratorConfig config;
  config.min_dwell = Milliseconds(200);
  RackOrchestrator orchestrator(h.sim, config);
  const size_t app = orchestrator.AddApp(h.AppWithBothOptions(200000));
  orchestrator.Start();
  h.sim.RunUntil(Seconds(1));
  ASSERT_NE(orchestrator.current_option(app), nullptr);
  // The ledger holds the increment over software idle (45 - 35 = 10 W),
  // not the 45 W absolute placement power — host idle draws either way.
  EXPECT_DOUBLE_EQ(orchestrator.ledger().committed_watts(), 10.0);
  // A milder rate (60 kpps -> software 47 W) still loses to the 45 W
  // placement within the margin: the app stays put, commitment unchanged.
  h.rate_value = 60000;
  h.sim.RunUntil(Seconds(2));
  EXPECT_NE(orchestrator.current_option(app), nullptr);
  EXPECT_DOUBLE_EQ(orchestrator.ledger().committed_watts(), 10.0);
}

TEST(RackOrchestratorTest, ReturnsHomeWhenNetworkStopsPaying) {
  Simulation sim;
  FakeTarget target("fpga");
  FakeMigrator migrator(sim, target);
  double rate = 300000;
  RackAppSpec spec;
  spec.name = "app";
  spec.software_watts = [](double r) { return 35.0 + r / 10000.0; };  // 65 W @300k.
  spec.measured_rate_pps = [&rate] { return rate; };
  spec.options.push_back(RackPlacementOption{
      &target, &migrator, [](double) { return 45.0; }, ParkPolicy::kKeepWarm});
  RackOrchestratorConfig config;
  config.min_dwell = Milliseconds(200);
  RackOrchestrator orchestrator(sim, config);
  const size_t app = orchestrator.AddApp(std::move(spec));
  orchestrator.Start();
  sim.RunUntil(Seconds(1));
  ASSERT_NE(orchestrator.current_option(app), nullptr);
  rate = 0;  // Software now 35 W vs 45 W network: shift home.
  sim.RunUntil(Seconds(2));
  EXPECT_EQ(orchestrator.current_option(app), nullptr);
  EXPECT_FALSE(target.app_active());
  EXPECT_DOUBLE_EQ(orchestrator.ledger().committed_watts(), 0.0);
  EXPECT_EQ(orchestrator.total_shifts(), 2u);
}

TEST(RackOrchestratorTest, RejectsIncompleteSpecs) {
  Simulation sim;
  RackOrchestrator orchestrator(sim);
  RackAppSpec spec;
  spec.name = "bad";
  EXPECT_THROW(orchestrator.AddApp(spec), std::invalid_argument);
}

TEST(RackOrchestratorTest, RejectsDuplicateOrEmptyAppNames) {
  OrchestratorHarness h;
  RackOrchestrator orchestrator(h.sim);
  orchestrator.AddApp(h.AppWithBothOptions(100000));  // name "app"
  RackAppSpec duplicate = h.AppWithBothOptions(100000);
  EXPECT_THROW(orchestrator.AddApp(std::move(duplicate)), std::invalid_argument);
  RackAppSpec unnamed = h.AppWithBothOptions(100000);
  unnamed.name.clear();
  EXPECT_THROW(orchestrator.AddApp(std::move(unnamed)), std::invalid_argument);
}

TEST(RackOrchestratorTest, MigratesToCheaperTargetWhenCapacityFrees) {
  // App A fills the cheap target; app B settles for the pricey one. When
  // A's load collapses enough to fit both, B must migrate over to keep the
  // greedy cheapest-eligible-target invariant.
  Simulation sim;
  FakeTarget cheap("cheap-asic", 250000);
  FakeTarget pricey("pricey-fpga");
  FakeMigrator cheap_a(sim, cheap), cheap_b(sim, cheap), pricey_b(sim, pricey);
  double rate_a = 200000, rate_b = 100000;

  RackAppSpec a;
  a.name = "a";
  a.software_watts = [](double r) { return 35.0 + r / 5000.0; };
  a.measured_rate_pps = [&rate_a] { return rate_a; };
  a.options.push_back(RackPlacementOption{&cheap, &cheap_a, [](double) { return 45.0; },
                                          ParkPolicy::kKeepWarm});
  RackAppSpec b;
  b.name = "b";
  b.software_watts = [](double r) { return 35.0 + r / 5000.0; };
  b.measured_rate_pps = [&rate_b] { return rate_b; };
  b.options.push_back(RackPlacementOption{&cheap, &cheap_b, [](double) { return 45.0; },
                                          ParkPolicy::kKeepWarm});
  b.options.push_back(RackPlacementOption{&pricey, &pricey_b, [](double) { return 50.0; },
                                          ParkPolicy::kKeepWarm});

  RackOrchestratorConfig config;
  config.min_dwell = Milliseconds(200);
  RackOrchestrator orchestrator(sim, config);
  const size_t app_a = orchestrator.AddApp(std::move(a));
  const size_t app_b = orchestrator.AddApp(std::move(b));
  orchestrator.Start();
  sim.RunUntil(Seconds(1));
  ASSERT_NE(orchestrator.current_option(app_a), nullptr);
  ASSERT_NE(orchestrator.current_option(app_b), nullptr);
  EXPECT_EQ(orchestrator.current_option(app_a)->target, &cheap);
  EXPECT_EQ(orchestrator.current_option(app_b)->target, &pricey);

  rate_a = 50000;  // 50k + 100k now fit the cheap target's 250k.
  sim.RunUntil(Seconds(2));
  EXPECT_EQ(orchestrator.current_option(app_b)->target, &cheap);
  EXPECT_FALSE(pricey.app_active());
  // Ledger reflects the two real placements, without phantom entries.
  EXPECT_EQ(orchestrator.ledger().commitments().size(), 2u);
  EXPECT_DOUBLE_EQ(orchestrator.ledger().committed_watts(), 20.0);
}

// ---- Crash recovery units: detection, re-placement, power caps ----

RackOrchestratorConfig RecoveryConfig() {
  RackOrchestratorConfig config;
  config.heartbeat_period = Milliseconds(2);
  config.failure_threshold = 2;
  // Economics passes out of the way: recovery is the only mover.
  config.check_period = Seconds(10);
  config.checkpoint_period = Milliseconds(1);
  return config;
}

TEST(RackRecoveryTest, HeartbeatDetectsDeathAndReplacesOnSurvivor) {
  OrchestratorHarness h;
  RackOrchestrator orchestrator(h.sim, RecoveryConfig());
  const size_t app = orchestrator.AddApp(h.AppWithBothOptions(200000));
  orchestrator.Start();
  orchestrator.ForcePlacement(app, 1);  // The cheap target.
  ASSERT_EQ(orchestrator.current_option(app)->target, &h.cheap);

  const SimTime kill_at = Milliseconds(10);
  h.sim.Schedule(kill_at, [&h] { h.cheap.KillEngine(); });
  h.sim.RunUntil(Milliseconds(30));

  EXPECT_EQ(orchestrator.failures_detected(), 1u);
  EXPECT_EQ(orchestrator.recoveries(), 1u);
  ASSERT_NE(orchestrator.current_option(app), nullptr);
  EXPECT_EQ(orchestrator.current_option(app)->target, &h.pricey);
  EXPECT_TRUE(h.pricey.app_active());
  // Detection latency is bounded by threshold consecutive missed heartbeats.
  SimTime detected_at = -1;
  bool saw_recovery = false;
  for (const RackDecisionRecord& record : orchestrator.decision_log()) {
    if (record.kind == RackDecisionRecord::Kind::kFailure) {
      detected_at = record.at;
      EXPECT_EQ(record.target, h.cheap.TargetName());
    }
    if (record.kind == RackDecisionRecord::Kind::kRecovery) {
      saw_recovery = true;
      EXPECT_EQ(record.app, "app");
      EXPECT_EQ(record.target, h.pricey.TargetName());
      // The fake migrator carries no typed state, so no checkpoint existed
      // and the restore is cold.
      EXPECT_FALSE(record.warm);
    }
  }
  ASSERT_GE(detected_at, kill_at);
  EXPECT_LE(detected_at, kill_at + 3 * Milliseconds(2));
  EXPECT_TRUE(saw_recovery);
  EXPECT_EQ(orchestrator.checkpoints_taken(), 0u);  // Nothing to snapshot.
  EXPECT_FALSE(orchestrator.has_checkpoint(app));
  // The replacement placement is a real ledger commitment.
  EXPECT_EQ(orchestrator.ledger().commitments().size(), 1u);
}

TEST(RackRecoveryTest, RecoveryFallsBackToHostWithoutSurvivor) {
  OrchestratorHarness h;
  RackOrchestrator orchestrator(h.sim, RecoveryConfig());
  RackAppSpec spec = h.AppWithBothOptions(200000);
  spec.options.pop_back();  // Pricey is the only option.
  const size_t app = orchestrator.AddApp(std::move(spec));
  orchestrator.Start();
  orchestrator.ForcePlacement(app, 0);
  h.sim.Schedule(Milliseconds(10), [&h] { h.pricey.KillEngine(); });
  h.sim.RunUntil(Milliseconds(30));

  EXPECT_EQ(orchestrator.failures_detected(), 1u);
  EXPECT_EQ(orchestrator.recoveries(), 1u);
  EXPECT_EQ(orchestrator.current_option(app), nullptr);  // Home.
  EXPECT_TRUE(orchestrator.ledger().commitments().empty());
  bool saw_recovery = false;
  for (const RackDecisionRecord& record : orchestrator.decision_log()) {
    if (record.kind == RackDecisionRecord::Kind::kRecovery) {
      saw_recovery = true;
      EXPECT_TRUE(record.target.empty());
    }
  }
  EXPECT_TRUE(saw_recovery);
}

// Regression: before the reachability channel, a flapping heartbeat path
// was indistinguishable from dead silicon — the detector fired a spurious
// failure + recovery and abandoned a perfectly healthy placement.
TEST(RackRecoveryTest, LinkFlapDoesNotTriggerRecovery) {
  OrchestratorHarness h;
  RackOrchestrator orchestrator(h.sim, RecoveryConfig());
  const size_t app = orchestrator.AddApp(h.AppWithBothOptions(200000));
  bool reachable = true;
  orchestrator.SetHeartbeatReachability(&h.cheap, [&reachable] { return reachable; });
  orchestrator.Start();
  orchestrator.ForcePlacement(app, 1);  // The cheap target.

  // Flap 1 heals inside the failure window (threshold 2 x 2 ms): invisible.
  h.sim.Schedule(Milliseconds(10), [&reachable] { reachable = false; });
  h.sim.Schedule(Milliseconds(11), [&reachable] { reachable = true; });
  // Flap 2 outlasts the window many times over, device alive throughout.
  h.sim.Schedule(Milliseconds(20), [&reachable] { reachable = false; });
  h.sim.Schedule(Milliseconds(40), [&reachable] { reachable = true; });
  h.sim.RunUntil(Milliseconds(60));

  // Neither flap is a death: no failure, no recovery, placement intact.
  EXPECT_EQ(orchestrator.failures_detected(), 0u);
  EXPECT_EQ(orchestrator.recoveries(), 0u);
  ASSERT_NE(orchestrator.current_option(app), nullptr);
  EXPECT_EQ(orchestrator.current_option(app)->target, &h.cheap);
  // Only the long flap crossed the threshold, logged once per streak.
  EXPECT_EQ(orchestrator.flap_suppressions(), 1u);
  uint64_t flap_records = 0;
  for (const RackDecisionRecord& record : orchestrator.decision_log()) {
    if (record.kind == RackDecisionRecord::Kind::kFlapSuppressed) {
      ++flap_records;
      EXPECT_EQ(record.target, h.cheap.TargetName());
    }
  }
  EXPECT_EQ(flap_records, 1u);

  // A real death behind a flap is still caught: misses keep accruing while
  // the path is down, and the moment it answers with dead silicon the
  // detector declares the failure and recovery replaces onto the survivor.
  // (Absolute times: the clock already sits at 60 ms here.)
  h.sim.ScheduleAt(Milliseconds(70), [&reachable] { reachable = false; });
  h.sim.ScheduleAt(Milliseconds(72), [&h] { h.cheap.KillEngine(); });
  h.sim.ScheduleAt(Milliseconds(80), [&reachable] { reachable = true; });
  h.sim.RunUntil(Milliseconds(100));
  EXPECT_EQ(orchestrator.failures_detected(), 1u);
  EXPECT_EQ(orchestrator.recoveries(), 1u);
  ASSERT_NE(orchestrator.current_option(app), nullptr);
  EXPECT_EQ(orchestrator.current_option(app)->target, &h.pricey);
}

TEST(RackRecoveryTest, PowerCapEvictsLargestCommitmentsFirst) {
  OrchestratorHarness h;
  FakeMigrator pricey_b(h.sim, h.pricey);
  RackOrchestratorConfig config = RecoveryConfig();
  config.power_budget_watts = 100.0;
  RackOrchestrator orchestrator(h.sim, config);
  // App a on the cheap target commits 10 W of headroom (45 - 35); app b on
  // the pricey one commits 30 W (65 - 35).
  const size_t app_a = orchestrator.AddApp(h.AppWithBothOptions(200000));
  RackAppSpec b;
  b.name = "b";
  b.software_watts = [](double r) { return 35.0 + r / 5000.0; };
  b.measured_rate_pps = [] { return 100000.0; };
  b.options.push_back(RackPlacementOption{&h.pricey, &pricey_b,
                                          [](double) { return 65.0; },
                                          ParkPolicy::kKeepWarm});
  const size_t app_b = orchestrator.AddApp(std::move(b));
  orchestrator.Start();
  orchestrator.ForcePlacement(app_a, 1);
  orchestrator.ForcePlacement(app_b, 0);
  EXPECT_DOUBLE_EQ(orchestrator.ledger().committed_watts(), 40.0);

  // Brownout to 15 W: the 30 W commitment (app b) must go; 10 W still fits.
  orchestrator.ApplyPowerCap(15.0);
  EXPECT_DOUBLE_EQ(orchestrator.ledger().budget_watts(), 15.0);
  EXPECT_DOUBLE_EQ(orchestrator.ledger().committed_watts(), 10.0);
  EXPECT_EQ(orchestrator.current_option(app_b), nullptr);
  ASSERT_NE(orchestrator.current_option(app_a), nullptr);

  // Brownout below everything: the rack runs entirely in software.
  orchestrator.ApplyPowerCap(5.0);
  EXPECT_DOUBLE_EQ(orchestrator.ledger().committed_watts(), 0.0);
  EXPECT_EQ(orchestrator.current_option(app_a), nullptr);
  // Recovery restores the cap's headroom accounting, not the placements:
  // raising the cap back does not re-place by itself (the next economics
  // pass does), but the ledger must accept new commitments again.
  orchestrator.ApplyPowerCap(100.0);
  orchestrator.ForcePlacement(app_a, 1);
  EXPECT_DOUBLE_EQ(orchestrator.ledger().committed_watts(), 10.0);
}

TEST(RackRecoveryTest, ForcePlacementRespectsLedgerAndLogsShift) {
  OrchestratorHarness h;
  RackOrchestratorConfig config = RecoveryConfig();
  config.power_budget_watts = 15.0;  // Fits cheap (10 W), not pricey (30 W).
  RackOrchestrator orchestrator(h.sim, config);
  const size_t app = orchestrator.AddApp(h.AppWithBothOptions(200000));
  orchestrator.Start();
  orchestrator.ForcePlacement(app, 1);
  EXPECT_EQ(orchestrator.total_shifts(), 1u);
  EXPECT_EQ(orchestrator.ShiftsToTarget(h.cheap), 1u);
  // Re-forcing the current placement is a no-op, not a second shift.
  orchestrator.ForcePlacement(app, 1);
  EXPECT_EQ(orchestrator.total_shifts(), 1u);
  // The pricey option cannot fit the 15 W budget.
  EXPECT_THROW(orchestrator.ForcePlacement(app, 0), std::logic_error);
}

// ---- Warm vs cold orchestrator shifts (the generic state-transfer path) ----

// Differential: an orchestrator-driven warm KVS shift carries the host
// store's contents into LaKe's caches, so post-shift lookups hit in
// hardware; the cold shift (the paper's behaviour) starts empty and misses
// to the host until egress observation re-warms the caches.
TEST(RackWarmMigrationTest, WarmShiftPreservesKvsCacheContents) {
  struct Result {
    bool offloaded = false;
    uint64_t misses_after_shift = 0;
    uint64_t state_transfers = 0;
    uint64_t warm_shifts = 0;
    size_t l2_size_at_shift = 0;
  };
  auto run = [](bool warm) {
    Simulation sim(/*seed=*/7);
    MixedRackOptions options;
    options.enable_paxos = false;
    options.warm.kvs = warm;
    options.orchestrator.min_dwell = Milliseconds(200);
    MixedRackScenario rack(sim, options);
    // Warm only the authoritative host store: whatever LaKe holds after the
    // shift came through the migrator (or post-shift traffic).
    constexpr uint64_t kKeys = 5000;
    for (uint64_t k = 0; k < kKeys; ++k) {
      rack.memcached().store().Set(k, 64);
    }

    EtcWorkloadConfig etc_config;
    etc_config.kvs_service = kRackKvsServerNode;
    etc_config.key_population = kKeys;
    EtcWorkload etc(etc_config);
    LoadClient& client = rack.AddKvsClient(
        LoadClientConfig{}, std::make_unique<PoissonArrival>(400000.0),
        etc.MakeFactory());

    Result result;
    uint64_t misses_at_shift = 0;
    SchedulePeriodic(sim, Milliseconds(10), Milliseconds(10), [&] {
      if (!result.offloaded &&
          rack.kvs_migrator().placement() == Placement::kNetwork) {
        result.offloaded = true;
        result.l2_size_at_shift = rack.lake().l2()->size();
        misses_at_shift = rack.lake().misses_to_host();
      }
      return sim.Now() < Seconds(1);
    });

    rack.orchestrator().Start();
    client.Start();
    sim.RunUntil(Seconds(1));
    result.misses_after_shift = rack.lake().misses_to_host() - misses_at_shift;
    result.state_transfers = rack.kvs_migrator().state_transfers();
    result.warm_shifts = rack.orchestrator().warm_shifts();
    return result;
  };

  const Result warm = run(true);
  const Result cold = run(false);
  ASSERT_TRUE(warm.offloaded);
  ASSERT_TRUE(cold.offloaded);
  // The warm shift moved the typed snapshot; the cold shift moved nothing.
  EXPECT_GE(warm.state_transfers, 1u);
  EXPECT_EQ(cold.state_transfers, 0u);
  EXPECT_GE(warm.warm_shifts, 1u);
  EXPECT_EQ(cold.warm_shifts, 0u);
  // Cache contents survived the warm shift: L2 already holds the store at
  // the flip, and post-shift traffic hits in hardware instead of punting.
  EXPECT_EQ(warm.l2_size_at_shift, 5000u);
  EXPECT_EQ(cold.l2_size_at_shift, 0u);
  EXPECT_EQ(warm.misses_after_shift, 0u);
  EXPECT_GT(cold.misses_after_shift, 500u);
}

// Acceptance for the §10 placement seam: a rack built declaratively from a
// ScenarioSpec hosts the registry KVS on a SmartNIC, and an
// orchestrator-driven warm shift host->SmartNIC carries the store contents
// into the board's caches — zero post-shift misses, against the cold
// differential (the paper's behaviour: every post-shift lookup punts).
TEST(RackWarmMigrationTest, ScenarioSpecRackWarmShiftsKvsOntoSmartNic) {
  struct Result {
    bool offloaded = false;
    uint64_t misses_after_shift = 0;
    uint64_t state_transfers = 0;
    uint64_t warm_shifts = 0;
    size_t l2_size_at_shift = 0;
    uint64_t served_in_hardware = 0;
  };
  auto run = [](bool warm) {
    Simulation sim(/*seed=*/21);
    constexpr NodeId kHostNode = 1;
    constexpr NodeId kBoardNode = 50;
    constexpr NodeId kClientNode = 100;

    ScenarioSpec spec;
    spec.name = "smartnic-rack";
    spec.host.present = false;
    spec.target.kind = ScenarioTargetKind::kNone;
    spec.tor.present = true;
    ScenarioMemberSpec member;
    member.name = "kvs";
    member.host.config.name = "kvs-host";
    member.host.config.node = kHostNode;
    member.host.apps = {"kvs"};
    member.target.kind = ScenarioTargetKind::kSmartNic;
    member.target.name = "kvs-smartnic";
    member.target.smartnic_preset = "accelnet-fpga";
    member.target.device_node = kBoardNode;
    member.target.app = "kvs";
    member.target.initially_active = false;  // Migrator parks the placement.
    member.switch_routes = {kHostNode, kBoardNode};
    spec.members.push_back(std::move(member));

    ScenarioTestbed testbed(sim, std::move(spec));
    ScenarioMember& built = testbed.member("kvs");
    auto* hosted = dynamic_cast<SmartNicHostedApp*>(built.offload_app.get());
    if (built.smartnic == nullptr || hosted == nullptr) {
      throw std::logic_error("spec did not build a SmartNIC-hosted kvs");
    }
    auto* lake = hosted->inner_as<LakeCache>();
    auto* memcached = dynamic_cast<MemcachedServer*>(built.host_apps.front().get());
    if (lake == nullptr || memcached == nullptr) {
      throw std::logic_error("unexpected concrete app types");
    }

    // Warm only the authoritative host store: whatever the board holds
    // after the shift came through the migrator (or post-shift traffic).
    constexpr uint64_t kKeys = 5000;
    for (uint64_t k = 0; k < kKeys; ++k) {
      memcached->store().Set(k, 64);
    }

    StateTransferMigrator migrator(
        sim, *built.smartnic,
        StateTransferMigrator::Options::FromPolicy(ParkPolicy::kGatedPark),
        memcached, built.offload_app.get());

    RackOrchestratorConfig config;
    config.min_dwell = Milliseconds(200);
    RackOrchestrator orchestrator(sim, config);
    RackAppSpec rack_app;
    rack_app.name = "kvs";
    rack_app.warm_migration = warm;
    rack_app.software_watts = [](double r) { return 35.0 + r / 5000.0; };
    SmartNic* board = built.smartnic;
    rack_app.measured_rate_pps = [board] { return board->AppIngressRatePerSecond(); };
    // The advisor models the same firmware ceiling the board enforces: the
    // app's per-arch Mpps fraction on this preset's architecture.
    const double app_fraction =
        hosted->OffloadProfile().smartnic.MppsFractionFor(board->preset().arch);
    rack_app.options.push_back(RackPlacementOption{
        board, &migrator,
        MakeSmartNicRatePower(/*host_idle_watts=*/35.0, board->preset(), app_fraction),
        ParkPolicy::kGatedPark});
    orchestrator.AddApp(std::move(rack_app));

    EtcWorkloadConfig etc_config;
    etc_config.kvs_service = kHostNode;
    etc_config.key_population = kKeys;
    EtcWorkload etc(etc_config);
    LoadClientConfig client_config;
    client_config.node = kClientNode;
    LoadClient& client = testbed.AddTorClient(
        std::move(client_config), std::make_unique<PoissonArrival>(400000.0),
        etc.MakeFactory());

    Result result;
    uint64_t misses_at_shift = 0;
    SchedulePeriodic(sim, Milliseconds(10), Milliseconds(10), [&] {
      if (!result.offloaded && migrator.placement() == Placement::kNetwork) {
        result.offloaded = true;
        result.l2_size_at_shift = lake->l2()->size();
        misses_at_shift = lake->misses_to_host();
      }
      return sim.Now() < Seconds(1);
    });

    orchestrator.Start();
    client.Start();
    sim.RunUntil(Seconds(1));
    result.misses_after_shift = lake->misses_to_host() - misses_at_shift;
    result.state_transfers = migrator.state_transfers();
    result.warm_shifts = orchestrator.warm_shifts();
    result.served_in_hardware = built.smartnic->processed_in_hardware();
    return result;
  };

  const Result warm = run(true);
  const Result cold = run(false);
  ASSERT_TRUE(warm.offloaded);
  ASSERT_TRUE(cold.offloaded);
  EXPECT_GE(warm.state_transfers, 1u);
  EXPECT_EQ(cold.state_transfers, 0u);
  EXPECT_GE(warm.warm_shifts, 1u);
  EXPECT_EQ(cold.warm_shifts, 0u);
  // The typed snapshot arrived with the flip: the board's L2 already holds
  // the store, and no post-shift lookup ever punts to the host.
  EXPECT_EQ(warm.l2_size_at_shift, 5000u);
  EXPECT_EQ(cold.l2_size_at_shift, 0u);
  EXPECT_EQ(warm.misses_after_shift, 0u);
  EXPECT_GT(cold.misses_after_shift, 500u);
  EXPECT_GT(warm.served_in_hardware, 0u);
}

// Differential: an orchestrator-driven warm Paxos leader shift carries
// ballot + sequence through the typed snapshot, so the incoming hardware
// leader continues without re-learning; the cold shift resets to sequence 1
// and spends ~a client timeout recovering (Fig 7's gap).
TEST(RackWarmMigrationTest, WarmShiftPreservesPaxosBallotAndSequence) {
  struct Result {
    bool offloaded = false;
    uint64_t client_retries = 0;
    uint64_t hw_sequence_jumps = 0;
    uint64_t state_transfers = 0;
    uint16_t hw_ballot = 0;
    uint32_t hw_next_instance = 0;
    uint32_t sw_next_instance_at_shift = 0;
  };
  auto run = [](bool warm) {
    Simulation sim(/*seed=*/9);
    PaxosTestbedOptions options;
    options.deployment = PaxosDeployment::kP4xosFpga;
    options.dual_leader = true;
    options.client.requests_per_second = 10000;
    options.client.retry_timeout = Milliseconds(100);
    PaxosTestbed testbed(sim, options);

    PaxosLeaderMigrator migrator(sim, testbed.net_switch(), kPaxosLeaderService,
                                 *testbed.software_leader(), testbed.leader_port(),
                                 *testbed.sut_fpga(), *testbed.fpga_leader(),
                                 testbed.leader_port());

    // Orchestrator decision: the host placement is made expensive so the
    // leader shifts into the P4xos NIC through the generic core; the
    // per-app policy decides whether state rides along.
    RackOrchestratorConfig config;
    config.min_dwell = Milliseconds(200);
    RackOrchestrator orchestrator(sim, config);
    RackAppSpec spec;
    spec.name = "paxos";
    spec.warm_migration = warm;
    spec.software_watts = [](double) { return 100.0; };
    FpgaNic* fpga = testbed.sut_fpga();
    spec.measured_rate_pps = [fpga] { return fpga->AppIngressRatePerSecond(); };
    spec.options.push_back(RackPlacementOption{
        fpga, &migrator, [](double) { return 50.0; }, ParkPolicy::kKeepWarm});
    orchestrator.AddApp(std::move(spec));

    Result result;
    SchedulePeriodic(sim, Milliseconds(10), Milliseconds(10), [&] {
      if (!result.offloaded && migrator.placement() == Placement::kNetwork) {
        result.offloaded = true;
        result.sw_next_instance_at_shift =
            testbed.software_leader()->state().next_instance();
      }
      return sim.Now() < Seconds(2);
    });

    testbed.client().Start();
    orchestrator.Start();
    sim.RunUntil(Seconds(2));
    result.client_retries = testbed.client().retries();
    result.hw_sequence_jumps = testbed.fpga_leader()->leader()->sequence_jumps();
    result.state_transfers = migrator.state_transfers();
    result.hw_ballot = testbed.fpga_leader()->leader()->ballot();
    result.hw_next_instance = testbed.fpga_leader()->leader()->next_instance();
    return result;
  };

  const Result warm = run(true);
  const Result cold = run(false);
  ASSERT_TRUE(warm.offloaded);
  ASSERT_TRUE(cold.offloaded);
  EXPECT_GE(warm.state_transfers, 1u);
  EXPECT_EQ(cold.state_transfers, 0u);
  // Sequence continuity: the warm hardware leader took over at (or past)
  // the software leader's position without re-learning; the cold one reset
  // and had to jump when the acceptors taught it the real sequence.
  EXPECT_EQ(warm.hw_sequence_jumps, 0u);
  EXPECT_GE(cold.hw_sequence_jumps, 1u);
  EXPECT_GE(warm.hw_next_instance, warm.sw_next_instance_at_shift);
  // Ballot monotonicity holds on both paths (a new leader never reuses an
  // old ballot).
  EXPECT_GT(warm.hw_ballot, 1u);
  EXPECT_GT(cold.hw_ballot, 1u);
  // No service gap on the warm path; the cold path burned client retries.
  EXPECT_EQ(warm.client_retries, 0u);
  EXPECT_GT(cold.client_retries, 0u);
}

// The trace-driven rack: registry-name-only apps under the orchestrator,
// with the Google-trace background load driving the placement decisions.
TEST(TraceRackScenarioTest, TraceLoadDrivesGenericWarmShifts) {
  Simulation sim(/*seed=*/13);
  TraceRackOptions options;
  options.sim_horizon = Seconds(2);
  options.trace.num_tasks = 400;
  options.orchestrator.min_dwell = Milliseconds(300);
  TraceRackScenario rack(sim, options);
  ASSERT_EQ(rack.app_count(), 2u);
  for (size_t i = 0; i < rack.app_count(); ++i) {
    rack.migrator(i);  // Generic core only; apps are plain incod::App.
    EXPECT_NE(rack.host_app(i), nullptr);
    EXPECT_NE(rack.offload_app(i), nullptr);
  }
  rack.Start();
  sim.RunUntil(Seconds(2));
  // The compressed 24 h trace kept the hosts busy enough that at least one
  // app was pushed into the network at some point.
  EXPECT_GT(rack.orchestrator().total_shifts(), 0u);
  for (size_t i = 0; i < rack.app_count(); ++i) {
    EXPECT_GT(rack.client(i).received(), 0u);
  }
  EXPECT_GT(rack.trace_tasks().size(), 0u);
}

// ---- Acceptance: one rack, FPGA NIC + switch ASIC, shared ledger ----

TEST(MixedRackScenarioTest, TwoTargetKindsUnderOneOrchestrator) {
  Simulation sim(/*seed=*/5);
  MixedRackOptions options;
  options.power_budget_watts = 150.0;
  options.enable_paxos = false;  // KVS (FPGA NIC) + DNS (switch ASIC).
  options.orchestrator.min_dwell = Milliseconds(500);
  MixedRackScenario rack(sim, options);
  rack.PrefillKvs(20000, 64);

  // KVS: quiet, surge at 1 s, quiet again at 4 s.
  EtcWorkloadConfig etc_config;
  etc_config.kvs_service = kRackKvsServerNode;
  etc_config.key_population = 20000;
  EtcWorkload etc(etc_config);
  auto kvs_arrival = std::make_unique<PoissonArrival>(15000.0);
  PoissonArrival* kvs_knob = kvs_arrival.get();
  LoadClient& kvs_client =
      rack.AddKvsClient(LoadClientConfig{}, std::move(kvs_arrival), etc.MakeFactory());
  sim.Schedule(Seconds(1), [&] { kvs_knob->SetRate(400000.0); });
  sim.Schedule(Seconds(4), [&] { kvs_knob->SetRate(5000.0); });

  // DNS: steady 250 kqps — the ToR program wins immediately (§9.4).
  DnsWorkloadConfig dns_config;
  dns_config.dns_service = kRackDnsServerNode;
  LoadClient& dns_client = rack.AddDnsClient(
      LoadClientConfig{}, std::make_unique<PoissonArrival>(250000.0),
      MakeDnsRequestFactory(dns_config));

  rack.orchestrator().Start();
  kvs_client.Start();
  dns_client.Start();
  sim.RunUntil(Seconds(3));

  // Mid-run: both apps offloaded, each on its own kind of target, and the
  // shared ledger holds exactly their two commitments within budget.
  const auto* kvs_option = rack.orchestrator().current_option(rack.kvs_app_index());
  const auto* dns_option = rack.orchestrator().current_option(rack.dns_app_index());
  ASSERT_NE(kvs_option, nullptr);
  ASSERT_NE(dns_option, nullptr);
  EXPECT_EQ(kvs_option->target, &rack.kvs_fpga());
  EXPECT_EQ(dns_option->target, &rack.dns_target());
  EXPECT_EQ(rack.orchestrator().ledger().commitments().size(), 2u);
  double sum = 0;
  for (const auto& [key, watts] : rack.orchestrator().ledger().commitments()) {
    EXPECT_TRUE(key == "kvs" || key == "dns") << key;
    EXPECT_GT(watts, 0.0);
    sum += watts;
  }
  EXPECT_DOUBLE_EQ(rack.orchestrator().ledger().committed_watts(), sum);
  EXPECT_LE(sum, options.power_budget_watts);

  // Both data paths really served in the network.
  EXPECT_GT(rack.kvs_fpga().processed_in_hardware(), 0u);
  EXPECT_GT(rack.dns_program().answered(), 0u);
  EXPECT_TRUE(rack.tor().LoadedPrograms().size() == 1u);

  // Night: the KVS comes home and releases its budget; DNS stays in the ToR
  // (its marginal watts keep beating the NSD server at any rate).
  sim.RunUntil(Seconds(7));
  EXPECT_EQ(rack.orchestrator().current_option(rack.kvs_app_index()), nullptr);
  EXPECT_NE(rack.orchestrator().current_option(rack.dns_app_index()), nullptr);
  EXPECT_EQ(rack.orchestrator().ledger().commitments().size(), 1u);
  EXPECT_EQ(rack.orchestrator().ledger().commitments().count("dns"), 1u);

  // Per-target shift counts: one shift onto each target kind.
  EXPECT_EQ(rack.orchestrator().ShiftsToTarget(rack.kvs_fpga()), 1u);
  EXPECT_EQ(rack.orchestrator().ShiftsToTarget(rack.dns_target()), 1u);
  EXPECT_EQ(rack.orchestrator().total_shifts(), 3u);  // kvs up+down, dns up.

  // Migrator transition logs agree with the orchestrator's accounting.
  EXPECT_EQ(rack.kvs_migrator().transitions().size(), 2u);
  EXPECT_EQ(rack.dns_migrator().transitions().size(), 1u);

  // Sanity: clients were actually served throughout.
  EXPECT_GT(kvs_client.received(), 0u);
  EXPECT_GT(dns_client.received(), 0u);
  EXPECT_LT(kvs_client.LossFraction(), 0.05);

  // The rack timeseries recorded the whole run.
  EXPECT_GT(rack.orchestrator().committed_watts_series().size(), 10u);
  EXPECT_GT(rack.orchestrator().committed_watts_series().MaxValue(), 0.0);
}

TEST(MixedRackScenarioTest, PaxosLeaderRegistersThirdApp) {
  Simulation sim(/*seed=*/6);
  MixedRackOptions options;
  options.enable_paxos = true;
  options.paxos_client.requests_per_second = 20000;
  MixedRackScenario rack(sim, options);
  EXPECT_EQ(rack.orchestrator().app_count(), 3u);
  ASSERT_NE(rack.paxos_migrator(), nullptr);
  // Drive a little consensus traffic end to end (software leader serves).
  rack.paxos_client()->Start();
  sim.RunUntil(Milliseconds(500));
  EXPECT_GT(rack.paxos_client()->completed(), 0u);
  // The same migrator interface shifts the leader into the P4xos NIC.
  rack.paxos_migrator()->ShiftToNetwork();
  sim.RunUntil(Seconds(2));
  EXPECT_EQ(rack.paxos_migrator()->placement(), Placement::kNetwork);
  EXPECT_TRUE(rack.paxos_fpga()->app_active());
  EXPECT_GT(rack.paxos_fpga()->processed_in_hardware(), 0u);
}

}  // namespace
}  // namespace incod
