// Cross-cutting property and robustness (fuzz) tests: conservation laws,
// monotonicity invariants, and never-crash guarantees under random inputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/incod.h"

namespace incod {
namespace {

// ---- Link conservation: sent == delivered + dropped + in-queue ----

class LinkConservationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LinkConservationTest, PacketsAreConserved) {
  Simulation sim(GetParam());
  Rng rng = sim.rng().Fork();
  struct Collector : PacketSink {
    void Receive(Packet) override { ++count; }
    std::string SinkName() const override { return "sink"; }
    uint64_t count = 0;
  } a, b;
  Link::Config config;
  config.gigabits_per_second = 0.1;  // Slow: guarantees queueing and drops.
  config.queue_capacity_packets = 16;
  Link link(sim, config);
  link.Connect(&a, &b);
  uint64_t sent_to_b = 0;
  uint64_t sent_to_a = 0;
  for (int i = 0; i < 2000; ++i) {
    Packet pkt;
    pkt.size_bytes = static_cast<uint32_t>(rng.UniformInt(64, 1500));
    sim.Schedule(rng.UniformInt(0, Milliseconds(5)), [&, pkt] {
      if (rng.Bernoulli(0.5)) {
        link.Send(&a, pkt);
        ++sent_to_b;
      } else {
        link.Send(&b, pkt);
        ++sent_to_a;
      }
    });
  }
  sim.Run();
  EXPECT_EQ(sent_to_b, b.count + link.dropped(&b));
  EXPECT_EQ(sent_to_a, a.count + link.dropped(&a));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinkConservationTest, ::testing::Values(1u, 2u, 3u));

// ---- Switch conservation under random rules and traffic ----

TEST(SwitchFuzzTest, RandomRulesAndTrafficConserve) {
  Simulation sim(9);
  Rng rng = sim.rng().Fork();
  Topology topo(sim);
  L2Switch sw(sim, "fuzz");
  struct Collector : PacketSink {
    void Receive(Packet) override { ++count; }
    std::string SinkName() const override { return "sink"; }
    uint64_t count = 0;
  } sinks[4];
  Link* links[4];
  for (int i = 0; i < 4; ++i) {
    links[i] = topo.ConnectToSwitch(&sw, &sinks[i], static_cast<NodeId>(i + 1));
  }
  for (int i = 0; i < 50; ++i) {
    L2Switch::ForwardingRule rule;
    rule.proto = static_cast<AppProto>(rng.UniformInt(0, 4));
    if (rng.Bernoulli(0.5)) {
      rule.match_dst = static_cast<NodeId>(rng.UniformInt(1, 8));
    }
    rule.out_port = static_cast<int>(rng.UniformInt(0, 3));
    rule.priority = static_cast<int>(rng.UniformInt(0, 5));
    if (rng.Bernoulli(0.3)) {
      rule.rewrite_dst = static_cast<NodeId>(rng.UniformInt(1, 4));
    }
    sw.InstallRule(rule);
  }
  const uint64_t offered = 5000;
  for (uint64_t i = 0; i < offered; ++i) {
    Packet pkt;
    pkt.src = 100;
    pkt.dst = static_cast<NodeId>(rng.UniformInt(1, 8));  // Some unroutable.
    pkt.proto = static_cast<AppProto>(rng.UniformInt(0, 4));
    sw.Receive(pkt);
  }
  sim.Run();
  uint64_t delivered = 0;
  uint64_t link_drops = 0;
  for (int i = 0; i < 4; ++i) {
    delivered += sinks[i].count;
    link_drops += links[i]->dropped(&sinks[i]);
  }
  EXPECT_EQ(sw.forwarded() + sw.dropped_no_route(), offered);
  EXPECT_EQ(delivered + link_drops, sw.forwarded());
}

// ---- DNS decoder never crashes on arbitrary bytes ----

class DnsFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DnsFuzzTest, RandomBytesNeverCrash) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<uint8_t> bytes(static_cast<size_t>(rng.UniformInt(0, 120)));
    for (auto& b : bytes) {
      b = static_cast<uint8_t>(rng.UniformInt(0, 255));
    }
    // Must not crash/hang; decode may or may not succeed.
    const auto decoded = DecodeDnsMessage(bytes);
    if (decoded.has_value()) {
      // Whatever decoded must re-encode without throwing, unless it holds
      // invalid names (the decoder is by design more permissive about
      // label characters than the encoder is about structure).
      bool valid = true;
      for (const auto& q : decoded->questions) {
        valid = valid && IsValidDnsName(q.name);
      }
      for (const auto& a : decoded->answers) {
        valid = valid && IsValidDnsName(a.name);
      }
      if (valid) {
        EXPECT_NO_THROW(EncodeDnsMessage(*decoded));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DnsFuzzTest, ::testing::Values(11u, 22u, 33u));

// ---- Mutated valid messages never crash the decoder ----

TEST(DnsFuzzTest, BitFlippedMessagesNeverCrash) {
  Rng rng(44);
  DnsMessage query;
  query.id = 7;
  query.questions.push_back(DnsQuestion{"www.fuzz.example", kDnsTypeA, kDnsClassIn});
  const auto wire = EncodeDnsMessage(query);
  for (int iter = 0; iter < 5000; ++iter) {
    auto mutated = wire;
    const int flips = static_cast<int>(rng.UniformInt(1, 4));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
      mutated[pos] ^= static_cast<uint8_t>(1u << rng.UniformInt(0, 7));
    }
    (void)DecodeDnsMessage(mutated);  // Must not crash.
  }
}

// ---- Histogram percentiles vs an exact reference ----

class HistogramReferenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HistogramReferenceTest, QuantilesTrackExactValues) {
  Rng rng(GetParam());
  Histogram histogram;
  std::vector<uint64_t> exact;
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform values spanning 1ns .. ~1s, like latencies.
    const double log_value = rng.UniformDouble(0, 9);
    const uint64_t value = static_cast<uint64_t>(std::pow(10.0, log_value)) + 1;
    histogram.Record(value);
    exact.push_back(value);
  }
  std::sort(exact.begin(), exact.end());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    const uint64_t ref = exact[static_cast<size_t>(q * (exact.size() - 1))];
    const uint64_t est = histogram.ValueAtQuantile(q);
    const double rel = std::abs(static_cast<double>(est) - static_cast<double>(ref)) /
                       static_cast<double>(ref);
    EXPECT_LT(rel, 0.05) << "q=" << q << " ref=" << ref << " est=" << est;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramReferenceTest, ::testing::Values(5u, 6u, 7u));

// ---- Paxos acceptor invariants under random message streams ----

TEST(AcceptorInvariantTest, RoundsAndSequenceAreMonotone) {
  Rng rng(77);
  PaxosGroupConfig group;
  group.acceptors = {10, 11, 12};
  group.learners = {30};
  group.leader_service = 200;
  AcceptorState acceptor(group, 0);
  uint32_t last_voted_before = 0;
  for (int i = 0; i < 5000; ++i) {
    PaxosMessage msg;
    msg.type = rng.Bernoulli(0.5) ? PaxosMsgType::kPhase1a : PaxosMsgType::kPhase2a;
    msg.instance = static_cast<uint32_t>(rng.UniformInt(1, 50));
    msg.round = static_cast<uint16_t>(rng.UniformInt(1, 10));
    msg.value = static_cast<PaxosValue>(rng.UniformInt(1, 1000));
    const auto out = acceptor.HandleMessage(msg);
    // last_voted_instance is monotone non-decreasing.
    EXPECT_GE(acceptor.last_voted_instance(), last_voted_before);
    last_voted_before = acceptor.last_voted_instance();
    // Any phase-2b output must carry the message's round and value.
    for (const auto& o : out) {
      if (o.msg.type == PaxosMsgType::kPhase2b) {
        EXPECT_EQ(o.msg.round, msg.round);
        EXPECT_EQ(o.msg.value, msg.value);
      }
    }
  }
}

TEST(LearnerInvariantTest, DeliveredCountNeverExceedsInstances) {
  Rng rng(88);
  PaxosGroupConfig group;
  group.acceptors = {10, 11, 12};
  group.learners = {30};
  group.leader_service = 200;
  LearnerState learner(group);
  for (int i = 0; i < 10000; ++i) {
    PaxosMessage vote;
    vote.type = PaxosMsgType::kPhase2b;
    vote.instance = static_cast<uint32_t>(rng.UniformInt(1, 30));
    vote.round = static_cast<uint16_t>(rng.UniformInt(1, 4));
    vote.value = static_cast<PaxosValue>(rng.UniformInt(1, 5));
    vote.sender_id = static_cast<uint32_t>(rng.UniformInt(0, 2));
    vote.client = 100;
    learner.HandleMessage(vote, 0);
  }
  // At most one delivery per instance.
  EXPECT_LE(learner.delivered_count(), 30u);
  EXPECT_LE(learner.highest_contiguous(), learner.highest_seen());
}

// ---- Energy model: tipping point is monotone in hardware base power ----

TEST(TippingMonotonicityTest, CheaperHardwareTipsEarlier) {
  auto software = MakeServerRatePower(I7MemcachedCurve(), Microseconds(4), 4);
  auto with_nic = [&](double r) { return software(r) + 4.0; };
  double previous = 0;
  for (double board_watts : {10.0, 16.0, 22.0, 28.0}) {
    const auto advice = AdvisePlacement(
        with_nic, MakeFpgaRatePower(35.0, board_watts, 1.0, 13e6), 2e6);
    ASSERT_TRUE(advice.tipping_rate_pps.has_value()) << board_watts;
    EXPECT_GE(*advice.tipping_rate_pps, previous);
    previous = *advice.tipping_rate_pps;
  }
}

// ---- Simulation determinism across identical runs ----

TEST(DeterminismTest, IdenticalSeedsIdenticalResults) {
  auto run = [] {
    Simulation sim(123);
    KvsTestbedOptions options;
    options.mode = KvsMode::kLake;
    KvsTestbed testbed(sim, options);
    testbed.Prefill(500, 64);
    auto& client = testbed.AddClient(
        LoadClientConfig{}, std::make_unique<PoissonArrival>(150000.0),
        [](NodeId src, uint64_t id, SimTime now, Rng& rng) {
          const uint64_t key = static_cast<uint64_t>(rng.UniformInt(0, 499));
          return MakeKvRequestPacket(src, kTestbedServerNode,
                                     KvRequest{KvOp::kGet, key, 0}, id, now);
        });
    client.Start();
    sim.RunUntil(Milliseconds(100));
    return std::make_tuple(client.received(), client.latency().P99(),
                           testbed.meter().EnergyJoules(), sim.events_executed());
  };
  EXPECT_EQ(run(), run());
}

// ---- 4-substrate rack under randomized shift schedules ----
//
// Property: whatever shift schedule the orchestrator ends up executing on a
// host/FPGA/SmartNIC/switch rack, (a) the shared power ledger never exceeds
// the PDU budget at any sample point, and (b) the aggregate counters
// (total_shifts, warm_shifts, reprogram_deferrals, per-target shifts)
// reconcile exactly with the decision log — the audit trail cannot drift
// from the numbers the tests and benches gate on.

class RackShiftScheduleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RackShiftScheduleTest, LedgerStaysWithinBudgetAndCountersReconcile) {
  Simulation sim(GetParam());
  Rng rng = sim.rng().Fork();
  constexpr double kBudgetWatts = 40.0;

  // The three offload substrates, alive but untrafficked: decisions are
  // driven by randomized measured rates, not packets.
  FpgaNicConfig fpga_config;
  fpga_config.name = "prop-netfpga";
  FpgaNic fpga(sim, fpga_config);
  LakeCache fpga_lake;
  fpga.InstallApp(&fpga_lake);

  SmartNicDeviceConfig smartnic_config;
  smartnic_config.name = "prop-smartnic";
  SmartNic smartnic(sim, SmartNicPresetByName("accelnet-fpga"), smartnic_config);
  AppFactoryEnv env;
  auto smartnic_app =
      AppRegistry::Global().Create("kvs", PlacementKind::kSmartNic, env);
  smartnic.InstallApp(smartnic_app.get());

  SwitchAsic asic(sim, SwitchAsicConfig{});
  KvSwitchCacheConfig cache_config;
  cache_config.kvs_service = 1;
  KvSwitchCache switch_program(cache_config);
  SwitchOffloadTarget switch_target(asic, switch_program, AppProto::kKv);

  // One migrator per (app, target); the FPGA options park by reprogramming
  // so mid-reconfiguration decision windows produce deferrals.
  RackOrchestratorConfig config;
  config.power_budget_watts = kBudgetWatts;
  config.check_period = Milliseconds(20);
  config.min_dwell = Milliseconds(10);
  RackOrchestrator orchestrator(sim, config);

  constexpr size_t kApps = 3;
  std::vector<double> rates(kApps, 0.0);
  std::vector<std::unique_ptr<StateTransferMigrator>> migrators;
  for (size_t i = 0; i < kApps; ++i) {
    RackAppSpec spec;
    spec.name = "app" + std::to_string(i);
    spec.warm_migration = rng.Bernoulli(0.5);
    spec.software_watts = [](double r) { return 35.0 + r / 5000.0; };
    spec.measured_rate_pps = [&rates, i] { return rates[i]; };
    auto add_option = [&](OffloadTarget& target, RatePowerFn watts,
                          ParkPolicy policy) {
      migrators.push_back(std::make_unique<StateTransferMigrator>(
          sim, target, StateTransferMigrator::Options::FromPolicy(policy)));
      spec.options.push_back(
          RackPlacementOption{&target, migrators.back().get(), std::move(watts),
                              policy});
    };
    // App 0's firmware fits a leaner FPGA build, making the reprogram-parked
    // board its cheapest option — the reconfiguration halts that produce
    // deferral records are part of every schedule.
    add_option(fpga, MakeFpgaRatePower(35.0, i == 0 ? 12.0 : 24.0, 1.0, 13e6),
               ParkPolicy::kReprogram);
    add_option(smartnic,
               MakeSmartNicRatePower(35.0, smartnic.preset(),
                                     smartnic_app->OffloadProfile()
                                         .smartnic.MppsFractionFor(
                                             smartnic.preset().arch)),
               ParkPolicy::kGatedPark);
    auto switch_marginal = MakeSwitchMarginalPower(0.02, 350.0, 2.5e9);
    add_option(switch_target,
               [switch_marginal](double r) { return 35.0 + 18.0 + switch_marginal(r); },
               ParkPolicy::kKeepWarm);
    orchestrator.AddApp(std::move(spec));
  }

  // Randomized shift schedule: every app's rate jumps at random times.
  for (size_t i = 0; i < kApps; ++i) {
    SimTime at = 0;
    while (at < Seconds(3)) {
      at += rng.UniformInt(Milliseconds(30), Milliseconds(150));
      const double rate = rng.Bernoulli(0.3)
                              ? 0.0
                              : static_cast<double>(rng.UniformInt(0, 600000));
      sim.Schedule(at, [&rates, i, rate] { rates[i] = rate; });
    }
  }

  // Budget invariant, checked densely along the run.
  size_t samples = 0;
  SchedulePeriodic(sim, Milliseconds(5), Milliseconds(5), [&] {
    EXPECT_LE(orchestrator.ledger().committed_watts(), kBudgetWatts + 1e-9);
    ++samples;
    return sim.Now() < Seconds(3);
  });

  orchestrator.Start();
  sim.RunUntil(Seconds(3) + Milliseconds(200));
  EXPECT_GT(samples, 500u);

  // Counter <-> decision-log reconciliation.
  uint64_t shifts = 0;
  uint64_t warm = 0;
  uint64_t deferrals = 0;
  std::map<std::string, uint64_t> shifts_by_target;
  for (const RackDecisionRecord& record : orchestrator.decision_log()) {
    switch (record.kind) {
      case RackDecisionRecord::Kind::kShift:
        ++shifts;
        ++shifts_by_target[record.target];
        if (record.warm) ++warm;
        break;
      case RackDecisionRecord::Kind::kShiftHome:
        ++shifts;
        if (record.warm) ++warm;
        break;
      case RackDecisionRecord::Kind::kDeferral:
        ++deferrals;
        break;
      default:
        break;  // No detector in this schedule: no failure/flap records.
    }
  }
  EXPECT_GT(orchestrator.total_shifts(), 0u);  // The schedule actually shifted.
  EXPECT_GT(orchestrator.reprogram_deferrals(), 0u);  // ... and deferred.
  EXPECT_EQ(orchestrator.total_shifts(), shifts);
  EXPECT_EQ(orchestrator.warm_shifts(), warm);
  EXPECT_EQ(orchestrator.reprogram_deferrals(), deferrals);
  for (const OffloadTarget* target :
       {static_cast<const OffloadTarget*>(&fpga),
        static_cast<const OffloadTarget*>(&smartnic),
        static_cast<const OffloadTarget*>(&switch_target)}) {
    EXPECT_EQ(orchestrator.ShiftsToTarget(*target),
              shifts_by_target[target->TargetName()])
        << target->TargetName();
  }
  // Ledger commitments only ever belong to currently offloaded apps.
  size_t offloaded = 0;
  for (size_t i = 0; i < orchestrator.app_count(); ++i) {
    if (orchestrator.current_option(i) != nullptr) {
      ++offloaded;
      EXPECT_EQ(orchestrator.ledger().commitments().count(orchestrator.app_name(i)),
                1u);
    }
  }
  EXPECT_EQ(orchestrator.ledger().commitments().size(), offloaded);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RackShiftScheduleTest,
                         ::testing::Values(17u, 29u, 43u));

// ---- Mixed rack under randomized fault schedules ----
//
// Property: whatever deterministic fault plan MakeRandomFaultPlan draws —
// device deaths, link flaps, PSU brownout cap steps — (a) the shared power
// ledger never exceeds the *currently active* cap at any sample point
// (brownouts shrink it mid-run), and (b) the fault injector's counters
// reconcile exactly with its fault log, and the orchestrator's
// failure/recovery/shift counters reconcile exactly with the decision log.

class RackFaultScheduleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RackFaultScheduleTest, LedgerRespectsCapsAndFaultCountersReconcile) {
  Simulation sim(GetParam());
  Rng rng = sim.rng().Fork();
  constexpr double kBudgetWatts = 40.0;

  MixedRackOptions options;
  options.power_budget_watts = kBudgetWatts;
  options.kvs_switch_placement = true;  // A surviving landing spot.
  options.orchestrator.heartbeat_period = Milliseconds(2);
  options.orchestrator.check_period = Milliseconds(20);
  options.orchestrator.min_dwell = Milliseconds(10);
  options.kvs_checkpoint_period = Milliseconds(25);
  options.paxos_checkpoint_period = Milliseconds(25);
  MixedRackScenario rack(sim, options);
  rack.PrefillKvs(1000, 64);

  LoadClient& kvs = rack.AddKvsClient(
      LoadClientConfig{}, std::make_unique<PoissonArrival>(150000.0),
      [](NodeId src, uint64_t id, SimTime now, Rng& req_rng) {
        const uint64_t key = static_cast<uint64_t>(req_rng.UniformInt(0, 999));
        return MakeKvRequestPacket(src, kRackKvsServerNode,
                                   KvRequest{KvOp::kGet, key, 0}, id, now);
      });

  // The plan is drawn against whatever the testbed registered; brownout caps
  // may dip below what the apps would like to commit.
  RandomFaultPlanConfig plan_config;
  plan_config.horizon = Seconds(1);
  plan_config.death_probability = 0.4;
  plan_config.max_flaps_per_link = 2;
  plan_config.max_brownouts = 2;
  plan_config.min_cap_watts = 5.0;
  plan_config.max_cap_watts = kBudgetWatts;
  const FaultPlanSpec plan = MakeRandomFaultPlan(
      rng, rack.faults().TargetNames(), rack.faults().LinkNames(), plan_config);
  rack.faults().Arm(plan);

  // Budget invariant under the active cap, checked densely along the run.
  size_t samples = 0;
  SchedulePeriodic(sim, Milliseconds(5), Milliseconds(5), [&] {
    const auto& ledger = rack.orchestrator().ledger();
    if (!ledger.unlimited()) {
      EXPECT_LE(ledger.committed_watts(), ledger.budget_watts() + 1e-9)
          << "at " << sim.Now();
    }
    ++samples;
    return sim.Now() < Seconds(1);
  });

  rack.orchestrator().Start();
  rack.paxos_client()->Start();
  kvs.Start();
  sim.RunUntil(Seconds(1) + Milliseconds(100));
  EXPECT_GT(samples, 150u);

  // Fault counters <-> fault log.
  const FaultInjector& faults = rack.faults();
  std::map<FaultKind, uint64_t> by_kind;
  for (const FaultRecord& record : faults.fault_log()) {
    ++by_kind[record.kind];
  }
  EXPECT_EQ(faults.fault_log().size(), plan.events.size());
  EXPECT_EQ(faults.device_deaths(), by_kind[FaultKind::kDeviceDeath]);
  EXPECT_EQ(faults.link_down_events(), by_kind[FaultKind::kLinkDown]);
  EXPECT_EQ(faults.link_up_events(), by_kind[FaultKind::kLinkUp]);
  EXPECT_EQ(faults.brownouts(), by_kind[FaultKind::kPsuBrownout]);

  // Orchestrator counters <-> decision log.
  uint64_t shifts = 0;
  uint64_t failures = 0;
  uint64_t recoveries = 0;
  uint64_t flaps_suppressed = 0;
  for (const RackDecisionRecord& record : rack.orchestrator().decision_log()) {
    switch (record.kind) {
      case RackDecisionRecord::Kind::kShift:
      case RackDecisionRecord::Kind::kShiftHome:
        ++shifts;
        break;
      case RackDecisionRecord::Kind::kFailure:
        ++failures;
        break;
      case RackDecisionRecord::Kind::kRecovery:
        ++recoveries;
        break;
      case RackDecisionRecord::Kind::kFlapSuppressed:
        ++flaps_suppressed;
        break;
      case RackDecisionRecord::Kind::kDeferral:
        break;
    }
  }
  EXPECT_EQ(rack.orchestrator().total_shifts(), shifts);
  EXPECT_EQ(rack.orchestrator().failures_detected(), failures);
  EXPECT_EQ(rack.orchestrator().recoveries(), recoveries);
  EXPECT_EQ(rack.orchestrator().flap_suppressions(), flaps_suppressed);
  // A recovery implies a detected failure; recovery can't outrun detection.
  EXPECT_LE(recoveries, failures * rack.orchestrator().app_count());

  // Ledger commitments only ever belong to currently offloaded apps.
  size_t offloaded = 0;
  for (size_t i = 0; i < rack.orchestrator().app_count(); ++i) {
    if (rack.orchestrator().current_option(i) != nullptr) {
      ++offloaded;
    }
  }
  EXPECT_EQ(rack.orchestrator().ledger().commitments().size(), offloaded);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RackFaultScheduleTest,
                         ::testing::Values(17u, 29u, 43u));

// ---- Umbrella header exposes the full API (compile-time property) ----

TEST(UmbrellaHeaderTest, CoreTypesAreVisible) {
  Simulation sim(1);
  EXPECT_EQ(sim.Now(), 0);
  EXPECT_STREQ(AppProtoName(AppProto::kKv), "kv");
  EXPECT_STREQ(PlacementName(Placement::kHost), "host");
  EXPECT_STREQ(SmartNicArchName(SmartNicArch::kFpga), "fpga");
}

}  // namespace
}  // namespace incod
