// Tests for packets, links, the L2 switch, and topology assembly.
#include <gtest/gtest.h>

#include <vector>

#include "src/net/link.h"
#include "src/net/packet.h"
#include "src/net/switch.h"
#include "src/net/topology.h"
#include "src/sim/sharded.h"
#include "src/sim/simulation.h"

namespace incod {
namespace {

class CollectorSink : public PacketSink {
 public:
  explicit CollectorSink(Simulation* sim = nullptr, std::string name = "collector")
      : sim_(sim), name_(std::move(name)) {}

  void Receive(Packet packet) override {
    packets.push_back(packet);
    if (sim_ != nullptr) {
      arrival_times.push_back(sim_->Now());
    }
  }
  std::string SinkName() const override { return name_; }

  std::vector<Packet> packets;
  std::vector<SimTime> arrival_times;

 private:
  Simulation* sim_;
  std::string name_;
};

Packet MakeRawPacket(NodeId src, NodeId dst, uint32_t bytes = 64) {
  Packet pkt;
  pkt.src = src;
  pkt.dst = dst;
  pkt.proto = AppProto::kRaw;
  pkt.size_bytes = bytes;
  return pkt;
}

TEST(PacketTest, ProtoNames) {
  EXPECT_STREQ(AppProtoName(AppProto::kKv), "kv");
  EXPECT_STREQ(AppProtoName(AppProto::kPaxos), "paxos");
  EXPECT_STREQ(AppProtoName(AppProto::kDns), "dns");
  EXPECT_STREQ(AppProtoName(AppProto::kRaw), "raw");
}

TEST(PacketTest, PayloadAccessors) {
  Packet pkt;
  EXPECT_FALSE(pkt.has_payload());
  pkt.payload = KvRequest{KvOp::kSet, 7, 100};
  EXPECT_TRUE(pkt.has_payload());
  EXPECT_TRUE(PayloadIs<KvRequest>(pkt));
  EXPECT_FALSE(PayloadIs<KvResponse>(pkt));
  EXPECT_EQ(PayloadAs<KvRequest>(pkt).key, 7u);
  ASSERT_NE(PayloadIf<KvRequest>(pkt), nullptr);
  EXPECT_EQ(PayloadIf<KvRequest>(pkt)->value_bytes, 100u);
  EXPECT_EQ(PayloadIf<DnsMessage>(pkt), nullptr);
  EXPECT_THROW(PayloadAs<PaxosMessage>(pkt), std::bad_variant_access);
}

TEST(PacketTest, ControlPayloadRoundTrip) {
  ControlMessage msg;
  msg.kind = ControlMessage::Kind::kActivateOffload;
  msg.target_proto = AppProto::kKv;
  msg.value = 42;
  const Packet pkt = MakeControlPacket(1, 2, msg, 9, Microseconds(3));
  EXPECT_EQ(pkt.proto, AppProto::kControl);
  EXPECT_EQ(pkt.size_bytes, kControlWireBytes);
  ASSERT_TRUE(PayloadIs<ControlMessage>(pkt));
  EXPECT_EQ(PayloadAs<ControlMessage>(pkt).kind, ControlMessage::Kind::kActivateOffload);
  EXPECT_EQ(PayloadAs<ControlMessage>(pkt).target_proto, AppProto::kKv);
  EXPECT_EQ(PayloadAs<ControlMessage>(pkt).value, 42u);
  EXPECT_STREQ(ControlKindName(msg.kind), "activate");
}

TEST(LinkTest, DeliversWithSerializationAndPropagation) {
  Simulation sim;
  CollectorSink a(&sim, "a");
  CollectorSink b(&sim, "b");
  Link::Config config;
  config.gigabits_per_second = 10.0;
  config.propagation_delay = Nanoseconds(500);
  Link link(sim, config, "test");
  link.Connect(&a, &b);
  link.Send(&a, MakeRawPacket(1, 2, 1250));  // 1250 B at 10 Gbps = 1 us.
  sim.Run();
  ASSERT_EQ(b.packets.size(), 1u);
  EXPECT_EQ(b.arrival_times[0], Microseconds(1) + Nanoseconds(500));
}

TEST(LinkTest, BackToBackPacketsQueueBehindSerialization) {
  Simulation sim;
  CollectorSink a(&sim);
  CollectorSink b(&sim);
  Link::Config config;
  config.gigabits_per_second = 10.0;
  config.propagation_delay = 0;
  Link link(sim, config);
  link.Connect(&a, &b);
  link.Send(&a, MakeRawPacket(1, 2, 1250));
  link.Send(&a, MakeRawPacket(1, 2, 1250));
  sim.Run();
  ASSERT_EQ(b.packets.size(), 2u);
  EXPECT_EQ(b.arrival_times[0], Microseconds(1));
  EXPECT_EQ(b.arrival_times[1], Microseconds(2));
}

TEST(LinkTest, FullDuplexDirectionsIndependent) {
  Simulation sim;
  CollectorSink a(&sim);
  CollectorSink b(&sim);
  Link link(sim, {});
  link.Connect(&a, &b);
  link.Send(&a, MakeRawPacket(1, 2));
  link.Send(&b, MakeRawPacket(2, 1));
  sim.Run();
  EXPECT_EQ(a.packets.size(), 1u);
  EXPECT_EQ(b.packets.size(), 1u);
  EXPECT_EQ(link.delivered(&a), 1u);
  EXPECT_EQ(link.delivered(&b), 1u);
}

TEST(LinkTest, DropsWhenQueueFull) {
  Simulation sim;
  CollectorSink a(&sim);
  CollectorSink b(&sim);
  Link::Config config;
  config.gigabits_per_second = 0.001;  // 1 Mbps: slow.
  config.queue_capacity_packets = 4;
  Link link(sim, config);
  link.Connect(&a, &b);
  for (int i = 0; i < 100; ++i) {
    link.Send(&a, MakeRawPacket(1, 2, 1500));
  }
  // One packet serializes while 4 queue behind it; the rest drop.
  EXPECT_EQ(link.in_flight(&b), 5u);
  sim.Run();
  EXPECT_EQ(b.packets.size(), 5u);
  EXPECT_EQ(link.dropped(&b), 95u);
  EXPECT_EQ(link.total_dropped(), 95u);
  EXPECT_EQ(link.in_flight(&b), 0u);
}

TEST(LinkTest, InServicePacketDoesNotOccupyQueue) {
  // Regression: the drop check used to conflate the packet being serialized
  // with queued backlog, firing one packet early (at queue_capacity instead
  // of queue_capacity + 1 concurrently held).
  Simulation sim;
  CollectorSink a(&sim);
  CollectorSink b(&sim);
  Link::Config config;
  config.gigabits_per_second = 0.001;
  config.queue_capacity_packets = 4;
  Link link(sim, config);
  link.Connect(&a, &b);
  for (int i = 0; i < 5; ++i) {  // 1 in service + 4 waiting: all accepted.
    link.Send(&a, MakeRawPacket(1, 2, 1500));
  }
  EXPECT_EQ(link.dropped(&b), 0u);
  link.Send(&a, MakeRawPacket(1, 2, 1500));  // Queue genuinely full now.
  EXPECT_EQ(link.dropped(&b), 1u);
  sim.Run();
  EXPECT_EQ(b.packets.size(), 5u);
  // Once the first packet finishes serializing, a queue slot frees up and
  // the next send is accepted again.
  link.Send(&a, MakeRawPacket(1, 2, 1500));
  sim.Run();
  EXPECT_EQ(b.packets.size(), 6u);
  EXPECT_EQ(link.dropped(&b), 1u);
}

// Runs the same traffic through a coalescing and a non-coalescing link and
// returns the delivered (id, arrival-time) sequence at the far end.
std::vector<std::pair<uint64_t, SimTime>> DeliverSequence(bool coalesce) {
  Simulation sim(7);
  Link::Config config;
  config.gigabits_per_second = 1000.0;  // 64B ~ 0.5ns: rounds to same-tick.
  config.propagation_delay = Nanoseconds(20);
  config.coalesce_same_tick_delivery = coalesce;
  Link link(sim, config, "batchy");
  CollectorSink a(&sim, "a");
  CollectorSink b(&sim, "b");
  link.Connect(&a, &b);
  // Bursts of tiny (zero-serialization) and larger packets: several packets
  // share a deliver tick inside each burst.
  uint64_t id = 0;
  for (int burst = 0; burst < 5; ++burst) {
    sim.ScheduleAt(burst * Nanoseconds(100), [&link, &a, &id] {
      for (int i = 0; i < 6; ++i) {
        Packet pkt = MakeRawPacket(1, 2, i == 3 ? 512 : 0);
        pkt.id = ++id;
        link.Send(&a, std::move(pkt));
      }
    });
  }
  sim.Run();
  std::vector<std::pair<uint64_t, SimTime>> sequence;
  for (size_t i = 0; i < b.packets.size(); ++i) {
    sequence.emplace_back(b.packets[i].id, b.arrival_times[i]);
  }
  return sequence;
}

TEST(LinkTest, CoalescedDeliveryMatchesUnbatchedOrder) {
  const auto batched = DeliverSequence(/*coalesce=*/true);
  const auto unbatched = DeliverSequence(/*coalesce=*/false);
  ASSERT_EQ(batched.size(), 30u);
  ASSERT_EQ(batched.size(), unbatched.size());
  for (size_t i = 0; i < batched.size(); ++i) {
    EXPECT_EQ(batched[i].first, unbatched[i].first) << "order diverged at " << i;
    EXPECT_EQ(batched[i].second, unbatched[i].second) << "time diverged at " << i;
  }
  // FIFO order must be the send order.
  for (size_t i = 0; i < batched.size(); ++i) {
    EXPECT_EQ(batched[i].first, i + 1);
  }
}

TEST(LinkTest, RejectsUnknownSender) {
  Simulation sim;
  CollectorSink a;
  CollectorSink b;
  CollectorSink stranger;
  Link link(sim, {});
  link.Connect(&a, &b);
  EXPECT_THROW(link.Send(&stranger, MakeRawPacket(1, 2)), std::invalid_argument);
}

TEST(LinkTest, SendBeforeConnectThrows) {
  Simulation sim;
  CollectorSink a;
  Link link(sim, {});
  EXPECT_THROW(link.Send(&a, MakeRawPacket(1, 2)), std::logic_error);
}

TEST(SwitchTest, RoutesByDestination) {
  Simulation sim;
  Topology topo(sim);
  L2Switch sw(sim, "sw");
  CollectorSink h1(&sim, "h1");
  CollectorSink h2(&sim, "h2");
  topo.ConnectToSwitch(&sw, &h1, 1);
  topo.ConnectToSwitch(&sw, &h2, 2);
  sw.Receive(MakeRawPacket(1, 2));
  sim.Run();
  EXPECT_EQ(h2.packets.size(), 1u);
  EXPECT_TRUE(h1.packets.empty());
  EXPECT_EQ(sw.forwarded(), 1u);
}

TEST(SwitchTest, DropsUnroutable) {
  Simulation sim;
  L2Switch sw(sim, "sw");
  sw.Receive(MakeRawPacket(1, 99));
  sim.Run();
  EXPECT_EQ(sw.dropped_no_route(), 1u);
}

TEST(SwitchTest, RuleOverridesRoute) {
  Simulation sim;
  Topology topo(sim);
  L2Switch sw(sim, "sw");
  CollectorSink h1(&sim, "h1");
  CollectorSink h2(&sim, "h2");
  topo.ConnectToSwitch(&sw, &h1, 1);
  const int port2 = sw.AttachLink(topo.Connect(&sw, &h2, {}, "p2"));
  sw.AddRoute(2, port2);

  // Paxos traffic for node 1 is redirected to port2 (the migration rewrite).
  L2Switch::ForwardingRule rule;
  rule.proto = AppProto::kPaxos;
  rule.match_dst = 1;
  rule.out_port = port2;
  sw.InstallRule(rule);

  Packet paxos = MakeRawPacket(9, 1);
  paxos.proto = AppProto::kPaxos;
  sw.Receive(paxos);
  sw.Receive(MakeRawPacket(9, 1));  // Raw still follows the route.
  sim.Run();
  EXPECT_EQ(h2.packets.size(), 1u);
  EXPECT_EQ(h1.packets.size(), 1u);
}

TEST(SwitchTest, RuleRewriteChangesDestination) {
  Simulation sim;
  Topology topo(sim);
  L2Switch sw(sim, "sw");
  CollectorSink h1(&sim);
  topo.ConnectToSwitch(&sw, &h1, 1);
  L2Switch::ForwardingRule rule;
  rule.proto = AppProto::kDns;
  rule.match_dst = 200;
  rule.out_port = 0;
  rule.rewrite_dst = 1;
  sw.InstallRule(rule);
  Packet pkt = MakeRawPacket(9, 200);
  pkt.proto = AppProto::kDns;
  sw.Receive(pkt);
  sim.Run();
  ASSERT_EQ(h1.packets.size(), 1u);
  EXPECT_EQ(h1.packets[0].dst, 1u);
}

TEST(SwitchTest, HigherPriorityRuleWins) {
  Simulation sim;
  Topology topo(sim);
  L2Switch sw(sim, "sw");
  CollectorSink h1(&sim, "h1");
  CollectorSink h2(&sim, "h2");
  topo.ConnectToSwitch(&sw, &h1, 1);
  topo.ConnectToSwitch(&sw, &h2, 2);
  L2Switch::ForwardingRule low;
  low.proto = AppProto::kKv;
  low.out_port = 0;
  low.priority = 1;
  L2Switch::ForwardingRule high;
  high.proto = AppProto::kKv;
  high.out_port = 1;
  high.priority = 5;
  sw.InstallRule(low);
  sw.InstallRule(high);
  Packet pkt = MakeRawPacket(9, 42);
  pkt.proto = AppProto::kKv;
  sw.Receive(pkt);
  sim.Run();
  EXPECT_EQ(h2.packets.size(), 1u);
  EXPECT_TRUE(h1.packets.empty());
}

TEST(SwitchTest, InstallRuleReplacesSameKey) {
  Simulation sim;
  Topology topo(sim);
  L2Switch sw(sim, "sw");
  CollectorSink h1(&sim);
  CollectorSink h2(&sim);
  topo.ConnectToSwitch(&sw, &h1, 1);
  topo.ConnectToSwitch(&sw, &h2, 2);
  L2Switch::ForwardingRule rule;
  rule.proto = AppProto::kPaxos;
  rule.match_dst = 7;
  rule.out_port = 0;
  sw.InstallRule(rule);
  rule.out_port = 1;  // Re-point (leader migration).
  sw.InstallRule(rule);
  EXPECT_EQ(sw.num_rules(), 1u);
  Packet pkt = MakeRawPacket(9, 7);
  pkt.proto = AppProto::kPaxos;
  sw.Receive(pkt);
  sim.Run();
  EXPECT_EQ(h2.packets.size(), 1u);
}

TEST(SwitchTest, RemoveRules) {
  Simulation sim;
  Topology topo(sim);
  L2Switch sw(sim, "sw");
  CollectorSink h1(&sim);
  topo.ConnectToSwitch(&sw, &h1, 1);
  L2Switch::ForwardingRule rule;
  rule.proto = AppProto::kKv;
  rule.match_dst = 5;
  rule.out_port = 0;
  sw.InstallRule(rule);
  EXPECT_EQ(sw.RemoveRules(AppProto::kKv, 6), 0u);
  EXPECT_EQ(sw.RemoveRules(AppProto::kKv, 5), 1u);
  EXPECT_EQ(sw.num_rules(), 0u);
}

TEST(SwitchTest, BadPortsRejected) {
  Simulation sim;
  L2Switch sw(sim, "sw");
  EXPECT_THROW(sw.AddRoute(1, 0), std::out_of_range);
  L2Switch::ForwardingRule rule;
  rule.out_port = 3;
  EXPECT_THROW(sw.InstallRule(rule), std::out_of_range);
}

TEST(TopologyTest, ConnectsAndCounts) {
  Simulation sim;
  Topology topo(sim);
  CollectorSink a(&sim);
  CollectorSink b(&sim);
  Link* link = topo.Connect(&a, &b);
  EXPECT_EQ(topo.num_links(), 1u);
  link->Send(&a, MakeRawPacket(1, 2));
  sim.Run();
  EXPECT_EQ(b.packets.size(), 1u);
}

TEST(SwitchTest, DefaultRouteForwardsUnroutedTraffic) {
  Simulation sim;
  L2Switch sw(sim, "tor");
  CollectorSink local(&sim);
  CollectorSink uplink_sink(&sim);
  Link local_link(sim, Link::Config{});
  local_link.Connect(&sw, &local);
  Link uplink(sim, Link::Config{});
  uplink.Connect(&sw, &uplink_sink);
  const int local_port = sw.AttachLink(&local_link);
  const int uplink_port = sw.AttachLink(&uplink);
  sw.AddRoute(1, local_port);
  EXPECT_THROW(sw.SetDefaultRoute(5), std::out_of_range);
  sw.SetDefaultRoute(uplink_port);

  sw.Receive(MakeRawPacket(9, 1));   // Routed: stays local.
  sw.Receive(MakeRawPacket(9, 42));  // Unrouted: takes the default route.
  sim.Run();
  ASSERT_EQ(local.packets.size(), 1u);
  EXPECT_EQ(local.packets[0].dst, 1);
  ASSERT_EQ(uplink_sink.packets.size(), 1u);
  EXPECT_EQ(uplink_sink.packets[0].dst, 42);
  EXPECT_EQ(sw.dropped_no_route(), 0u);
}

TEST(LinkTest, DeliveryToDeadSinkDroppedAndCounted) {
  Simulation sim;
  CollectorSink a(&sim);
  CollectorSink b(&sim);
  Link link(sim, {});
  link.Connect(&a, &b);
  link.Send(&a, MakeRawPacket(1, 2));  // In flight when the sink dies.
  b.SetAlive(false);
  sim.Run();
  EXPECT_TRUE(b.packets.empty());
  EXPECT_EQ(link.dropped_to_dead(&b), 1u);
  EXPECT_EQ(link.delivered(&b), 0u);
  // Death is receiver-side only: the reverse direction still works, and a
  // revived sink receives again.
  link.Send(&b, MakeRawPacket(2, 1));
  b.SetAlive(true);
  link.Send(&a, MakeRawPacket(1, 2));
  sim.Run();
  EXPECT_EQ(a.packets.size(), 1u);
  EXPECT_EQ(b.packets.size(), 1u);
  EXPECT_EQ(link.dropped_to_dead(&b), 1u);
}

TEST(LinkTest, LinkFlapDropsInFlightAndRefusesSends) {
  Simulation sim;
  CollectorSink a(&sim);
  CollectorSink b(&sim);
  Link::Config config;
  config.gigabits_per_second = 10.0;
  config.propagation_delay = Microseconds(10);
  Link link(sim, config);
  link.Connect(&a, &b);
  link.ScheduleDown(Microseconds(5));
  link.ScheduleUp(Microseconds(50));
  // Sent before the flap but delivered (1 us serialization + 10 us
  // propagation = t=11) inside the down window: dropped at delivery.
  link.Send(&a, MakeRawPacket(1, 2, 1250));
  // Sent while down: refused at the sender.
  sim.Schedule(Microseconds(20), [&link, &a, &b] {
    EXPECT_TRUE(link.link_down(&b));
    link.Send(&a, MakeRawPacket(1, 2, 1250));
  });
  // Sent after the link came back: delivered normally.
  sim.Schedule(Microseconds(60), [&link, &a, &b] {
    EXPECT_FALSE(link.link_down(&b));
    link.Send(&a, MakeRawPacket(1, 2, 1250));
  });
  sim.Run();
  ASSERT_EQ(b.packets.size(), 1u);
  EXPECT_EQ(b.arrival_times[0], Microseconds(71));
  EXPECT_EQ(link.delivered(&b), 1u);
  EXPECT_EQ(link.dropped_link_down(&b), 2u);
  EXPECT_EQ(link.in_flight(&b), 0u);
}

// The same flap schedule across a shard boundary must deliver the same
// packets at the same times and count the same drops as the intra-shard
// topology, in both engine modes: the down/up flips are per-side events
// running in the shard that owns that side's state.
TEST(LinkTest, CrossShardLinkFlapMatchesIntraShard) {
  const auto drive = [](Simulation& send_shard, Link* link, CollectorSink* a) {
    link->ScheduleDown(Microseconds(10));
    link->ScheduleUp(Microseconds(30));
    // Bursts: all-delivered / in-flight-at-down / refused-while-down /
    // delivered-after-up.
    for (const SimTime at :
         {SimTime{0}, Microseconds(8), Microseconds(15), Microseconds(40)}) {
      send_shard.ScheduleAt(at, [link, a] {
        for (int i = 0; i < 4; ++i) {
          link->Send(a, MakeRawPacket(1, 2, 1500));
        }
      });
    }
  };

  std::vector<SimTime> want;
  uint64_t want_down_drops = 0;
  {
    Simulation sim;
    CollectorSink a(&sim);
    CollectorSink b(&sim);
    Link::Config config;
    config.propagation_delay = Microseconds(2);
    Link link(sim, config);
    link.Connect(&a, &b);
    drive(sim, &link, &a);
    sim.Run();
    want = b.arrival_times;
    want_down_drops = link.dropped_link_down(&b);
    ASSERT_EQ(want.size(), 8u);        // First and last bursts.
    ASSERT_EQ(want_down_drops, 8u);    // Middle two bursts.
  }
  for (const auto mode : {ShardedSimulation::Mode::kSingleQueue,
                          ShardedSimulation::Mode::kParallel}) {
    ShardedSimulation::Options opt;
    opt.num_shards = 2;
    opt.num_threads = 2;
    opt.mode = mode;
    ShardedSimulation ssim(opt);
    Topology topo(ssim.shard(0));
    topo.SetSharded(&ssim, 0);
    CollectorSink a(&ssim.shard(0));
    CollectorSink b(&ssim.shard(1));
    topo.AssignShard(&b, 1);
    Link::Config config;
    config.propagation_delay = Microseconds(2);
    Link* link = topo.Connect(&a, &b, config);
    drive(ssim.shard(0), link, &a);
    ssim.Run();
    EXPECT_EQ(b.arrival_times, want) << "mode " << static_cast<int>(mode);
    EXPECT_EQ(link->dropped_link_down(&b), want_down_drops)
        << "mode " << static_cast<int>(mode);
    EXPECT_EQ(link->delivered(&b), want.size());
  }
}

// A cross-shard link must deliver the same packets at the same times as the
// identical intra-shard topology: delivery timing (serialization + queueing +
// propagation) is computed sender-side and carried in the mailbox stamp.
TEST(LinkTest, CrossShardDeliveryMatchesIntraShardTiming) {
  // Reference: plain single-sim link.
  std::vector<SimTime> want;
  {
    Simulation sim;
    CollectorSink a(&sim);
    CollectorSink b(&sim);
    Link::Config config;
    config.propagation_delay = Microseconds(2);
    Link link(sim, config);
    link.Connect(&a, &b);
    for (int burst = 0; burst < 3; ++burst) {
      sim.Schedule(Microseconds(5) * burst, [&link, &a] {
        for (int i = 0; i < 4; ++i) {
          link.Send(&a, MakeRawPacket(1, 2, 1500));  // Queue behind serialization.
        }
      });
    }
    sim.Run();
    want = b.arrival_times;
    ASSERT_EQ(want.size(), 12u);
  }
  // Same traffic across a shard boundary, both engine modes.
  for (const auto mode : {ShardedSimulation::Mode::kSingleQueue,
                          ShardedSimulation::Mode::kParallel}) {
    ShardedSimulation::Options opt;
    opt.num_shards = 2;
    opt.num_threads = 2;
    opt.mode = mode;
    ShardedSimulation ssim(opt);
    Topology topo(ssim.shard(0));
    topo.SetSharded(&ssim, 0);
    CollectorSink a(&ssim.shard(0));
    CollectorSink b(&ssim.shard(1));
    topo.AssignShard(&b, 1);
    Link::Config config;
    config.propagation_delay = Microseconds(2);
    Link* link = topo.Connect(&a, &b, config);
    for (int burst = 0; burst < 3; ++burst) {
      ssim.shard(0).Schedule(Microseconds(5) * burst, [link, &a] {
        for (int i = 0; i < 4; ++i) {
          link->Send(&a, MakeRawPacket(1, 2, 1500));
        }
      });
    }
    ssim.Run();
    EXPECT_EQ(b.arrival_times, want) << "mode " << static_cast<int>(mode);
    EXPECT_EQ(link->delivered(&b), 12u);
  }
}

// --- PFC flow control ---

class FlowRecorder : public FlowListener {
 public:
  void OnLinkCongestion(Link* link, bool congested) override {
    (void)link;
    events.push_back(congested);
  }
  std::vector<bool> events;
};

Link::Config PacedConfig() {
  Link::Config config;
  config.gigabits_per_second = 0.1;  // 1000B packet = 80us serialization.
  config.propagation_delay = Nanoseconds(500);
  config.flow.pfc = true;
  config.flow.pause_high_watermark = 8;
  config.flow.pause_low_watermark = 2;
  return config;
}

TEST(LinkFlowTest, WatermarkPauseResumeSignals) {
  Simulation sim;
  Link::Config config = PacedConfig();
  config.flow.ecn = true;
  config.flow.ecn_threshold_packets = 4;
  Link link(sim, config, "paced");
  CollectorSink a(&sim, "a");
  CollectorSink b(&sim, "b");
  link.Connect(&a, &b);
  FlowRecorder rec;
  link.SetFlowListener(&a, &rec);
  // Inject 32 packets in 32us against an 80us-per-packet serializer: the
  // backlog crosses the high watermark on the way up and drains through the
  // low watermark at the end.
  for (int i = 0; i < 32; ++i) {
    sim.ScheduleAt(Microseconds(i), [&link, &a] {
      link.Send(&a, MakeRawPacket(1, 2, 1000));
    });
  }
  sim.Run();
  ASSERT_GE(rec.events.size(), 2u);
  EXPECT_TRUE(rec.events.front());   // Congestion asserted...
  EXPECT_FALSE(rec.events.back());   // ...and released once drained.
  EXPECT_EQ(b.packets.size(), 32u);
  EXPECT_EQ(link.dropped_overflow(&b), 0u);
  // ECN: packets entering the serializer over the threshold left marked, and
  // the receiver saw exactly the marked ones.
  size_t marked = 0;
  for (const Packet& pkt : b.packets) {
    marked += pkt.ecn ? 1u : 0u;
  }
  EXPECT_GT(marked, 0u);
  EXPECT_EQ(marked, link.ecn_marked(&b));
}

TEST(LinkFlowTest, PauseDefersInsteadOfDropping) {
  Simulation sim;
  Link::Config config;
  config.propagation_delay = Nanoseconds(500);
  config.flow.pfc = true;
  Link link(sim, config, "paced");
  CollectorSink a(&sim, "a");
  CollectorSink b(&sim, "b");
  link.Connect(&a, &b);
  // The receiver pauses the sender before the burst and resumes long after:
  // every packet accepted during the pause must be deferred and delivered,
  // never counted against the drop counters.
  sim.ScheduleAt(Microseconds(1), [&link, &b] { link.PauseUpstream(&b, true); });
  for (int i = 0; i < 20; ++i) {
    sim.ScheduleAt(Microseconds(5 + i), [&link, &a] {
      link.Send(&a, MakeRawPacket(1, 2, 64));
    });
  }
  sim.ScheduleAt(Microseconds(60), [&link, &b] {
    EXPECT_TRUE(link.paused(&b));
    EXPECT_EQ(link.delivered(&b), 0u);
    link.PauseUpstream(&b, false);
  });
  sim.Run();
  EXPECT_EQ(b.packets.size(), 20u);
  EXPECT_EQ(link.delivered(&b), 20u);
  EXPECT_EQ(link.dropped_overflow(&b), 0u);
  EXPECT_EQ(link.paused_deferred(&b), 20u);
  EXPECT_EQ(link.pause_frames(&b), 1u);
  EXPECT_FALSE(link.paused(&b));
  // Nothing moved before the resume frame took effect.
  EXPECT_GE(b.arrival_times.front(), Microseconds(60));
}

TEST(LinkFlowTest, OverflowStillDropsWithoutDoubleCounting) {
  Simulation sim;
  Link::Config config;
  config.propagation_delay = Nanoseconds(500);
  config.queue_capacity_packets = 4;
  config.flow.pfc = true;
  config.flow.pause_high_watermark = 3;
  Link link(sim, config, "paced");
  CollectorSink a(&sim, "a");
  CollectorSink b(&sim, "b");
  link.Connect(&a, &b);
  sim.ScheduleAt(Microseconds(1), [&link, &b] { link.PauseUpstream(&b, true); });
  for (int i = 0; i < 20; ++i) {
    sim.ScheduleAt(Microseconds(5 + i), [&link, &a] {
      link.Send(&a, MakeRawPacket(1, 2, 64));
    });
  }
  sim.ScheduleAt(Microseconds(60), [&link, &b] { link.PauseUpstream(&b, false); });
  sim.Run();
  // 4 packets fit the waiting queue, the rest overflowed — and the deferred
  // ones are disjoint from the drops: delivered + dropped == sent, exactly.
  EXPECT_EQ(link.dropped_overflow(&b), 16u);
  EXPECT_EQ(link.delivered(&b), 4u);
  EXPECT_EQ(link.paused_deferred(&b), 4u);
  EXPECT_EQ(link.delivered(&b) + link.dropped_overflow(&b), 20u);
}

// Two-switch chain with a slow last hop: congestion at the far switch must
// walk upstream hop by hop — sw2 pauses sw1's port, sw1's own egress backs
// up, sw1 pauses the client — and everything still arrives (zero drops).
TEST(SwitchFlowTest, PausePropagatesTwoHopsUpstream) {
  Simulation sim;
  CollectorSink client(&sim, "client");
  CollectorSink sink(&sim, "sink");
  L2Switch sw1(sim, "sw1");
  L2Switch sw2(sim, "sw2");

  Link::Config fast;
  fast.gigabits_per_second = 10.0;
  fast.propagation_delay = Nanoseconds(500);
  fast.flow.pfc = true;
  fast.flow.pause_high_watermark = 8;
  fast.flow.pause_low_watermark = 2;
  Link::Config slow = fast;
  slow.gigabits_per_second = 0.05;  // 1000B packet = 160us: the bottleneck.

  Link l_client(sim, fast, "client-sw1");
  l_client.Connect(&client, &sw1);
  Link l_mid(sim, fast, "sw1-sw2");
  l_mid.Connect(&sw1, &sw2);
  Link l_last(sim, slow, "sw2-sink");
  l_last.Connect(&sw2, &sink);

  sw1.AttachLink(&l_client);
  const int sw1_to_sw2 = sw1.AttachLink(&l_mid);
  sw2.AttachLink(&l_mid);
  const int sw2_to_sink = sw2.AttachLink(&l_last);
  sw1.AddRoute(2, sw1_to_sw2);
  sw2.AddRoute(2, sw2_to_sink);

  bool client_saw_pause = false;
  for (int i = 0; i < 64; ++i) {
    sim.ScheduleAt(Microseconds(i), [&l_client, &client] {
      l_client.Send(&client, MakeRawPacket(1, 2, 1000));
    });
  }
  // Mid-flood probe: the pause has reached the edge (the client's uplink
  // direction toward sw1 is held by sw1).
  sim.ScheduleAt(Microseconds(500), [&l_client, &sw1, &client_saw_pause] {
    client_saw_pause = l_client.paused(&sw1);
  });
  sim.Run();

  EXPECT_TRUE(client_saw_pause);
  EXPECT_GT(sw2.pause_frames_sent(), 0u);
  EXPECT_GT(sw1.pause_frames_sent(), 0u);
  EXPECT_EQ(sink.packets.size(), 64u);  // Slowdown, not loss.
  EXPECT_EQ(l_client.dropped_overflow(&sw1), 0u);
  EXPECT_EQ(l_mid.dropped_overflow(&sw2), 0u);
  EXPECT_EQ(l_last.dropped_overflow(&sink), 0u);
  // Everything drained, so all pauses were released.
  EXPECT_EQ(sw1.congested_ports(), 0u);
  EXPECT_EQ(sw2.congested_ports(), 0u);
  EXPECT_FALSE(l_client.paused(&sw1));
}

// A paused cross-shard link must behave exactly like the intra-shard one:
// pause/resume flips ride the mailbox path and the deferred packets arrive
// at identical ticks in both engine modes.
TEST(LinkFlowTest, CrossShardPauseMatchesIntraShard) {
  const auto drive = [](Simulation& send_shard, Simulation& recv_shard, Link* link,
                        CollectorSink* a, CollectorSink* b) {
    for (int i = 0; i < 12; ++i) {
      send_shard.ScheduleAt(Microseconds(i), [link, a] {
        link->Send(a, MakeRawPacket(1, 2, 1500));
      });
    }
    // The receiver asserts pause mid-burst and resumes later, from its own
    // shard (the flip crosses back through the mailbox).
    recv_shard.ScheduleAt(Microseconds(3), [link, b] { link->PauseUpstream(b, true); });
    recv_shard.ScheduleAt(Microseconds(80), [link, b] { link->PauseUpstream(b, false); });
  };

  std::vector<SimTime> want;
  uint64_t want_deferred = 0;
  {
    Simulation sim;
    CollectorSink a(&sim);
    CollectorSink b(&sim);
    Link::Config config;
    config.propagation_delay = Microseconds(2);
    config.flow.pfc = true;
    Link link(sim, config);
    link.Connect(&a, &b);
    drive(sim, sim, &link, &a, &b);
    sim.Run();
    want = b.arrival_times;
    want_deferred = link.paused_deferred(&b);
    ASSERT_EQ(want.size(), 12u);
    ASSERT_GT(want_deferred, 0u);
  }
  for (const auto mode : {ShardedSimulation::Mode::kSingleQueue,
                          ShardedSimulation::Mode::kParallel}) {
    ShardedSimulation::Options opt;
    opt.num_shards = 2;
    opt.num_threads = 2;
    opt.mode = mode;
    ShardedSimulation ssim(opt);
    Topology topo(ssim.shard(0));
    topo.SetSharded(&ssim, 0);
    CollectorSink a(&ssim.shard(0));
    CollectorSink b(&ssim.shard(1));
    topo.AssignShard(&b, 1);
    Link::Config config;
    config.propagation_delay = Microseconds(2);
    config.flow.pfc = true;
    Link* link = topo.Connect(&a, &b, config);
    drive(ssim.shard(0), ssim.shard(1), link, &a, &b);
    ssim.Run();
    EXPECT_EQ(b.arrival_times, want) << "mode " << static_cast<int>(mode);
    EXPECT_EQ(link->paused_deferred(&b), want_deferred)
        << "mode " << static_cast<int>(mode);
    EXPECT_EQ(link->dropped_overflow(&b), 0u);
  }
}

}  // namespace
}  // namespace incod
