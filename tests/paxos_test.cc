// Tests for the Paxos role state machines: protocol correctness, the §9.2
// migration extensions, and a randomized safety property.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>

#include "src/paxos/paxos_msg.h"
#include "src/paxos/roles.h"
#include "src/sim/random.h"

namespace incod {
namespace {

PaxosGroupConfig ThreeAcceptorGroup() {
  PaxosGroupConfig group;
  group.acceptors = {10, 11, 12};
  group.learners = {30};
  group.leader_service = 200;
  return group;
}

PaxosMessage ClientRequest(PaxosValue value, NodeId client = 100) {
  PaxosMessage msg;
  msg.type = PaxosMsgType::kClientRequest;
  msg.value = value;
  msg.client = client;
  return msg;
}

TEST(PaxosConfigTest, QuorumSizes) {
  PaxosGroupConfig group = ThreeAcceptorGroup();
  EXPECT_EQ(group.QuorumSize(), 2u);
  group.acceptors = {1, 2, 3, 4, 5};
  EXPECT_EQ(group.QuorumSize(), 3u);
  group.acceptors = {1};
  EXPECT_EQ(group.QuorumSize(), 1u);
}

TEST(LeaderTest, AssignsMonotonicInstances) {
  LeaderState leader(ThreeAcceptorGroup(), 1);
  const auto out1 = leader.HandleMessage(ClientRequest(1001));
  const auto out2 = leader.HandleMessage(ClientRequest(1002));
  ASSERT_EQ(out1.size(), 3u);  // 2a to each acceptor.
  ASSERT_EQ(out2.size(), 3u);
  EXPECT_EQ(out1[0].msg.type, PaxosMsgType::kPhase2a);
  EXPECT_EQ(out1[0].msg.instance, 1u);
  EXPECT_EQ(out2[0].msg.instance, 2u);
  EXPECT_EQ(out1[0].msg.value, 1001u);
  EXPECT_EQ(leader.next_instance(), 3u);
}

TEST(LeaderTest, LearnsSequenceFromPhase1bHint) {
  LeaderState leader(ThreeAcceptorGroup(), 2);
  PaxosMessage hint;
  hint.type = PaxosMsgType::kPhase1b;
  hint.instance = 1;
  hint.last_voted_instance = 500;  // §9.2: acceptor piggyback.
  leader.HandleMessage(hint);
  EXPECT_EQ(leader.next_instance(), 501u);
  EXPECT_EQ(leader.sequence_jumps(), 1u);
  // Next proposal uses the learned sequence.
  const auto out = leader.HandleMessage(ClientRequest(1));
  EXPECT_EQ(out[0].msg.instance, 501u);
}

TEST(LeaderTest, StaleHintDoesNotRegress) {
  LeaderState leader(ThreeAcceptorGroup(), 1);
  for (int i = 0; i < 10; ++i) {
    leader.HandleMessage(ClientRequest(static_cast<PaxosValue>(i + 1)));
  }
  PaxosMessage hint;
  hint.type = PaxosMsgType::kPhase1b;
  hint.last_voted_instance = 3;  // Older than what we've assigned.
  leader.HandleMessage(hint);
  EXPECT_EQ(leader.next_instance(), 11u);
}

TEST(LeaderTest, ResetStartsFromOne) {
  LeaderState leader(ThreeAcceptorGroup(), 1);
  leader.HandleMessage(ClientRequest(1));
  leader.Reset(2);
  EXPECT_EQ(leader.next_instance(), 1u);  // §9.2.
  EXPECT_EQ(leader.ballot(), 2u);
  EXPECT_THROW(leader.Reset(2), std::invalid_argument);  // Must increase.
}

TEST(LeaderTest, FillRequestRunsPhase1) {
  LeaderState leader(ThreeAcceptorGroup(), 3);
  PaxosMessage fill;
  fill.type = PaxosMsgType::kFillRequest;
  fill.instance = 7;
  const auto out = leader.HandleMessage(fill);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].msg.type, PaxosMsgType::kPhase1a);
  EXPECT_EQ(out[0].msg.instance, 7u);
  EXPECT_EQ(out[0].msg.round, 3u);
  // The fill also teaches the sequence past the gap.
  EXPECT_EQ(leader.next_instance(), 8u);
}

TEST(LeaderTest, Phase1QuorumReproposesHighestVotedValue) {
  LeaderState leader(ThreeAcceptorGroup(), 5);
  PaxosMessage fill;
  fill.type = PaxosMsgType::kFillRequest;
  fill.instance = 2;
  leader.HandleMessage(fill);
  // Two promises: acceptor 0 never voted; acceptor 1 voted value 77 at
  // round 4.
  PaxosMessage p0;
  p0.type = PaxosMsgType::kPhase1b;
  p0.instance = 2;
  p0.round = 5;
  p0.sender_id = 0;
  const auto out0 = leader.HandleMessage(p0);
  EXPECT_TRUE(out0.empty());  // No quorum yet.
  PaxosMessage p1 = p0;
  p1.sender_id = 1;
  p1.vround = 4;
  p1.value = 77;
  p1.client = 100;
  const auto out1 = leader.HandleMessage(p1);
  ASSERT_EQ(out1.size(), 3u);
  EXPECT_EQ(out1[0].msg.type, PaxosMsgType::kPhase2a);
  EXPECT_EQ(out1[0].msg.value, 77u);
  // Third promise after phase 2 started: no duplicate proposal.
  PaxosMessage p2 = p0;
  p2.sender_id = 2;
  EXPECT_TRUE(leader.HandleMessage(p2).empty());
}

TEST(LeaderTest, Phase1QuorumProposesNoopWhenNothingVoted) {
  LeaderState leader(ThreeAcceptorGroup(), 5);
  PaxosMessage fill;
  fill.type = PaxosMsgType::kFillRequest;
  fill.instance = 3;
  leader.HandleMessage(fill);
  PaxosMessage p0;
  p0.type = PaxosMsgType::kPhase1b;
  p0.instance = 3;
  p0.round = 5;
  p0.sender_id = 0;
  leader.HandleMessage(p0);
  PaxosMessage p1 = p0;
  p1.sender_id = 1;
  const auto out = leader.HandleMessage(p1);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].msg.value, kPaxosNoop);  // §9.2: learn a no-op.
}

TEST(LeaderTest, RejectsBadConstruction) {
  PaxosGroupConfig empty;
  empty.learners = {30};
  empty.leader_service = 200;
  EXPECT_THROW(LeaderState(empty, 1), std::invalid_argument);
  EXPECT_THROW(LeaderState(ThreeAcceptorGroup(), 0), std::invalid_argument);
}

TEST(AcceptorTest, VotesAndNotifiesLearners) {
  AcceptorState acceptor(ThreeAcceptorGroup(), 0);
  PaxosMessage p2a;
  p2a.type = PaxosMsgType::kPhase2a;
  p2a.instance = 1;
  p2a.round = 1;
  p2a.value = 42;
  p2a.client = 100;
  const auto out = acceptor.HandleMessage(p2a);
  ASSERT_EQ(out.size(), 1u);  // One learner.
  EXPECT_EQ(out[0].dst, 30u);
  EXPECT_EQ(out[0].msg.type, PaxosMsgType::kPhase2b);
  EXPECT_EQ(out[0].msg.value, 42u);
  EXPECT_EQ(out[0].msg.last_voted_instance, 1u);
  EXPECT_EQ(acceptor.last_voted_instance(), 1u);
}

TEST(AcceptorTest, NacksLowerRound) {
  AcceptorState acceptor(ThreeAcceptorGroup(), 0);
  PaxosMessage high;
  high.type = PaxosMsgType::kPhase2a;
  high.instance = 1;
  high.round = 5;
  high.value = 1;
  acceptor.HandleMessage(high);
  PaxosMessage low = high;
  low.round = 2;
  low.value = 9;
  const auto out = acceptor.HandleMessage(low);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].dst, 200u);  // NACK to the leader service.
  EXPECT_EQ(out[0].msg.type, PaxosMsgType::kPhase1b);
  EXPECT_EQ(out[0].msg.round, 5u);  // Reports the promised round.
}

TEST(AcceptorTest, PromiseRecordsRoundAndReportsState) {
  AcceptorState acceptor(ThreeAcceptorGroup(), 1);
  PaxosMessage p2a;
  p2a.type = PaxosMsgType::kPhase2a;
  p2a.instance = 4;
  p2a.round = 2;
  p2a.value = 55;
  p2a.client = 100;
  acceptor.HandleMessage(p2a);
  PaxosMessage p1a;
  p1a.type = PaxosMsgType::kPhase1a;
  p1a.instance = 4;
  p1a.round = 6;
  const auto out = acceptor.HandleMessage(p1a);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].msg.type, PaxosMsgType::kPhase1b);
  EXPECT_EQ(out[0].msg.vround, 2u);
  EXPECT_EQ(out[0].msg.value, 55u);
  EXPECT_EQ(out[0].msg.sender_id, 1u);
}

TEST(AcceptorTest, StaleInstanceReuseHintsLeader) {
  // A fresh leader re-using instance 1 at a higher round triggers the §9.2
  // sequence hint toward the leader service.
  AcceptorState acceptor(ThreeAcceptorGroup(), 0);
  PaxosMessage old_2a;
  old_2a.type = PaxosMsgType::kPhase2a;
  old_2a.instance = 1;
  old_2a.round = 1;
  old_2a.value = 11;
  acceptor.HandleMessage(old_2a);
  PaxosMessage new_2a = old_2a;
  new_2a.round = 2;  // New leader's ballot.
  new_2a.value = 22;
  const auto out = acceptor.HandleMessage(new_2a);
  ASSERT_EQ(out.size(), 2u);  // Vote to learner + hint to leader.
  EXPECT_EQ(out[0].dst, 30u);
  EXPECT_EQ(out[1].dst, 200u);
  EXPECT_EQ(out[1].msg.last_voted_instance, 1u);
}

TEST(AcceptorTest, RejectsGroupWithoutLearners) {
  PaxosGroupConfig group = ThreeAcceptorGroup();
  group.learners.clear();
  EXPECT_THROW(AcceptorState(group, 0), std::invalid_argument);
}

TEST(LearnerTest, DeliversOnQuorum) {
  LearnerState learner(ThreeAcceptorGroup());
  PaxosMessage vote;
  vote.type = PaxosMsgType::kPhase2b;
  vote.instance = 1;
  vote.round = 1;
  vote.value = 42;
  vote.client = 100;
  vote.sender_id = 0;
  EXPECT_TRUE(learner.HandleMessage(vote, 0).empty());
  vote.sender_id = 1;
  const auto out = learner.HandleMessage(vote, 0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].dst, 100u);
  EXPECT_EQ(out[0].msg.type, PaxosMsgType::kClientResponse);
  EXPECT_EQ(out[0].msg.value, 42u);
  EXPECT_EQ(learner.delivered_count(), 1u);
  EXPECT_EQ(learner.highest_contiguous(), 1u);
  // Third vote: already delivered, no duplicate response.
  vote.sender_id = 2;
  EXPECT_TRUE(learner.HandleMessage(vote, 0).empty());
  EXPECT_EQ(learner.delivered_count(), 1u);
}

TEST(LearnerTest, MixedRoundsDoNotCountTogether) {
  LearnerState learner(ThreeAcceptorGroup());
  PaxosMessage vote;
  vote.type = PaxosMsgType::kPhase2b;
  vote.instance = 1;
  vote.round = 1;
  vote.value = 42;
  vote.sender_id = 0;
  learner.HandleMessage(vote, 0);
  vote.round = 2;  // Different round: not a matching quorum with the first.
  vote.sender_id = 1;
  EXPECT_TRUE(learner.HandleMessage(vote, 0).empty());
  // Same round 2 from another acceptor completes the quorum.
  vote.sender_id = 2;
  EXPECT_EQ(learner.HandleMessage(vote, 0).size(), 0u);  // Noop? value 42,
  // but client is 0 in these votes -> no client response, still delivered.
  EXPECT_EQ(learner.delivered_count(), 1u);
}

TEST(LearnerTest, NoopDeliveryProducesNoClientResponse) {
  LearnerState learner(ThreeAcceptorGroup());
  PaxosMessage vote;
  vote.type = PaxosMsgType::kPhase2b;
  vote.instance = 1;
  vote.round = 1;
  vote.value = kPaxosNoop;
  vote.client = 100;
  vote.sender_id = 0;
  learner.HandleMessage(vote, 0);
  vote.sender_id = 1;
  EXPECT_TRUE(learner.HandleMessage(vote, 0).empty());
  EXPECT_EQ(learner.noop_count(), 1u);
}

TEST(LearnerTest, GapDetectionRequestsFill) {
  LearnerState learner(ThreeAcceptorGroup());
  // Deliver instance 3 only: instances 1-2 are gaps.
  PaxosMessage vote;
  vote.type = PaxosMsgType::kPhase2b;
  vote.instance = 3;
  vote.round = 1;
  vote.value = 9;
  vote.sender_id = 0;
  learner.HandleMessage(vote, 0);
  vote.sender_id = 1;
  learner.HandleMessage(vote, 0);
  EXPECT_EQ(learner.highest_contiguous(), 0u);

  auto fills = learner.CheckGaps(Milliseconds(100), Milliseconds(50));
  ASSERT_EQ(fills.size(), 2u);
  EXPECT_EQ(fills[0].msg.type, PaxosMsgType::kFillRequest);
  EXPECT_EQ(fills[0].msg.instance, 1u);
  EXPECT_EQ(fills[1].msg.instance, 2u);
  EXPECT_EQ(fills[0].dst, 200u);
  // Within the timeout, no duplicate fill requests.
  EXPECT_TRUE(learner.CheckGaps(Milliseconds(120), Milliseconds(50)).empty());
  // After the timeout they fire again.
  EXPECT_EQ(learner.CheckGaps(Milliseconds(200), Milliseconds(50)).size(), 2u);
  EXPECT_EQ(learner.fill_requests_sent(), 4u);
}

TEST(LearnerTest, ContiguityAdvancesThroughBackfill) {
  LearnerState learner(ThreeAcceptorGroup());
  auto vote_for = [&](uint32_t instance) {
    PaxosMessage vote;
    vote.type = PaxosMsgType::kPhase2b;
    vote.instance = instance;
    vote.round = 1;
    vote.value = instance * 10;
    vote.sender_id = 0;
    learner.HandleMessage(vote, 0);
    vote.sender_id = 1;
    learner.HandleMessage(vote, 0);
  };
  vote_for(2);
  vote_for(3);
  EXPECT_EQ(learner.highest_contiguous(), 0u);
  vote_for(1);
  EXPECT_EQ(learner.highest_contiguous(), 3u);
}

// Randomized safety property across a leader migration: under message
// loss, duplication and reordering, no instance ever delivers two
// different non-noop values across two learners. The migration follows the
// deployed protocol: the old leader is quiesced, the service re-pointed,
// and the new leader runs the sequence-learning probe before proposing.
class PaxosSafetyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PaxosSafetyTest, NoConflictingDeliveries) {
  Rng rng(GetParam());
  PaxosGroupConfig group = ThreeAcceptorGroup();
  group.learners = {30, 31};
  LeaderState leader_a(group, 1);
  LeaderState leader_b(group, 2);  // The migrated-to leader.
  AcceptorState acceptors[3] = {{group, 0}, {group, 1}, {group, 2}};
  LearnerState learners[2] = {LearnerState(group), LearnerState(group)};
  std::map<uint32_t, PaxosValue> decided[2];

  std::vector<PaxosOut> wire;
  auto push = [&](std::vector<PaxosOut> msgs) {
    for (auto& m : msgs) {
      wire.push_back(std::move(m));
    }
  };
  bool migrated = false;  // Routes leader_service traffic (switch rule).
  auto deliver_step = [&]() {
    const size_t pick = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(wire.size()) - 1));
    PaxosOut msg = wire[pick];
    wire.erase(wire.begin() + static_cast<long>(pick));
    if (rng.Bernoulli(0.2)) {
      return;  // Lost.
    }
    if (rng.Bernoulli(0.1)) {
      wire.push_back(msg);  // Duplicated.
    }
    if (msg.dst == group.leader_service) {
      push((migrated ? leader_b : leader_a).HandleMessage(msg.msg));
    } else if (msg.dst >= 10 && msg.dst <= 12) {
      push(acceptors[msg.dst - 10].HandleMessage(msg.msg));
    } else if (msg.dst == 30 || msg.dst == 31) {
      const int li = msg.dst == 30 ? 0 : 1;
      if (msg.msg.type == PaxosMsgType::kPhase2b) {
        const uint64_t before = learners[li].delivered_count();
        push(learners[li].HandleMessage(msg.msg, 0));
        if (learners[li].delivered_count() > before) {
          auto [it, inserted] =
              decided[li].try_emplace(msg.msg.instance, msg.msg.value);
          if (!inserted) {
            EXPECT_EQ(it->second, msg.msg.value)
                << "learner " << li << " instance " << msg.msg.instance;
          }
        }
      }
    }
  };

  // Epoch 1: the software leader serves.
  for (int i = 0; i < 30; ++i) {
    push(leader_a.HandleMessage(ClientRequest(1000 + i)));
  }
  int steps = 0;
  while (!wire.empty() && steps++ < 2000 && rng.Bernoulli(0.97)) {
    deliver_step();  // Chaos delivery, possibly leaving messages in flight.
  }
  // Migration: quiesce the old leader (it is deactivated and its in-flight
  // 2a messages have reached the acceptors or been lost — the acceptors'
  // ingress drains before the new leader probes), repoint, then probe.
  std::vector<PaxosOut> residue;
  // Drain a snapshot: HandleMessage outputs are pushed back onto `wire`,
  // which must not be the vector being iterated (iterator invalidation).
  std::vector<PaxosOut> in_flight;
  in_flight.swap(wire);
  for (auto& msg : in_flight) {
    if (msg.dst >= 10 && msg.dst <= 12 && !rng.Bernoulli(0.2)) {
      push(acceptors[msg.dst - 10].HandleMessage(msg.msg));
    } else {
      residue.push_back(msg);
    }
  }
  // Keep non-acceptor traffic (votes to learners etc.) in flight.
  wire.insert(wire.end(), residue.begin(), residue.end());
  migrated = true;
  push(leader_b.StartSequenceLearning());

  // Epoch 2: the hardware leader serves new values (and retried ones).
  for (int i = 0; i < 30; ++i) {
    push(leader_b.HandleMessage(ClientRequest(2000 + i)));
  }
  steps = 0;
  while (!wire.empty() && steps++ < 20000) {
    deliver_step();
  }

  // Someone made progress in both epochs (loss rates permitting).
  EXPECT_GT(decided[0].size() + decided[1].size(), 0u);
  // Cross-learner agreement on instances both decided.
  for (const auto& [inst, value] : decided[0]) {
    auto it = decided[1].find(inst);
    if (it != decided[1].end() && value != kPaxosNoop && it->second != kPaxosNoop) {
      EXPECT_EQ(value, it->second) << "instance " << inst;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PaxosSafetyTest,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

TEST(LeaderTest, SequenceProbeGatesProposals) {
  LeaderState leader(ThreeAcceptorGroup(), 1);
  leader.HandleMessage(ClientRequest(1));  // Old life: instance 1 used.
  leader.Reset(2);
  const auto probe = leader.StartSequenceLearning();
  ASSERT_EQ(probe.size(), 3u);
  EXPECT_EQ(probe[0].msg.type, PaxosMsgType::kPhase1a);
  EXPECT_TRUE(leader.awaiting_sequence());
  // Client requests are buffered, not proposed.
  EXPECT_TRUE(leader.HandleMessage(ClientRequest(55)).empty());
  // First promise: not yet a quorum.
  PaxosMessage p0;
  p0.type = PaxosMsgType::kPhase1b;
  p0.instance = 1;
  p0.round = 2;
  p0.sender_id = 0;
  p0.last_voted_instance = 40;
  EXPECT_TRUE(leader.awaiting_sequence());
  leader.HandleMessage(p0);
  EXPECT_TRUE(leader.awaiting_sequence());
  // Second promise completes the quorum: buffered request proposed at the
  // learned sequence (41), not at a stale instance.
  PaxosMessage p1 = p0;
  p1.sender_id = 1;
  p1.last_voted_instance = 38;
  const auto out = leader.HandleMessage(p1);
  EXPECT_FALSE(leader.awaiting_sequence());
  bool proposed_55 = false;
  for (const auto& m : out) {
    if (m.msg.type == PaxosMsgType::kPhase2a && m.msg.value == 55) {
      proposed_55 = true;
      EXPECT_EQ(m.msg.instance, 41u);
    }
  }
  EXPECT_TRUE(proposed_55);
}

TEST(PaxosMsgTest, PacketBuilderAndNames) {
  PaxosMessage msg;
  msg.type = PaxosMsgType::kPhase2a;
  msg.value = 77;
  const Packet pkt = MakePaxosPacket(1, 2, msg, 555);
  EXPECT_EQ(pkt.proto, AppProto::kPaxos);
  EXPECT_EQ(pkt.size_bytes, kPaxosWireBytes);
  EXPECT_EQ(pkt.created_at, 555);
  EXPECT_EQ(PayloadAs<PaxosMessage>(pkt).value, 77u);
  EXPECT_STREQ(PaxosMsgTypeName(PaxosMsgType::kFillRequest), "fill_request");
}

}  // namespace
}  // namespace incod
