// Flow-control tests: the DCQCN sender rate machine in isolation, and the
// end-to-end backpressure contract — an overloaded single-chain service
// drops on queue overflow with flow control off, and converts that loss
// into pause propagation + sender slowdown with flow control on.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/net/control_msg.h"
#include "src/net/flow_control.h"
#include "src/net/link.h"
#include "src/net/packet.h"
#include "src/scenarios/scenario_spec.h"
#include "src/sim/simulation.h"
#include "src/workload/client.h"

namespace incod {
namespace {

class CollectorSink : public PacketSink {
 public:
  explicit CollectorSink(Simulation* sim = nullptr, std::string name = "collector")
      : sim_(sim), name_(std::move(name)) {}

  void Receive(Packet packet) override {
    packets.push_back(packet);
    if (sim_ != nullptr) {
      arrival_times.push_back(sim_->Now());
    }
  }
  std::string SinkName() const override { return name_; }

  std::vector<Packet> packets;
  std::vector<SimTime> arrival_times;

 private:
  Simulation* sim_;
  std::string name_;
};

Packet MakeRawPacket(NodeId src, NodeId dst, uint32_t bytes = 64) {
  Packet pkt;
  pkt.src = src;
  pkt.dst = dst;
  pkt.proto = AppProto::kRaw;
  pkt.size_bytes = bytes;
  return pkt;
}

TEST(DcqcnTest, CnpMultiplicativeDecreaseAndFullRecovery) {
  Simulation sim;
  DcqcnConfig config;
  config.enabled = true;
  DcqcnRateController ctrl(sim, config);
  EXPECT_DOUBLE_EQ(ctrl.current_rate_pps(), config.line_rate_pps);

  // Alpha starts (and, with a fresh CNP, stays) at 1, so each CNP halves the
  // current rate: R <- R * (1 - alpha/2).
  ctrl.OnCnp();
  EXPECT_DOUBLE_EQ(ctrl.current_rate_pps(), config.line_rate_pps / 2);
  ctrl.OnCnp();
  EXPECT_DOUBLE_EQ(ctrl.current_rate_pps(), config.line_rate_pps / 4);
  EXPECT_EQ(ctrl.cnps_received(), 2u);

  // Recovery ticks run with no further CNPs: rate must climb monotonically
  // (sampled just past each period boundary) and land exactly at line rate,
  // after which the timer self-quiesces and the simulation drains.
  std::vector<double> samples;
  for (int i = 1; i <= 64; ++i) {
    sim.ScheduleAt(i * config.recovery_period + Microseconds(1),
                   [&ctrl, &samples] { samples.push_back(ctrl.current_rate_pps()); });
  }
  sim.Run();
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i], samples[i - 1]) << "recovery sample " << i;
  }
  EXPECT_DOUBLE_EQ(ctrl.current_rate_pps(), config.line_rate_pps);
  EXPECT_DOUBLE_EQ(ctrl.alpha() + 1.0, 1.0 + ctrl.alpha());  // Finite.
}

TEST(DcqcnTest, RepeatedCnpsFloorAtMinRate) {
  Simulation sim;
  DcqcnConfig config;
  config.enabled = true;
  DcqcnRateController ctrl(sim, config);
  for (int i = 0; i < 200; ++i) {
    ctrl.OnCnp();
  }
  EXPECT_DOUBLE_EQ(ctrl.current_rate_pps(), config.min_rate_pps);
  sim.Run();  // Even from the floor, recovery restores line rate and stops.
  EXPECT_DOUBLE_EQ(ctrl.current_rate_pps(), config.line_rate_pps);
}

TEST(DcqcnTest, PacerSpacesTransmissionsAtCurrentRate) {
  Simulation sim;
  CollectorSink a(&sim, "a");
  CollectorSink b(&sim, "b");
  Link link(sim, {}, "uplink");
  link.Connect(&a, &b);
  DcqcnConfig config;
  config.enabled = true;
  config.line_rate_pps = 1.0e5;  // 10 us between transmissions.
  DcqcnRateController ctrl(sim, config);
  ctrl.AttachUplink(&link, &a);
  for (int i = 0; i < 5; ++i) {
    ctrl.Submit(MakeRawPacket(1, 2, 1000));
  }
  sim.Run();
  ASSERT_EQ(b.packets.size(), 5u);
  for (size_t i = 1; i < b.arrival_times.size(); ++i) {
    EXPECT_EQ(b.arrival_times[i] - b.arrival_times[i - 1], Microseconds(10));
  }
  EXPECT_EQ(ctrl.paced_sent(), 5u);
  EXPECT_EQ(ctrl.backlog(), 0u);
  EXPECT_EQ(ctrl.pacer_dropped(), 0u);
}

TEST(DcqcnTest, CongestedUplinkHoldsPacerUntilResume) {
  Simulation sim;
  CollectorSink a(&sim, "a");
  CollectorSink b(&sim, "b");
  Link link(sim, {}, "uplink");
  link.Connect(&a, &b);
  DcqcnConfig config;
  config.enabled = true;
  DcqcnRateController ctrl(sim, config);
  ctrl.AttachUplink(&link, &a);
  ctrl.SetUplinkCongested(true);
  for (int i = 0; i < 3; ++i) {
    ctrl.Submit(MakeRawPacket(1, 2, 1000));
  }
  sim.ScheduleAt(Microseconds(50), [&b, &ctrl] {
    EXPECT_TRUE(b.packets.empty());  // Held: nothing left the pacer.
    EXPECT_EQ(ctrl.backlog(), 3u);
  });
  sim.ScheduleAt(Microseconds(51), [&ctrl] { ctrl.SetUplinkCongested(false); });
  sim.Run();
  ASSERT_EQ(b.packets.size(), 3u);
  EXPECT_GE(b.arrival_times.front(), Microseconds(51));
  EXPECT_EQ(ctrl.paced_sent(), 3u);
}

TEST(DcqcnTest, PacerCapacityDropsExcessSubmissions) {
  Simulation sim;
  CollectorSink a(&sim, "a");
  CollectorSink b(&sim, "b");
  Link link(sim, {}, "uplink");
  link.Connect(&a, &b);
  DcqcnConfig config;
  config.enabled = true;
  config.pacer_capacity = 2;
  DcqcnRateController ctrl(sim, config);
  ctrl.AttachUplink(&link, &a);
  ctrl.SetUplinkCongested(true);  // Hold so the queue can only grow.
  for (int i = 0; i < 5; ++i) {
    ctrl.Submit(MakeRawPacket(1, 2, 1000));
  }
  EXPECT_EQ(ctrl.backlog(), 2u);
  EXPECT_EQ(ctrl.pacer_dropped(), 3u);
}

// The end-to-end contract. One overloaded single-chain KVS service
// (client -- conventional NIC -- 1-core host), driven well past host
// capacity. With flow control off the host rx queue overflows and requests
// are silently dropped; with the same offered load and flow control on, the
// host pauses its PCIe uplink, the NIC propagates the pause to the client
// link, ECN-marked arrivals trigger CNPs, and the client's DCQCN machine
// slows down — drops convert to backpressure.
ScenarioSpec OverloadedKvsSpec(bool flow_on) {
  ScenarioSpec spec;
  spec.name = flow_on ? "overload-flow" : "overload-drop";
  spec.host.config.name = "kvs-host";
  spec.host.config.node = 1;
  spec.host.config.num_cores = 1;
  spec.host.apps = {"kvs"};
  spec.target.kind = ScenarioTargetKind::kConventionalNic;
  spec.target.device_node = 50;
  spec.workload.kind = ScenarioWorkloadSpec::Kind::kKvUniformGets;
  spec.workload.rate_per_second = 2.0e6;
  spec.workload.keyspace = 64;
  spec.workload.client.node = 100;
  spec.flow.enabled = flow_on;
  // Tight host watermarks so ingress pause engages well before the rx queue
  // capacity (1024) that the no-flow run overflows.
  spec.flow.host.pause_high_watermark = 64;
  spec.flow.host.pause_low_watermark = 16;
  return spec;
}

TEST(FlowScenarioTest, OverloadDropsWithoutFlowControl) {
  Simulation sim(42);
  ScenarioTestbed testbed(sim, OverloadedKvsSpec(false));
  sim.RunUntil(Milliseconds(20));
  ASSERT_NE(testbed.server(), nullptr);
  ASSERT_NE(testbed.client(), nullptr);
  EXPECT_GT(testbed.client()->received(), 0u);
  // Drop-tail regime: the 1-core host cannot absorb 2M req/s and sheds load.
  EXPECT_GT(testbed.server()->requests_dropped(), 0u);
  EXPECT_EQ(testbed.server()->pause_frames_sent(), 0u);
  EXPECT_EQ(testbed.server()->cnps_sent(), 0u);
  EXPECT_EQ(testbed.client()->dcqcn(), nullptr);
}

TEST(FlowScenarioTest, OverloadBackpressuresWithFlowControl) {
  Simulation sim(42);
  ScenarioTestbed testbed(sim, OverloadedKvsSpec(true));
  sim.RunUntil(Milliseconds(20));
  Server* server = testbed.server();
  LoadClient* client = testbed.client();
  ASSERT_NE(server, nullptr);
  ASSERT_NE(client, nullptr);
  EXPECT_GT(client->received(), 0u);

  // No loss anywhere on the chain: the host never overflowed its rx queue
  // and the paused PCIe link deferred instead of dropping.
  EXPECT_EQ(server->requests_dropped(), 0u);
  Link* pcie = server->uplink();
  ASSERT_NE(pcie, nullptr);
  EXPECT_EQ(pcie->dropped_overflow(server), 0u);

  // The backpressure machinery actually engaged, hop by hop: host ingress
  // pause, PCIe packets deferred while paused, the NIC propagating the
  // congestion out to the client link, and CNPs driving the client's rate
  // machine below line rate.
  EXPECT_GT(server->pause_frames_sent(), 0u);
  EXPECT_GT(pcie->paused_deferred(server), 0u);
  ASSERT_NE(testbed.nic(), nullptr);
  EXPECT_GT(testbed.nic()->pause_propagations(), 0u);
  EXPECT_GT(server->cnps_sent(), 0u);
  ASSERT_NE(client->dcqcn(), nullptr);
  EXPECT_GT(client->dcqcn()->cnps_received(), 0u);
  EXPECT_LT(client->dcqcn()->current_rate_pps(), DcqcnConfig{}.line_rate_pps);
  EXPECT_GT(client->dcqcn()->paced_sent(), 0u);
}

}  // namespace
}  // namespace incod
