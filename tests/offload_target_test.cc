// Tests for the OffloadTarget abstraction: the behavioral SmartNIC, the
// switch-ASIC adapter, and the §9.1 controllers running unmodified against
// non-FPGA targets.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/device/fpga_nic.h"
#include "src/device/offload_target.h"
#include "src/device/smartnic.h"
#include "src/device/switch_offload.h"
#include "src/dns/dns_message.h"
#include "src/dns/switch_dns.h"
#include "src/dns/zone.h"
#include "src/kvs/lake.h"
#include "src/net/topology.h"
#include "src/ondemand/controller.h"
#include "src/ondemand/energy_advisor.h"
#include "src/ondemand/migrator.h"
#include "src/sim/simulation.h"

namespace incod {
namespace {

struct Collector : PacketSink {
  void Receive(Packet packet) override { packets.push_back(std::move(packet)); }
  std::string SinkName() const override { return "collector"; }
  std::vector<Packet> packets;
};

// ---- Behavioral SmartNIC ----

SmartNicPreset AccelNetPreset() { return StandardSmartNicPresets()[0]; }

struct SmartNicHarness {
  SmartNicHarness()
      : sim(1),
        topo(sim),
        nic(sim, AccelNetPreset(), Config()) {
    net_link = topo.Connect(&client, &nic);
    host_link = topo.Connect(&nic, &host);
    nic.SetNetworkLink(net_link);
    nic.SetHostLink(host_link);
  }
  static SmartNicDeviceConfig Config() {
    SmartNicDeviceConfig config;
    config.host_node = 1;
    config.offload_proto = AppProto::kKv;
    return config;
  }
  Packet KvPacket() {
    Packet pkt;
    pkt.src = 100;
    pkt.dst = 1;
    pkt.proto = AppProto::kKv;
    return pkt;
  }
  Simulation sim;
  Topology topo;
  SmartNic nic;
  Collector client;
  Collector host;
  Link* net_link;
  Link* host_link;
};

TEST(SmartNicTest, InactivePassesThroughToHost) {
  SmartNicHarness h;
  h.nic.Receive(h.KvPacket());
  h.sim.Run();
  EXPECT_EQ(h.host.packets.size(), 1u);
  EXPECT_EQ(h.nic.app_ingress_packets(), 1u);  // Classifier counts anyway.
  EXPECT_EQ(h.nic.processed_in_hardware(), 0u);
}

TEST(SmartNicTest, ActiveHandlerRepliesInline) {
  SmartNicHarness h;
  h.nic.SetHandler([](const Packet& request) {
    Packet reply;
    reply.src = request.dst;
    reply.dst = request.src;
    reply.proto = request.proto;
    return std::optional<Packet>(reply);
  });
  h.nic.SetAppActive(true);
  h.nic.Receive(h.KvPacket());
  h.sim.Run();
  EXPECT_EQ(h.client.packets.size(), 1u);
  EXPECT_TRUE(h.host.packets.empty());
  EXPECT_EQ(h.nic.processed_in_hardware(), 1u);
}

TEST(SmartNicTest, NonMatchingTrafficNeverClaimed) {
  SmartNicHarness h;
  h.nic.SetHandler([](const Packet&) { return std::optional<Packet>(Packet{}); });
  h.nic.SetAppActive(true);
  Packet raw = h.KvPacket();
  raw.proto = AppProto::kRaw;
  h.nic.Receive(raw);
  h.sim.Run();
  EXPECT_EQ(h.host.packets.size(), 1u);
  EXPECT_EQ(h.nic.app_ingress_packets(), 0u);
}

TEST(SmartNicTest, ParkDepthOrdersPower) {
  // Deeper parking saves more: power gated < clock gated < warm < active.
  SmartNicHarness h;
  h.nic.SetAppActive(false);
  const double warm = h.nic.PowerWatts();
  h.nic.SetClockGating(true);
  const double gated = h.nic.PowerWatts();
  h.nic.PowerGateParkedApp();
  const double off = h.nic.PowerWatts();
  EXPECT_LT(off, gated);
  EXPECT_LT(gated, warm);
  h.nic.SetAppActive(true);  // Waking restores the engine.
  EXPECT_GE(h.nic.PowerWatts(), warm);
}

TEST(SmartNicTest, TraitsFollowArchitecture) {
  Simulation sim(1);
  const auto presets = StandardSmartNicPresets();
  for (const auto& preset : presets) {
    SmartNic nic(sim, preset, SmartNicHarness::Config());
    const bool has_fpga = preset.arch == SmartNicArch::kFpga ||
                          preset.arch == SmartNicArch::kAsicPlusFpga;
    EXPECT_EQ(nic.Traits().supports_reprogramming, has_fpga) << preset.name;
    EXPECT_TRUE(nic.Traits().supports_clock_gating);
    // Fixed-function engines silently ignore reprogram requests.
    nic.SetReprogramming(true);
    EXPECT_EQ(nic.reprogramming(), has_fpga) << preset.name;
    nic.SetReprogramming(false);
  }
}

TEST(SmartNicTest, ReprogrammingHaltsTraffic) {
  SmartNicHarness h;  // AccelNet: FPGA arch, reprogrammable.
  h.nic.SetReprogramming(true);
  h.nic.Receive(h.KvPacket());
  h.sim.Run();
  EXPECT_TRUE(h.host.packets.empty());
  EXPECT_EQ(h.nic.dropped(), 1u);
}

TEST(SmartNicTest, OffloadSurfaceMatchesPreset) {
  SmartNicHarness h;
  EXPECT_DOUBLE_EQ(h.nic.OffloadCapacityPps(), AccelNetPreset().peak_mpps * 1e6);
  EXPECT_EQ(h.nic.TargetName(), "smartnic/accelnet-fpga");
}

TEST(SmartNicTest, FixedFunctionDeepParkDegradesToClockGating) {
  // An ASIC SmartNIC has no bitstream to remove: reprogram-style parking
  // can only clock-gate the engine, never claim full power-gating savings.
  Simulation sim(1);
  const SmartNicPreset asic = StandardSmartNicPresets()[1];  // agilio-asic.
  SmartNic nic(sim, asic, SmartNicHarness::Config());
  SmartNic reference(sim, asic, SmartNicHarness::Config());
  reference.SetClockGating(true);
  nic.PowerGateParkedApp();
  EXPECT_DOUBLE_EQ(nic.PowerWatts(), reference.PowerWatts());
  EXPECT_TRUE(nic.clock_gating());
}

TEST(SmartNicTest, AdvisorModelMatchesDeviceEnvelope) {
  // MakeSmartNicRatePower must track the behavioral device's power model:
  // idle at rate 0, max at capacity, linear between.
  const SmartNicPreset preset = AccelNetPreset();
  const double capacity = preset.peak_mpps * 1e6;
  auto fn = MakeSmartNicRatePower(0.0, preset.idle_watts, preset.max_watts, capacity);
  EXPECT_DOUBLE_EQ(fn(0), preset.idle_watts);
  EXPECT_DOUBLE_EQ(fn(capacity), preset.max_watts);
  EXPECT_DOUBLE_EQ(fn(capacity / 2),
                   preset.idle_watts + (preset.max_watts - preset.idle_watts) / 2);
  EXPECT_DOUBLE_EQ(fn(2 * capacity), preset.max_watts);  // Saturates.
}

// ---- Switch-ASIC offload adapter ----

struct SwitchTargetHarness {
  SwitchTargetHarness() : sim(1), topo(sim), sw(sim, AsicConfig()) {
    zone.FillSynthetic(32);
    DnsSwitchConfig config;
    config.dns_service = 1;
    program = std::make_unique<DnsSwitchProgram>(&zone, config);
    target = std::make_unique<SwitchOffloadTarget>(sw, *program, AppProto::kDns,
                                                   /*service=*/1);
    topo.ConnectToSwitch(&sw, &client, 100);
    topo.ConnectToSwitch(&sw, &host, 1);
  }
  static SwitchAsicConfig AsicConfig() {
    SwitchAsicConfig config;
    config.rate_window = Milliseconds(50);
    return config;
  }
  Packet Query(int name_index) {
    DnsMessage query;
    query.id = 1;
    query.questions.push_back(
        DnsQuestion{Zone::SyntheticName(name_index), kDnsTypeA, kDnsClassIn});
    Packet pkt;
    pkt.src = 100;
    pkt.dst = 1;
    pkt.proto = AppProto::kDns;
    pkt.size_bytes = DnsWireBytes(query);
    pkt.payload = query;
    return pkt;
  }
  Simulation sim;
  Topology topo;
  Zone zone;
  SwitchAsic sw;
  std::unique_ptr<DnsSwitchProgram> program;
  std::unique_ptr<SwitchOffloadTarget> target;
  Collector client;
  Collector host;
};

TEST(SwitchOffloadTargetTest, ActivationLoadsAndUnloadsProgram) {
  SwitchTargetHarness h;
  EXPECT_FALSE(h.target->app_active());
  EXPECT_TRUE(h.sw.LoadedPrograms().empty());
  h.target->SetAppActive(true);
  EXPECT_EQ(h.sw.LoadedPrograms().size(), 1u);
  h.target->SetAppActive(false);
  EXPECT_TRUE(h.sw.LoadedPrograms().empty());
}

TEST(SwitchOffloadTargetTest, ClassifierSignalVisibleWhileParked) {
  SwitchTargetHarness h;
  h.sw.Receive(h.Query(3));
  h.sim.Run();
  // Parked: query forwarded to the host, yet the per-proto ingress counted.
  EXPECT_EQ(h.host.packets.size(), 1u);
  EXPECT_EQ(h.target->app_ingress_packets(), 1u);
  EXPECT_EQ(h.program->answered(), 0u);
}

TEST(SwitchOffloadTargetTest, RepliesCrossingTheSwitchDontInflateTheSignal) {
  // The NSD host's reply to a forwarded query traverses the same pipeline
  // with the same proto; the service filter must keep it out of the
  // request-rate signal, or switch targets would measure 2x the app rate.
  SwitchTargetHarness h;
  h.sw.Receive(h.Query(3));
  Packet reply;
  reply.src = 1;
  reply.dst = 100;
  reply.proto = AppProto::kDns;
  h.sw.Receive(reply);
  h.sim.Run();
  EXPECT_EQ(h.target->app_ingress_packets(), 1u);  // Query only.
  // Program replies re-entering the pipeline are filtered the same way.
  h.target->SetAppActive(true);
  h.sw.Receive(h.Query(4));
  h.sim.Run();
  EXPECT_EQ(h.program->answered(), 1u);
  EXPECT_EQ(h.target->app_ingress_packets(), 2u);  // Still queries only.
}

TEST(SwitchOffloadTargetTest, ActiveProgramConsumesAtLineRate) {
  SwitchTargetHarness h;
  h.target->SetAppActive(true);
  h.sw.Receive(h.Query(3));
  h.sim.Run();
  EXPECT_EQ(h.client.packets.size(), 1u);
  EXPECT_TRUE(h.host.packets.empty());
  EXPECT_EQ(h.program->answered(), 1u);
}

TEST(SwitchOffloadTargetTest, MarginalPowerZeroWhileParked) {
  SwitchTargetHarness h;
  EXPECT_DOUBLE_EQ(h.target->OffloadPowerWatts(), 0.0);
  h.target->SetAppActive(true);
  // Active but no traffic: marginal watts ~0 (the §9.4 argument).
  EXPECT_LT(h.target->OffloadPowerWatts(), 0.5);
  EXPECT_GT(h.target->OffloadCapacityPps(), 1e9);
  // Park knobs are no-ops on the always-warm pipeline.
  h.target->SetClockGating(true);
  EXPECT_FALSE(h.target->clock_gating());
  EXPECT_FALSE(h.target->Traits().supports_reprogramming);
}

TEST(SwitchOffloadTargetTest, KilledProgramUnloadsAndStaysDead) {
  SwitchTargetHarness h;
  h.target->SetAppActive(true);
  EXPECT_EQ(h.sw.LoadedPrograms().size(), 1u);
  h.target->KillEngine();
  EXPECT_FALSE(h.target->TargetAlive());
  EXPECT_FALSE(h.target->app_active());
  EXPECT_TRUE(h.sw.LoadedPrograms().empty());
  // A pipeline program cannot half-die: matching traffic falls through to
  // the normal route toward the host, never into dead match-action stages.
  h.sw.Receive(h.Query(3));
  h.sim.Run();
  EXPECT_EQ(h.host.packets.size(), 1u);
  EXPECT_EQ(h.program->answered(), 0u);
  // Reactivation is refused: recovery means re-placement, not resurrection.
  h.target->SetAppActive(true);
  EXPECT_FALSE(h.target->app_active());
  EXPECT_TRUE(h.sw.LoadedPrograms().empty());
}

// ---- The same §9.1 controller code drives a switch target ----

TEST(ControllerPortabilityTest, NetworkControllerDrivesSwitchTarget) {
  SwitchTargetHarness h;
  ClassifierMigrator migrator(h.sim, *h.target,
                              ClassifierMigrator::Options::FromPolicy(ParkPolicy::kKeepWarm));
  NetworkControllerConfig config;
  config.up_rate_pps = 50000;
  config.up_window = Milliseconds(200);
  config.down_rate_pps = 10000;
  config.down_window = Milliseconds(500);
  config.min_dwell = Milliseconds(100);
  NetworkController controller(h.sim, *h.target, migrator, config);
  controller.Start();

  // 100 kqps for one second: the controller must load the program.
  const auto gap = static_cast<SimDuration>(1e9 / 100000);
  for (int i = 0; i < 100000; ++i) {
    h.sim.ScheduleAt(i * gap, [&h, i] { h.sw.Receive(h.Query(i % 32)); });
  }
  h.sim.RunUntil(Seconds(1));
  EXPECT_EQ(migrator.placement(), Placement::kNetwork);
  EXPECT_TRUE(h.target->app_active());
  EXPECT_GT(h.program->answered(), 0u);

  // Silence: the controller must shift DNS back to the host.
  h.sim.RunUntil(Seconds(3));
  EXPECT_EQ(migrator.placement(), Placement::kHost);
  EXPECT_TRUE(h.sw.LoadedPrograms().empty());
}

// ---- FpgaNic's OffloadTarget surface ----

TEST(FpgaTargetTest, TargetNameIncludesApp) {
  Simulation sim(1);
  FpgaNicConfig config;
  config.name = "netfpga";
  FpgaNic fpga(sim, config);
  EXPECT_EQ(fpga.TargetName(), "netfpga");
  LakeCache lake{LakeConfig{}};
  fpga.InstallApp(&lake);
  EXPECT_EQ(fpga.TargetName(), "netfpga/lake");
  EXPECT_TRUE(fpga.Traits().supports_clock_gating);
  EXPECT_TRUE(fpga.Traits().supports_memory_reset);
  EXPECT_TRUE(fpga.Traits().supports_reprogramming);
  EXPECT_GT(fpga.OffloadCapacityPps(), 0.0);
}

TEST(FpgaTargetTest, PowerGateParkedAppKeepsInfrastructure) {
  Simulation sim(1);
  FpgaNicConfig config;
  FpgaNic fpga(sim, config);
  LakeCache lake{LakeConfig{}};
  fpga.InstallApp(&lake);
  const double before = fpga.PowerWatts();
  fpga.PowerGateParkedApp();
  const double after = fpga.PowerWatts();
  EXPECT_LT(after, before);
  // Shell and PCIe stay up (§9.2): at least the 11 W reference NIC remains.
  EXPECT_GE(after, kFpgaShellWatts + kFpgaPcieWatts);
}

TEST(FpgaTargetTest, KilledEngineDropsClaimedTrafficAndCounts) {
  Simulation sim(1);
  FpgaNic fpga(sim, FpgaNicConfig{});
  LakeCache lake{LakeConfig{}};
  fpga.InstallApp(&lake);
  fpga.SetAppActive(true);
  fpga.KillEngine();
  EXPECT_FALSE(fpga.TargetAlive());
  // The classifier still steers KV traffic into the (dead) app core: the
  // packet is dropped and counted, never serviced and never punted to the
  // host — that placement only becomes authoritative after recovery.
  Packet pkt;
  pkt.src = 100;
  pkt.dst = 1;
  pkt.proto = AppProto::kKv;
  pkt.payload = KvRequest{KvOp::kGet, 3, 0};
  fpga.Receive(pkt);
  sim.Run();
  EXPECT_EQ(fpga.dead_dropped(), 1u);
  EXPECT_EQ(fpga.processed_in_hardware(), 0u);
  // A dead engine stops drawing dynamic power.
  EXPECT_DOUBLE_EQ(fpga.ProcessedRatePerSecond(), 0.0);
}

}  // namespace
}  // namespace incod
