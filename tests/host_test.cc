// Tests for the server execution model, network stacks, and power coupling.
#include <gtest/gtest.h>

#include <memory>

#include "src/host/server.h"
#include "src/host/software_app.h"
#include "src/net/link.h"
#include "src/net/topology.h"
#include "src/power/cpu_power.h"
#include "src/sim/simulation.h"

namespace incod {
namespace {

// Echo app with a fixed CPU cost.
class EchoApp : public SoftwareApp {
 public:
  EchoApp(AppProto proto, SimDuration cpu_time, int threads,
          std::optional<NodeId> service = std::nullopt)
      : proto_(proto), cpu_time_(cpu_time), threads_(threads), service_(service) {}

  AppProto proto() const override { return proto_; }
  std::string AppName() const override { return "echo"; }
  int num_threads() const override { return threads_; }
  std::optional<NodeId> service_address() const override { return service_; }
  SimDuration CpuTimePerRequest(const Packet&) const override { return cpu_time_; }

  void Execute(Packet packet) override {
    ++executed;
    Packet reply;
    reply.dst = packet.src;
    reply.proto = proto_;
    reply.id = packet.id;
    server()->Transmit(reply);
  }

  int executed = 0;

 private:
  AppProto proto_;
  SimDuration cpu_time_;
  int threads_;
  std::optional<NodeId> service_;
};

class CountingSink : public PacketSink {
 public:
  void Receive(Packet packet) override {
    ++count;
    last = packet;
  }
  std::string SinkName() const override { return "counter"; }
  int count = 0;
  Packet last;
};

ServerConfig BasicConfig() {
  ServerConfig config;
  config.name = "test-server";
  config.node = 1;
  config.num_cores = 4;
  config.power_curve = I7SyntheticCurve();
  config.stack_rx_cost = Microseconds(1);
  config.stack_tx_cost = Nanoseconds(500);
  return config;
}

Packet RequestTo(NodeId dst, AppProto proto, uint64_t id = 1, NodeId src = 100) {
  Packet pkt;
  pkt.src = src;
  pkt.dst = dst;
  pkt.proto = proto;
  pkt.id = id;
  return pkt;
}

struct ServerHarness {
  explicit ServerHarness(ServerConfig config = BasicConfig())
      : sim(), topo(sim), server(sim, config) {
    link = topo.Connect(&server, &sink);
    server.SetUplink(link);
  }
  Simulation sim;
  Topology topo;
  CountingSink sink;
  Server server;
  Link* link;
};

TEST(ServerTest, ProcessesRequestAndReplies) {
  ServerHarness h;
  EchoApp app(AppProto::kKv, Microseconds(2), 1);
  h.server.BindApp(&app);
  h.server.Receive(RequestTo(1, AppProto::kKv));
  h.sim.Run();
  EXPECT_EQ(app.executed, 1);
  EXPECT_EQ(h.sink.count, 1);
  EXPECT_EQ(h.server.requests_completed(), 1u);
}

TEST(ServerTest, ServiceTimeIncludesStackCosts) {
  ServerHarness h;
  EchoApp app(AppProto::kKv, Microseconds(2), 1);
  h.server.BindApp(&app);
  h.server.Receive(RequestTo(1, AppProto::kKv));
  SimTime done = -1;
  // Completion happens at rx(1us) + cpu(2us) + tx(0.5us) = 3.5 us.
  h.sim.Schedule(Microseconds(3) + Nanoseconds(499), [&] {
    EXPECT_EQ(app.executed, 0);
    done = 0;
  });
  h.sim.Run();
  EXPECT_EQ(done, 0);
  EXPECT_EQ(app.executed, 1);
}

TEST(ServerTest, DropsUnknownProtocol) {
  ServerHarness h;
  h.server.Receive(RequestTo(1, AppProto::kDns));
  h.sim.Run();
  EXPECT_EQ(h.server.requests_dropped(), 1u);
}

TEST(ServerTest, ThroughputSaturatesAtThreadCapacity) {
  // 1 thread, 4 us total service -> 250 K/s capacity. Offer 400 K/s for
  // 100 ms: only ~25 K complete.
  ServerHarness h;
  EchoApp app(AppProto::kKv, Nanoseconds(2500), 1);
  h.server.BindApp(&app);
  const int offered = 40000;  // over 100 ms
  for (int i = 0; i < offered; ++i) {
    h.sim.Schedule(i * Microseconds(100) / 40, [&h, i] {
      h.server.Receive(RequestTo(1, AppProto::kKv, static_cast<uint64_t>(i)));
    });
  }
  h.sim.RunUntil(Milliseconds(100));
  EXPECT_NEAR(static_cast<double>(h.server.requests_completed()), 25000.0, 500.0);
  EXPECT_GT(h.server.requests_dropped(), 0u);
}

TEST(ServerTest, MultipleThreadsScaleThroughput) {
  ServerHarness h;
  EchoApp app(AppProto::kKv, Nanoseconds(2500), 4);
  h.server.BindApp(&app);
  for (int i = 0; i < 80000; ++i) {
    h.sim.Schedule(i * Microseconds(100) / 80, [&h, i] {
      h.server.Receive(RequestTo(1, AppProto::kKv, static_cast<uint64_t>(i)));
    });
  }
  h.sim.RunUntil(Milliseconds(100));
  // 4 threads x 250 K/s = 1 M/s -> 80 K in 100 ms all served.
  EXPECT_NEAR(static_cast<double>(h.server.requests_completed()), 80000.0, 2000.0);
}

TEST(ServerTest, UtilizationDrivesPower) {
  ServerHarness h;
  EchoApp app(AppProto::kKv, Nanoseconds(2500), 4);
  h.server.BindApp(&app);
  const double idle = h.server.PowerWatts();
  // Saturate all 4 threads for 50 ms.
  for (int i = 0; i < 100000; ++i) {
    h.sim.Schedule(i * 500, [&h, i] {
      h.server.Receive(RequestTo(1, AppProto::kKv, static_cast<uint64_t>(i)));
    });
  }
  h.sim.RunUntil(Milliseconds(50));
  EXPECT_GT(h.server.TotalUtilization(), 3.0);
  EXPECT_GT(h.server.PowerWatts(), idle + 40.0);
}

TEST(ServerTest, IdleServerDrawsIdlePower) {
  ServerHarness h;
  h.sim.RunUntil(Milliseconds(50));
  EXPECT_DOUBLE_EQ(h.server.PowerWatts(), I7SyntheticCurve().Evaluate(0));
  EXPECT_DOUBLE_EQ(h.server.TotalUtilization(), 0.0);
}

TEST(ServerTest, DpdkStackBurnsPollCoresAtIdle) {
  ServerConfig config = BasicConfig();
  config.stack = NetStackType::kDpdk;
  config.dpdk_poll_cores = 2;
  config.power_curve = I7DpdkCurve();
  ServerHarness h(config);
  h.sim.RunUntil(Milliseconds(50));
  EXPECT_DOUBLE_EQ(h.server.TotalUtilization(), 2.0);
  EXPECT_GT(h.server.PowerWatts(), 90.0);
}

TEST(ServerTest, BackgroundLoadAddsUtilization) {
  ServerHarness h;
  h.server.SetBackgroundUtilization(3.0);
  h.sim.RunUntil(Milliseconds(10));
  EXPECT_DOUBLE_EQ(h.server.TotalUtilization(), 3.0);
}

TEST(ServerTest, BackgroundLoadObjectStartsAndStops) {
  ServerHarness h;
  BackgroundLoad load(h.sim, h.server, 2.0);
  load.StartAt(Milliseconds(10));
  load.StopAt(Milliseconds(30));
  h.sim.RunUntil(Milliseconds(20));
  EXPECT_TRUE(load.active());
  EXPECT_DOUBLE_EQ(h.server.background_utilization(), 2.0);
  h.sim.RunUntil(Milliseconds(40));
  EXPECT_FALSE(load.active());
  EXPECT_DOUBLE_EQ(h.server.background_utilization(), 0.0);
}

TEST(ServerTest, DispatchByServiceAddress) {
  ServerHarness h;
  EchoApp leader(AppProto::kPaxos, Microseconds(1), 1, NodeId{200});
  EchoApp learner(AppProto::kPaxos, Microseconds(1), 1, NodeId{300});
  h.server.BindApp(&leader);
  h.server.BindApp(&learner);
  h.server.Receive(RequestTo(200, AppProto::kPaxos, 1));
  h.server.Receive(RequestTo(300, AppProto::kPaxos, 2));
  h.server.Receive(RequestTo(300, AppProto::kPaxos, 3));
  h.sim.Run();
  EXPECT_EQ(leader.executed, 1);
  EXPECT_EQ(learner.executed, 2);
}

TEST(ServerTest, FallbackToWildcardApp) {
  ServerHarness h;
  EchoApp wildcard(AppProto::kPaxos, Microseconds(1), 1);
  EchoApp addressed(AppProto::kPaxos, Microseconds(1), 1, NodeId{200});
  h.server.BindApp(&wildcard);
  h.server.BindApp(&addressed);
  h.server.Receive(RequestTo(999, AppProto::kPaxos, 1));  // No address match.
  h.sim.Run();
  EXPECT_EQ(wildcard.executed, 1);
  EXPECT_EQ(addressed.executed, 0);
}

TEST(ServerTest, DuplicateBindRejected) {
  ServerHarness h;
  EchoApp a(AppProto::kKv, Microseconds(1), 1);
  EchoApp b(AppProto::kKv, Microseconds(1), 1);
  h.server.BindApp(&a);
  EXPECT_THROW(h.server.BindApp(&b), std::invalid_argument);
  EXPECT_THROW(h.server.BindApp(nullptr), std::invalid_argument);
}

TEST(ServerTest, AppCpuUsageRisesUnderLoad) {
  ServerHarness h;
  EchoApp app(AppProto::kKv, Nanoseconds(2500), 1);
  h.server.BindApp(&app);
  EXPECT_DOUBLE_EQ(h.server.AppCpuUsage(AppProto::kKv), 0.0);
  for (int i = 0; i < 50000; ++i) {
    h.sim.Schedule(i * 1000, [&h, i] {
      h.server.Receive(RequestTo(1, AppProto::kKv, static_cast<uint64_t>(i)));
    });
  }
  h.sim.RunUntil(Milliseconds(20));
  EXPECT_GT(h.server.AppCpuUsage(AppProto::kKv), 0.5);
}

TEST(ServerTest, TransmitWithoutUplinkThrows) {
  Simulation sim;
  Server server(sim, BasicConfig());
  Packet pkt;
  EXPECT_THROW(server.Transmit(pkt), std::logic_error);
}

TEST(ServerTest, RaplTracksDynamicPower) {
  ServerHarness h;
  const double idle_rapl = h.server.RaplPackageWatts();
  h.server.SetBackgroundUtilization(4.0);
  h.sim.RunUntil(Milliseconds(10));
  EXPECT_GT(h.server.RaplPackageWatts(), idle_rapl + 30.0);
}

TEST(ServerTest, RejectsZeroCores) {
  Simulation sim;
  ServerConfig config = BasicConfig();
  config.num_cores = 0;
  EXPECT_THROW(Server(sim, config), std::invalid_argument);
}

// ---- Stack-dependent per-packet rx cost ----

TEST(ServerTest, DefaultStackCostsArePinned) {
  // The kernel socket path costs ~1 us per packet; a DPDK poll-mode driver
  // ~5x less. These two constants anchor the kpps capacity gap between the
  // stacks, so pin them.
  const ServerConfig config;
  EXPECT_EQ(config.stack_rx_cost, Microseconds(1));
  EXPECT_EQ(config.dpdk_stack_rx_cost, Nanoseconds(200));
}

TEST(ServerTest, DpdkStackUsesLowerRxCost) {
  ServerConfig config = BasicConfig();
  config.stack = NetStackType::kDpdk;
  ServerHarness h(config);
  EchoApp app(AppProto::kKv, Microseconds(2), 1);
  h.server.BindApp(&app);
  h.server.Receive(RequestTo(1, AppProto::kKv));
  // Completion at dpdk rx(0.2us) + cpu(2us) + tx(0.5us) = 2.7 us — not the
  // kernel stack's 3.5 us.
  bool probed = false;
  h.sim.Schedule(Microseconds(2) + Nanoseconds(699), [&] {
    EXPECT_EQ(app.executed, 0);
    probed = true;
  });
  h.sim.Run();
  EXPECT_TRUE(probed);
  EXPECT_EQ(app.executed, 1);
}

// ---- Split drop accounting ----

TEST(ServerTest, DropCountersSplitNoAppFromOverflow) {
  ServerConfig config = BasicConfig();
  config.rx_queue_capacity = 2;
  ServerHarness h(config);
  EchoApp app(AppProto::kKv, Milliseconds(1), 1);
  h.server.BindApp(&app);
  // 5 same-tick kKv arrivals against 1 slow worker with a 2-deep queue:
  // 1 in service + 2 queued + 2 overflow drops.
  for (uint64_t i = 0; i < 5; ++i) {
    h.server.Receive(RequestTo(1, AppProto::kKv, i));
  }
  // 3 packets for a protocol nobody bound.
  for (uint64_t i = 0; i < 3; ++i) {
    h.server.Receive(RequestTo(1, AppProto::kDns, i));
  }
  h.sim.Run();
  EXPECT_EQ(h.server.requests_received(), 8u);
  EXPECT_EQ(h.server.dropped_no_app(), 3u);
  EXPECT_EQ(h.server.dropped_overflow(), 2u);
  EXPECT_EQ(h.server.requests_dropped(), 5u);
  EXPECT_EQ(h.server.requests_completed(), 3u);
}

TEST(ServerTest, ReceivedEqualsCompletedPlusSplitDrops) {
  // The conservation invariant under a sustained overload mix: every packet
  // handed to Receive() is accounted for in exactly one terminal counter
  // once the run drains.
  ServerConfig config = BasicConfig();
  config.rx_queue_capacity = 8;
  ServerHarness h(config);
  EchoApp app(AppProto::kKv, Nanoseconds(2500), 2);
  h.server.BindApp(&app);
  for (int i = 0; i < 20000; ++i) {
    h.sim.Schedule(i * Microseconds(50) / 40, [&h, i] {
      // Every 7th packet targets an unbound protocol.
      const AppProto proto = i % 7 == 0 ? AppProto::kDns : AppProto::kKv;
      h.server.Receive(RequestTo(1, proto, static_cast<uint64_t>(i)));
    });
  }
  h.sim.Run();  // Drain everything queued.
  EXPECT_EQ(h.server.requests_received(), 20000u);
  EXPECT_GT(h.server.dropped_no_app(), 0u);
  EXPECT_GT(h.server.dropped_overflow(), 0u);
  EXPECT_EQ(h.server.requests_received(),
            h.server.requests_completed() + h.server.dropped_no_app() +
                h.server.dropped_overflow());
}

// ---- Worker dispatch ----

TEST(ServerTest, RssHashDispatchSerializesAFlow) {
  // 8 packets of ONE flow against 4 workers: ideal least-loaded dispatch
  // spreads them (2 per worker), RSS hashing pins them all to one worker.
  auto run_mode = [](HostDispatch dispatch, SimDuration probe_at) {
    ServerConfig config = BasicConfig();
    config.dispatch = dispatch;
    ServerHarness h(config);
    auto app = std::make_unique<EchoApp>(AppProto::kKv, Microseconds(10), 4);
    h.server.BindApp(app.get());
    for (int i = 0; i < 8; ++i) {
      h.server.Receive(RequestTo(1, AppProto::kKv, /*id=*/42));
    }
    int executed_at_probe = -1;
    h.sim.Schedule(probe_at, [&] { executed_at_probe = app->executed; });
    h.sim.Run();
    EXPECT_EQ(app->executed, 8);  // Both modes finish the work eventually.
    return executed_at_probe;
  };
  // Per-request service = 1 + 10 + 0.5 = 11.5 us. At t=25us the ideal mode
  // has finished both waves (23 us); the serialized RSS worker only two.
  const SimDuration probe = Microseconds(25);
  EXPECT_EQ(run_mode(HostDispatch::kIdealLb, probe), 8);
  EXPECT_EQ(run_mode(HostDispatch::kRssHash, probe), 2);
}

TEST(ServerTest, RssHashDispatchIsDeterministic) {
  ServerConfig config = BasicConfig();
  config.dispatch = HostDispatch::kRssHash;
  ServerHarness h(config);
  EchoApp app(AppProto::kKv, Microseconds(10), 4);
  h.server.BindApp(&app);
  // Two bursts of the same flow arrive back-to-back: with deterministic
  // steering both land on the same worker, so completions stay serialized
  // (16 x 11.5 us) rather than splitting across workers.
  for (int i = 0; i < 16; ++i) {
    h.server.Receive(RequestTo(1, AppProto::kKv, /*id=*/42));
  }
  int executed_mid = -1;
  h.sim.Schedule(Microseconds(100), [&] { executed_mid = app.executed; });
  h.sim.Run();
  EXPECT_EQ(executed_mid, 8);  // floor(100 / 11.5) on a single worker.
  EXPECT_EQ(app.executed, 16);
}

// ---- Interrupt cost accounting ----

TEST(ServerTest, InterruptCostChargedOnKernelStack) {
  ServerHarness h;
  EchoApp app(AppProto::kKv, Microseconds(2), 1);
  h.server.BindApp(&app);
  Packet pkt = RequestTo(1, AppProto::kKv);
  pkt.irq = true;  // First packet of an interrupt batch from the NIC.
  h.server.Receive(pkt);
  // Completion at rx(1us) + irq(1us) + cpu(2us) + tx(0.5us) = 4.5 us.
  bool probed = false;
  h.sim.Schedule(Microseconds(4) + Nanoseconds(499), [&] {
    EXPECT_EQ(app.executed, 0);
    probed = true;
  });
  h.sim.Run();
  EXPECT_TRUE(probed);
  EXPECT_EQ(app.executed, 1);
  EXPECT_EQ(h.server.interrupts_serviced(), 1u);
}

TEST(ServerTest, DpdkStackIgnoresIrqMarker) {
  ServerConfig config = BasicConfig();
  config.stack = NetStackType::kDpdk;
  ServerHarness h(config);
  EchoApp app(AppProto::kKv, Microseconds(2), 1);
  h.server.BindApp(&app);
  Packet pkt = RequestTo(1, AppProto::kKv);
  pkt.irq = true;  // A polling stack takes no interrupt.
  h.server.Receive(pkt);
  // Still completes at the DPDK 2.7 us — no interrupt surcharge.
  bool probed = false;
  h.sim.Schedule(Microseconds(2) + Nanoseconds(701), [&] {
    EXPECT_EQ(app.executed, 1);
    probed = true;
  });
  h.sim.Run();
  EXPECT_TRUE(probed);
  EXPECT_EQ(h.server.interrupts_serviced(), 0u);
}

}  // namespace
}  // namespace incod
