// Dedicated suite for the conventional NIC: the legacy pass-through
// contract (forwarding, rate cap, pause relay, dead-host accounting) and
// the mechanistic HostNicSpec datapath (RSS rings, interrupt moderation,
// DPDK polling, tx doorbell batching).
#include <gtest/gtest.h>

#include <vector>

#include "src/device/conventional_nic.h"
#include "src/net/link.h"
#include "src/net/topology.h"
#include "src/sim/simulation.h"

namespace incod {
namespace {

class CollectorSink : public PacketSink {
 public:
  void Receive(Packet packet) override { packets.push_back(packet); }
  std::string SinkName() const override { return "collector"; }
  std::vector<Packet> packets;
};

Packet FlowPacket(NodeId src, NodeId dst, uint64_t id) {
  Packet pkt;
  pkt.src = src;
  pkt.dst = dst;
  pkt.proto = AppProto::kRaw;
  pkt.id = id;
  return pkt;
}

// NIC wired between a network-side and a host-side collector.
struct NicHarness {
  explicit NicHarness(ConventionalNicConfig config, Link::Config link_config = {})
      : sim(), topo(sim), nic(sim, config) {
    net_link = topo.Connect(&net, &nic, link_config, "net");
    host_link = topo.Connect(&nic, &host, link_config, "host");
    nic.SetNetworkLink(net_link);
    nic.SetHostLink(host_link);
  }
  Simulation sim;
  Topology topo;
  CollectorSink net;
  CollectorSink host;
  ConventionalNic nic;
  Link* net_link;
  Link* host_link;
};

ConventionalNicConfig MechConfig() {
  ConventionalNicConfig config = MellanoxConnectX3Config(1);
  config.hostnic.enabled = true;
  config.hostnic.num_queues = 4;
  config.hostnic.ring_depth = 256;
  config.hostnic.coalesce_packets = 4;
  config.hostnic.coalesce_timer = Microseconds(50);
  config.hostnic.tx_doorbell_batch = 4;
  config.hostnic.doorbell_flush_timer = Microseconds(20);
  return config;
}

// ---- Legacy pass-through contract ----

TEST(ConventionalNicSuite, PassesThroughBothDirections) {
  NicHarness h(MellanoxConnectX3Config(1));
  h.nic.Receive(FlowPacket(100, 1, 7));   // From the network, toward the host.
  h.nic.Receive(FlowPacket(1, 100, 8));   // From the host, toward the network.
  h.sim.Run();
  ASSERT_EQ(h.host.packets.size(), 1u);
  ASSERT_EQ(h.net.packets.size(), 1u);
  EXPECT_EQ(h.host.packets[0].id, 7u);
  EXPECT_EQ(h.net.packets[0].id, 8u);
}

TEST(ConventionalNicSuite, RateCapDropsWhenBufferOverruns) {
  NicHarness h(IntelX520Config(1));
  for (uint64_t i = 0; i < 1000; ++i) {
    h.nic.Receive(FlowPacket(100, 1, i));
  }
  h.sim.Run();
  EXPECT_GT(h.nic.dropped(), 0u);
  EXPECT_EQ(h.host.packets.size(), 1000 - h.nic.dropped());
}

TEST(ConventionalNicSuite, RelaysHostCongestionPauseOutTheNetLink) {
  Link::Config flow_link;
  flow_link.flow.pfc = true;
  NicHarness h(MellanoxConnectX3Config(1), flow_link);
  // The host-side PCIe backlog crossed its watermark: the NIC must assert
  // pause toward its network-side upstream, and release it on resume.
  h.nic.OnLinkCongestion(h.host_link, true);
  h.sim.Run();
  EXPECT_EQ(h.nic.pause_propagations(), 1u);
  EXPECT_TRUE(h.net_link->paused(&h.nic));
  h.nic.OnLinkCongestion(h.host_link, false);
  h.sim.Run();
  EXPECT_FALSE(h.net_link->paused(&h.nic));
  EXPECT_EQ(h.nic.pause_propagations(), 1u);  // Resumes are not propagations.
}

TEST(ConventionalNicSuite, DeadHostDropsAreCountedAtTheLink) {
  NicHarness h(MellanoxConnectX3Config(1));
  h.host.SetAlive(false);
  h.nic.Receive(FlowPacket(100, 1, 1));
  h.sim.Run();
  EXPECT_TRUE(h.host.packets.empty());
  EXPECT_EQ(h.host_link->dropped_to_dead(&h.host), 1u);
  EXPECT_EQ(h.nic.dropped(), 0u);  // The NIC itself forwarded fine.
}

TEST(ConventionalNicSuite, DeadHostDropsAreCountedWithMechanisticDatapath) {
  NicHarness h(MechConfig());
  h.host.SetAlive(false);
  h.nic.Receive(FlowPacket(100, 1, 1));
  h.sim.Run();
  EXPECT_TRUE(h.host.packets.empty());
  EXPECT_EQ(h.host_link->dropped_to_dead(&h.host), 1u);
}

// ---- Mechanistic datapath: RSS rings ----

TEST(ConventionalNicSuite, RssSteeringIsDeterministicAndSpreads) {
  NicHarness h(MechConfig());
  const Packet a = FlowPacket(100, 1, 1);
  EXPECT_EQ(h.nic.RssQueue(a), h.nic.RssQueue(a));
  // Distinct flows (ids model distinct ephemeral source ports) must land on
  // more than one ring.
  bool spread = false;
  for (uint64_t id = 2; id < 32; ++id) {
    if (h.nic.RssQueue(FlowPacket(100, 1, id)) != h.nic.RssQueue(a)) {
      spread = true;
    }
  }
  EXPECT_TRUE(spread);
}

TEST(ConventionalNicSuite, RingOverflowIsADistinctDropCounter) {
  ConventionalNicConfig config = MechConfig();
  config.hostnic.ring_depth = 4;
  config.hostnic.coalesce_packets = 1000;  // Only the timer can drain.
  config.hostnic.coalesce_timer = Milliseconds(1);
  NicHarness h(config);
  // One flow -> one ring: 20 same-tick arrivals against 4 descriptors.
  for (int i = 0; i < 20; ++i) {
    h.nic.Receive(FlowPacket(100, 1, 9));
  }
  EXPECT_EQ(h.nic.ring_drops(), 16u);
  EXPECT_EQ(h.nic.dropped(), 0u);  // Not a rate-cap drop.
  h.sim.Run();
  EXPECT_EQ(h.host.packets.size(), 4u);  // The ring's worth arrives.
  EXPECT_EQ(h.nic.interrupts_raised(), 1u);
}

// ---- Mechanistic datapath: interrupt moderation ----

TEST(ConventionalNicSuite, PacketCountTriggerPreemptsCoalescingTimer) {
  NicHarness h(MechConfig());  // coalesce_packets = 4, timer = 50 us.
  for (int i = 0; i < 4; ++i) {
    h.nic.Receive(FlowPacket(100, 1, 9));
  }
  // The count trigger fires one NIC latency (1 us) after the 4th packet —
  // well before the 50 us timer.
  bool delivered_early = false;
  h.sim.Schedule(Microseconds(10), [&] { delivered_early = h.host.packets.size() == 4; });
  h.sim.Run();
  EXPECT_TRUE(delivered_early);
  EXPECT_EQ(h.nic.interrupts_raised(), 1u);
  // Only the first packet of the batch carries the irq marker.
  ASSERT_EQ(h.host.packets.size(), 4u);
  EXPECT_TRUE(h.host.packets[0].irq);
  EXPECT_FALSE(h.host.packets[1].irq);
  EXPECT_FALSE(h.host.packets[2].irq);
  EXPECT_FALSE(h.host.packets[3].irq);
}

TEST(ConventionalNicSuite, CoalescingTimerDrainsSubBatch) {
  NicHarness h(MechConfig());
  h.nic.Receive(FlowPacket(100, 1, 9));
  h.nic.Receive(FlowPacket(100, 1, 9));
  // Below the count trigger: nothing is delivered until the 50 us timer.
  bool held_back = false;
  h.sim.Schedule(Microseconds(40), [&] { held_back = h.host.packets.empty(); });
  h.sim.Run();
  EXPECT_TRUE(held_back);
  ASSERT_EQ(h.host.packets.size(), 2u);
  EXPECT_EQ(h.nic.interrupts_raised(), 1u);
  EXPECT_TRUE(h.host.packets[0].irq);
  EXPECT_FALSE(h.host.packets[1].irq);
}

TEST(ConventionalNicSuite, DpdkHostPollsWithoutInterrupts) {
  ConventionalNicConfig config = MechConfig();
  config.hostnic.host_interrupts = false;
  NicHarness h(config);
  for (int i = 0; i < 6; ++i) {
    h.nic.Receive(FlowPacket(100, 1, 9));
  }
  // The poll drain picks the batch up after the NIC latency; no coalescing
  // wait, no interrupt accounting, no irq markers.
  bool delivered_early = false;
  h.sim.Schedule(Microseconds(10), [&] { delivered_early = h.host.packets.size() == 6; });
  h.sim.Run();
  EXPECT_TRUE(delivered_early);
  EXPECT_EQ(h.nic.interrupts_raised(), 0u);
  for (const Packet& pkt : h.host.packets) {
    EXPECT_FALSE(pkt.irq);
  }
}

// ---- Mechanistic datapath: tx doorbell batching ----

TEST(ConventionalNicSuite, TxDoorbellBatchFlushesOnCount) {
  NicHarness h(MechConfig());  // tx_doorbell_batch = 4, flush timer = 20 us.
  for (uint64_t i = 0; i < 4; ++i) {
    h.nic.Receive(FlowPacket(1, 100, i));  // src == host_node: tx path.
  }
  bool delivered_early = false;
  h.sim.Schedule(Microseconds(10), [&] { delivered_early = h.net.packets.size() == 4; });
  h.sim.Run();
  EXPECT_TRUE(delivered_early);
  EXPECT_EQ(h.nic.doorbells_rung(), 1u);
  // One doorbell DMAs the whole batch in posting order.
  ASSERT_EQ(h.net.packets.size(), 4u);
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(h.net.packets[i].id, i);
  }
}

TEST(ConventionalNicSuite, TxSubBatchFlushesOnTimer) {
  NicHarness h(MechConfig());
  h.nic.Receive(FlowPacket(1, 100, 1));
  bool held_back = false;
  h.sim.Schedule(Microseconds(15), [&] { held_back = h.net.packets.empty(); });
  h.sim.Run();
  EXPECT_TRUE(held_back);  // Held until the 20 us doorbell flush timer.
  EXPECT_EQ(h.net.packets.size(), 1u);
  EXPECT_EQ(h.nic.doorbells_rung(), 1u);
}

}  // namespace
}  // namespace incod
