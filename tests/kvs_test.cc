// Tests for the KV store, protocol, memcached model, and LaKe.
#include <gtest/gtest.h>

#include <memory>

#include "src/device/fpga_nic.h"
#include "src/host/server.h"
#include "src/kvs/kv_protocol.h"
#include "src/kvs/kv_store.h"
#include "src/kvs/lake.h"
#include "src/kvs/memcached_server.h"
#include "src/net/topology.h"
#include "src/power/cpu_power.h"
#include "src/sim/simulation.h"

namespace incod {
namespace {

TEST(KvStoreTest, SetGetDelete) {
  KvStore store(10);
  uint32_t bytes = 0;
  EXPECT_FALSE(store.Get(1, &bytes));
  store.Set(1, 100);
  EXPECT_TRUE(store.Get(1, &bytes));
  EXPECT_EQ(bytes, 100u);
  EXPECT_TRUE(store.Delete(1));
  EXPECT_FALSE(store.Delete(1));
  EXPECT_FALSE(store.Get(1, nullptr));
}

TEST(KvStoreTest, UpdateReplacesValue) {
  KvStore store(10);
  store.Set(1, 100);
  store.Set(1, 200);
  uint32_t bytes = 0;
  EXPECT_TRUE(store.Get(1, &bytes));
  EXPECT_EQ(bytes, 200u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(KvStoreTest, EvictsLeastRecentlyUsed) {
  KvStore store(3);
  store.Set(1, 1);
  store.Set(2, 2);
  store.Set(3, 3);
  // Touch 1 so 2 becomes LRU.
  EXPECT_TRUE(store.Get(1, nullptr));
  store.Set(4, 4);
  EXPECT_TRUE(store.Contains(1));
  EXPECT_FALSE(store.Contains(2));
  EXPECT_TRUE(store.Contains(3));
  EXPECT_TRUE(store.Contains(4));
  EXPECT_EQ(store.evictions(), 1u);
}

TEST(KvStoreTest, CapacityNeverExceeded) {
  KvStore store(100);
  for (uint64_t k = 0; k < 1000; ++k) {
    store.Set(k, 1);
    EXPECT_LE(store.size(), 100u);
  }
  EXPECT_EQ(store.evictions(), 900u);
}

TEST(KvStoreTest, HitRatioTracked) {
  KvStore store(10);
  store.Set(1, 1);
  store.Get(1, nullptr);
  store.Get(2, nullptr);
  EXPECT_DOUBLE_EQ(store.lookup_stats().HitRatio(), 0.5);
  store.ResetStats();
  EXPECT_EQ(store.lookup_stats().total(), 0u);
}

TEST(KvStoreTest, ClearEmptiesStore) {
  KvStore store(10);
  store.Set(1, 1);
  store.Set(2, 2);
  store.Clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(store.Contains(1));
}

TEST(KvStoreTest, RejectsZeroCapacity) {
  EXPECT_THROW(KvStore(0), std::invalid_argument);
}

// LRU property under a random workload: after any operation sequence the
// store holds the `capacity` most recently touched distinct keys.
class KvStoreLruPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(KvStoreLruPropertyTest, MostRecentKeysSurvive) {
  const size_t capacity = GetParam();
  KvStore store(capacity);
  Rng rng(1234);
  std::vector<uint64_t> touch_order;  // Most recent at back.
  for (int i = 0; i < 2000; ++i) {
    const uint64_t key = static_cast<uint64_t>(rng.UniformInt(0, 50));
    const bool write = rng.Bernoulli(0.5);
    bool touched;
    if (write) {
      store.Set(key, 1);
      touched = true;
    } else {
      touched = store.Get(key, nullptr);
    }
    if (touched) {
      auto it = std::find(touch_order.begin(), touch_order.end(), key);
      if (it != touch_order.end()) {
        touch_order.erase(it);
      }
      touch_order.push_back(key);
    }
  }
  // The last min(capacity, distinct) touched keys must all be resident.
  size_t checked = 0;
  for (auto it = touch_order.rbegin(); it != touch_order.rend() && checked < capacity;
       ++it, ++checked) {
    EXPECT_TRUE(store.Contains(*it)) << "key " << *it;
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, KvStoreLruPropertyTest,
                         ::testing::Values(1u, 4u, 16u, 51u));

TEST(KvProtocolTest, WireSizes) {
  KvRequest get{KvOp::kGet, 1, 0};
  KvRequest set{KvOp::kSet, 1, 500};
  EXPECT_EQ(KvRequestWireBytes(get), kKvHeaderBytes + 8);
  EXPECT_EQ(KvRequestWireBytes(set), kKvHeaderBytes + 8 + 500);
  KvResponse hit{KvOp::kGet, 1, true, 300};
  KvResponse miss{KvOp::kGet, 1, false, 0};
  EXPECT_EQ(KvResponseWireBytes(hit), kKvHeaderBytes + 8 + 300);
  EXPECT_EQ(KvResponseWireBytes(miss), kKvHeaderBytes + 8);
  EXPECT_STREQ(KvOpName(KvOp::kSet), "SET");
}

TEST(KvProtocolTest, PacketBuilders) {
  const Packet req = MakeKvRequestPacket(100, 1, KvRequest{KvOp::kGet, 7, 0}, 99, 1234);
  EXPECT_EQ(req.proto, AppProto::kKv);
  EXPECT_EQ(req.id, 99u);
  EXPECT_EQ(req.created_at, 1234);
  EXPECT_EQ(PayloadAs<KvRequest>(req).key, 7u);
}

struct MemcachedHarness {
  MemcachedHarness() : sim(), topo(sim), server(sim, Config()) {
    server.BindApp(&memcached);
    link = topo.Connect(&server, &client_side);
    server.SetUplink(link);
  }
  static ServerConfig Config() {
    ServerConfig config;
    config.node = 1;
    config.power_curve = I7MemcachedCurve();
    return config;
  }
  static MemcachedConfig SingleThread() {
    MemcachedConfig config;
    config.threads = 1;  // Serialize ops so reply order is deterministic.
    return config;
  }
  struct Collector : PacketSink {
    void Receive(Packet packet) override { packets.push_back(std::move(packet)); }
    std::string SinkName() const override { return "client"; }
    std::vector<Packet> packets;
  };
  Simulation sim;
  Topology topo;
  Collector client_side;
  MemcachedServer memcached{SingleThread()};
  Server server;
  Link* link;
};

TEST(MemcachedTest, GetMissThenSetThenHit) {
  MemcachedHarness h;
  h.server.Receive(MakeKvRequestPacket(100, 1, KvRequest{KvOp::kGet, 5, 0}, 1, 0));
  h.server.Receive(MakeKvRequestPacket(100, 1, KvRequest{KvOp::kSet, 5, 64}, 2, 0));
  h.server.Receive(MakeKvRequestPacket(100, 1, KvRequest{KvOp::kGet, 5, 0}, 3, 0));
  h.sim.Run();
  ASSERT_EQ(h.client_side.packets.size(), 3u);
  EXPECT_FALSE(PayloadAs<KvResponse>(h.client_side.packets[0]).hit);
  EXPECT_TRUE(PayloadAs<KvResponse>(h.client_side.packets[1]).hit);
  const auto& last = PayloadAs<KvResponse>(h.client_side.packets[2]);
  EXPECT_TRUE(last.hit);
  EXPECT_EQ(last.value_bytes, 64u);
  EXPECT_EQ(h.memcached.gets(), 2u);
  EXPECT_EQ(h.memcached.sets(), 1u);
}

TEST(MemcachedTest, DeleteRemoves) {
  MemcachedHarness h;
  h.server.Receive(MakeKvRequestPacket(100, 1, KvRequest{KvOp::kSet, 5, 64}, 1, 0));
  h.server.Receive(MakeKvRequestPacket(100, 1, KvRequest{KvOp::kDelete, 5, 0}, 2, 0));
  h.server.Receive(MakeKvRequestPacket(100, 1, KvRequest{KvOp::kGet, 5, 0}, 3, 0));
  h.sim.Run();
  ASSERT_EQ(h.client_side.packets.size(), 3u);
  EXPECT_TRUE(PayloadAs<KvResponse>(h.client_side.packets[1]).hit);
  EXPECT_FALSE(PayloadAs<KvResponse>(h.client_side.packets[2]).hit);
}

// ---- LaKe ----

struct LakeHarness {
  explicit LakeHarness(LakeConfig config = SmallLakeConfig(), bool with_host = true,
                       double link_gbps = 10.0)
      : sim(), topo(sim), lake(config), fpga(sim, FpgaConfig()) {
    fpga.InstallApp(&lake);
    Link::Config link_config;
    link_config.gigabits_per_second = link_gbps;
    net_link = topo.Connect(&client_side, &fpga, link_config);
    fpga.SetNetworkLink(net_link);
    if (with_host) {
      host_link = topo.Connect(&fpga, &host_side);
      fpga.SetHostLink(host_link);
    }
    fpga.SetAppActive(true);
  }
  static LakeConfig SmallLakeConfig() {
    LakeConfig config;
    config.l1_entries = 4;
    config.l2_entries = 64;
    return config;
  }
  static FpgaNicConfig FpgaConfig() {
    FpgaNicConfig config;
    config.host_node = 1;
    config.device_node = 50;
    return config;
  }
  struct Collector : PacketSink {
    void Receive(Packet packet) override { packets.push_back(std::move(packet)); }
    std::string SinkName() const override { return "side"; }
    std::vector<Packet> packets;
  };
  Packet Get(uint64_t key, uint64_t id = 1) {
    return MakeKvRequestPacket(100, 1, KvRequest{KvOp::kGet, key, 0}, id, sim.Now());
  }
  Packet Set(uint64_t key, uint32_t bytes, uint64_t id = 1) {
    return MakeKvRequestPacket(100, 1, KvRequest{KvOp::kSet, key, bytes}, id, sim.Now());
  }
  Simulation sim;
  Topology topo;
  Collector client_side;
  Collector host_side;
  LakeCache lake;
  FpgaNic fpga;
  Link* net_link;
  Link* host_link = nullptr;
};

TEST(LakeTest, L1HitServedInHardware) {
  LakeHarness h;
  h.lake.l1().Set(7, 64);
  h.fpga.Receive(h.Get(7));
  h.sim.Run();
  ASSERT_EQ(h.client_side.packets.size(), 1u);
  EXPECT_TRUE(PayloadAs<KvResponse>(h.client_side.packets[0]).hit);
  EXPECT_EQ(h.lake.l1_hits(), 1u);
  EXPECT_TRUE(h.host_side.packets.empty());
}

TEST(LakeTest, L2HitPromotesToL1) {
  LakeHarness h;
  ASSERT_NE(h.lake.l2(), nullptr);
  h.lake.l2()->Set(9, 32);
  h.fpga.Receive(h.Get(9));
  h.sim.Run();
  EXPECT_EQ(h.lake.l2_hits(), 1u);
  EXPECT_TRUE(h.lake.l1().Contains(9));
  // Second access hits L1.
  h.fpga.Receive(h.Get(9, 2));
  h.sim.Run();
  EXPECT_EQ(h.lake.l1_hits(), 1u);
}

TEST(LakeTest, MissForwardsToHost) {
  LakeHarness h;
  h.fpga.Receive(h.Get(42));
  h.sim.Run();
  EXPECT_EQ(h.lake.misses_to_host(), 1u);
  EXPECT_EQ(h.host_side.packets.size(), 1u);
  EXPECT_TRUE(h.client_side.packets.empty());
}

TEST(LakeTest, HostReplyFillsCaches) {
  LakeHarness h;
  // Host reply (GET hit) passes through the NIC on its way out.
  Packet reply =
      MakeKvResponsePacket(1, 100, KvResponse{KvOp::kGet, 13, true, 64}, 1, 0);
  h.fpga.Receive(reply);
  h.sim.Run();
  EXPECT_TRUE(h.lake.l1().Contains(13));
  EXPECT_TRUE(h.lake.l2()->Contains(13));
  ASSERT_EQ(h.client_side.packets.size(), 1u);  // Still delivered.
  // Subsequent GET is a hardware hit.
  h.fpga.Receive(h.Get(13, 2));
  h.sim.Run();
  EXPECT_EQ(h.lake.l1_hits(), 1u);
}

TEST(LakeTest, MissReplyDoesNotFill) {
  LakeHarness h;
  Packet reply =
      MakeKvResponsePacket(1, 100, KvResponse{KvOp::kGet, 13, false, 0}, 1, 0);
  h.fpga.Receive(reply);
  h.sim.Run();
  EXPECT_FALSE(h.lake.l1().Contains(13));
}

TEST(LakeTest, SetWritesThroughAndForwards) {
  LakeHarness h;
  h.fpga.Receive(h.Set(21, 64));
  h.sim.Run();
  EXPECT_TRUE(h.lake.l1().Contains(21));
  EXPECT_TRUE(h.lake.l2()->Contains(21));
  EXPECT_EQ(h.host_side.packets.size(), 1u);  // Host stays authoritative.
}

TEST(LakeTest, DeleteRemovesFromBothLevels) {
  LakeHarness h;
  h.lake.l1().Set(5, 1);
  h.lake.l2()->Set(5, 1);
  Packet del = MakeKvRequestPacket(100, 1, KvRequest{KvOp::kDelete, 5, 0}, 1, 0);
  h.fpga.Receive(del);
  h.sim.Run();
  EXPECT_FALSE(h.lake.l1().Contains(5));
  EXPECT_FALSE(h.lake.l2()->Contains(5));
}

TEST(LakeTest, MemoryResetColdCaches) {
  LakeHarness h;
  h.lake.WarmFill(0, 10, 64);
  EXPECT_GT(h.lake.l1().size(), 0u);
  h.fpga.SetAppActive(false);
  h.fpga.SetMemoryReset(true);
  EXPECT_EQ(h.lake.l1().size(), 0u);
  EXPECT_EQ(h.lake.l2()->size(), 0u);
}

TEST(LakeTest, NoDramMeansNoL2) {
  LakeConfig config = LakeHarness::SmallLakeConfig();
  config.use_dram = false;
  LakeHarness h(config);
  EXPECT_EQ(h.lake.l2(), nullptr);
  h.fpga.Receive(h.Get(3));
  h.sim.Run();
  EXPECT_EQ(h.lake.misses_to_host(), 1u);
}

TEST(LakeTest, PowerModulesReflectConfiguration) {
  LakeConfig full;
  LakeCache lake_full(full);
  double watts = 0;
  for (const auto& m : lake_full.PowerModules()) {
    watts += m.active_watts;
  }
  // classifier 0.95 + 5 x 0.25 + 4.8 + 6 = 13.0 (logic 2.2 W over the NIC,
  // memories 10.8 W; §5.2-5.3).
  EXPECT_NEAR(watts, 13.0, 1e-9);

  LakeConfig lean;
  lean.num_pes = 1;
  lean.use_dram = false;
  lean.use_sram = false;
  LakeCache lake_lean(lean);
  watts = 0;
  for (const auto& m : lake_lean.PowerModules()) {
    watts += m.active_watts;
  }
  EXPECT_NEAR(watts, 1.2, 1e-9);
}

TEST(LakeTest, HardwareHitRatio) {
  LakeHarness h;
  h.lake.l1().Set(1, 1);
  h.fpga.Receive(h.Get(1, 1));
  h.fpga.Receive(h.Get(2, 2));
  h.sim.Run();
  EXPECT_DOUBLE_EQ(h.lake.HardwareHitRatio(), 0.5);
}

TEST(LakeTest, RejectsZeroPes) {
  LakeConfig config;
  config.num_pes = 0;
  EXPECT_THROW(LakeCache{config}, std::invalid_argument);
}

// PE scaling property (§5.2): each PE adds ~3.3 Mqps of capacity.
class LakePeSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(LakePeSweepTest, CapacityScalesWithPes) {
  const int pes = GetParam();
  LakeConfig config;
  config.num_pes = pes;
  config.l1_entries = 16;
  // A 100G egress so reply serialization never caps the PE pipeline (the
  // property under test is PE scaling, not the 10GE line rate).
  LakeHarness h(config, /*with_host=*/true, /*link_gbps=*/100.0);
  h.lake.WarmFill(0, 8, 64);
  // Offer 2x the nominal capacity for 10 ms and count hardware responses.
  const double capacity = pes * 3.3e6;
  const double offered = 2.0 * capacity;
  const auto gap = static_cast<SimDuration>(1e9 / offered);
  const int n = static_cast<int>(offered * 0.01);
  for (int i = 0; i < n; ++i) {
    h.sim.Schedule(i * gap, [&h, i] { h.fpga.Receive(h.Get(i % 8, i + 1)); });
  }
  h.sim.RunUntil(Milliseconds(12));
  const double served = static_cast<double>(h.client_side.packets.size());
  const double served_rate = served / 0.012;
  EXPECT_GT(served_rate, 0.75 * capacity);
  EXPECT_LT(served_rate, 1.25 * capacity);
}

INSTANTIATE_TEST_SUITE_P(PeCounts, LakePeSweepTest, ::testing::Values(1, 2, 5));

}  // namespace
}  // namespace incod
