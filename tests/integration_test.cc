// End-to-end integration tests over the experiment testbeds: the KVS, DNS
// and Paxos systems as wired for the paper's figures, including the on-demand
// transitions of Fig 6 and Fig 7.
#include <gtest/gtest.h>

#include <memory>

#include "src/ondemand/controller.h"
#include "src/ondemand/migrator.h"
#include "src/scenarios/dns_testbed.h"
#include "src/scenarios/kvs_testbed.h"
#include "src/scenarios/paxos_testbed.h"
#include "src/workload/dns_workload.h"
#include "src/workload/etc_workload.h"

namespace incod {
namespace {

RequestFactory UniformGetFactory(NodeId service, uint64_t keys) {
  return [service, keys](NodeId src, uint64_t id, SimTime now, Rng& rng) {
    const uint64_t key = static_cast<uint64_t>(rng.UniformInt(0, static_cast<int64_t>(keys) - 1));
    return MakeKvRequestPacket(src, service, KvRequest{KvOp::kGet, key, 0}, id, now);
  };
}

// ---------------------------------------------------------------- KVS ----

TEST(KvsIntegrationTest, SoftwareModeServesGets) {
  Simulation sim(1);
  KvsTestbedOptions options;
  options.mode = KvsMode::kSoftwareOnly;
  KvsTestbed testbed(sim, options);
  testbed.Prefill(1000, 64);
  auto& client =
      testbed.AddClient(LoadClientConfig{}, std::make_unique<ConstantArrival>(50000.0),
                        UniformGetFactory(testbed.ServiceNode(), 1000));
  client.Start();
  sim.RunUntil(Milliseconds(200));
  EXPECT_GT(client.received(), 9000u);
  EXPECT_LT(client.LossFraction(), 0.01);
  // Software latency: a few microseconds end to end (§5.3: 1.67 us median
  // at 100 Kqps plus our link/NIC path).
  EXPECT_LT(client.latency().P50(), static_cast<uint64_t>(Microseconds(15)));
}

TEST(KvsIntegrationTest, LakeModeServesFromHardwareWhenWarm) {
  Simulation sim(1);
  KvsTestbedOptions options;
  options.mode = KvsMode::kLake;
  KvsTestbed testbed(sim, options);
  testbed.Prefill(1000, 64);
  auto& client =
      testbed.AddClient(LoadClientConfig{}, std::make_unique<ConstantArrival>(50000.0),
                        UniformGetFactory(testbed.ServiceNode(), 1000));
  client.Start();
  sim.RunUntil(Milliseconds(200));
  EXPECT_GT(client.received(), 9000u);
  EXPECT_GT(testbed.lake()->HardwareHitRatio(), 0.99);
  EXPECT_EQ(testbed.fpga()->delivered_to_host(), 0u);
}

TEST(KvsIntegrationTest, HardwareLatencyBeatsSoftwarePath) {
  // §9.2: "The latency of query-hit improves ten-fold".
  auto run = [](KvsMode mode) {
    Simulation sim(1);
    KvsTestbedOptions options;
    options.mode = mode;
    KvsTestbed testbed(sim, options);
    testbed.Prefill(100, 64);
    auto& client =
        testbed.AddClient(LoadClientConfig{}, std::make_unique<ConstantArrival>(10000.0),
                          UniformGetFactory(testbed.ServiceNode(), 100));
    client.Start();
    sim.RunUntil(Milliseconds(100));
    return client.latency().P50();
  };
  const uint64_t software = run(KvsMode::kSoftwareOnly);
  const uint64_t hardware = run(KvsMode::kLake);
  EXPECT_LT(hardware, software);
  EXPECT_LT(hardware, static_cast<uint64_t>(Microseconds(3)));
}

TEST(KvsIntegrationTest, LakeMissPathReachesHostAndFills) {
  Simulation sim(1);
  KvsTestbedOptions options;
  options.mode = KvsMode::kLake;
  KvsTestbed testbed(sim, options);
  // Only the software store is warm: the hardware cache must fill itself
  // from host replies.
  for (uint64_t k = 0; k < 100; ++k) {
    testbed.memcached()->store().Set(k, 64);
  }
  auto& client =
      testbed.AddClient(LoadClientConfig{}, std::make_unique<ConstantArrival>(20000.0),
                        UniformGetFactory(testbed.ServiceNode(), 100));
  client.Start();
  sim.RunUntil(Milliseconds(200));
  EXPECT_GT(testbed.lake()->misses_to_host(), 0u);
  // Cache warmed: most late traffic is hardware hits.
  EXPECT_GT(testbed.lake()->l1_hits() + testbed.lake()->l2_hits(), 1000u);
  EXPECT_GT(client.received(), 3500u);
}

TEST(KvsIntegrationTest, PowerComposesIdleAnchors) {
  // §4.2 anchors: software system idle 39 W; LaKe system idle 59 W.
  Simulation sim(1);
  KvsTestbedOptions sw_options;
  sw_options.mode = KvsMode::kSoftwareOnly;
  KvsTestbed software(sim, sw_options);
  KvsTestbedOptions hw_options;
  hw_options.mode = KvsMode::kLake;
  KvsTestbed lake(sim, hw_options);
  sim.RunUntil(Milliseconds(50));
  EXPECT_NEAR(software.meter().InstantWatts(), 39.0, 0.5);
  EXPECT_NEAR(lake.meter().InstantWatts(), 59.0, 0.5);
}

TEST(KvsIntegrationTest, StandaloneLakeAnswersWithoutHost) {
  Simulation sim(1);
  KvsTestbedOptions options;
  options.mode = KvsMode::kLakeStandalone;
  KvsTestbed testbed(sim, options);
  testbed.Prefill(100, 64);
  auto& client =
      testbed.AddClient(LoadClientConfig{}, std::make_unique<ConstantArrival>(10000.0),
                        UniformGetFactory(testbed.ServiceNode(), 100));
  client.Start();
  sim.RunUntil(Milliseconds(100));
  EXPECT_GT(client.received(), 900u);
  EXPECT_EQ(testbed.server(), nullptr);
  // Standalone power is in the high-20s watts (board + PSU), way below a
  // server.
  EXPECT_LT(testbed.meter().InstantWatts(), 35.0);
  EXPECT_GT(testbed.meter().InstantWatts(), 20.0);
}

TEST(KvsIntegrationTest, Fig6StyleHostControlledTransition) {
  // ETC client + background load; the host controller shifts the KVS to the
  // network after sustained load, throughput is maintained, latency drops.
  Simulation sim(1);
  KvsTestbedOptions options;
  options.mode = KvsMode::kLake;
  options.lake_initially_active = false;
  KvsTestbed testbed(sim, options);
  testbed.Prefill(5000, 64);

  EtcWorkloadConfig etc_config;
  etc_config.kvs_service = testbed.ServiceNode();
  etc_config.key_population = 5000;
  EtcWorkload etc(etc_config);
  auto& client = testbed.AddClient(LoadClientConfig{},
                                   std::make_unique<PoissonArrival>(100000.0),
                                   etc.MakeFactory());

  ClassifierMigrator::Options migrate_options;
  migrate_options.clock_gate_when_idle = false;  // Fig 6 ran without gating.
  migrate_options.reset_memories_when_idle = false;
  ClassifierMigrator migrator(sim, *testbed.fpga(), migrate_options);
  RaplCounter rapl(sim, [&] { return testbed.server()->RaplPackageWatts(); });
  rapl.Start();
  HostControllerConfig controller_config;
  // Threshold above the KVS's own footprint (~27 W RAPL at 100 kqps) so the
  // shift is triggered by the ChainerMN background load, as in Fig 6.
  controller_config.up_power_watts = 50.0;
  controller_config.up_cpu_usage = -1.0;
  controller_config.up_window = Seconds(3);
  controller_config.down_rate_pps = 1000000.0;  // Don't shift back here.
  controller_config.down_power_watts = 0.0;
  HostController controller(sim, *testbed.server(), AppProto::kKv, rapl,
                            *testbed.fpga(), migrator, controller_config);
  controller.Start();

  BackgroundLoad chainer(sim, *testbed.server(), 3.0);
  chainer.StartAt(Seconds(2));

  client.Start();
  sim.RunUntil(Seconds(10));

  ASSERT_EQ(migrator.transitions().size(), 1u);
  EXPECT_EQ(migrator.transitions()[0].to, Placement::kNetwork);
  // The shift happened only after the background load hit (t=2 s) and the
  // sustained window filled — not before, and not instantly.
  EXPECT_GT(migrator.transitions()[0].at, Seconds(3));
  EXPECT_LT(migrator.transitions()[0].at, Seconds(8));
  // Throughput maintained: client keeps completing ~100 K/s after the shift.
  const double rate_after = client.completion_rate().MeanValueBetween(
      Seconds(8), Seconds(10));
  EXPECT_GT(rate_after, 90000.0);
  // And the hardware now serves the bulk of hits.
  EXPECT_GT(testbed.lake()->l1_hits() + testbed.lake()->l2_hits(), 100000u);
}

// ---------------------------------------------------------------- DNS ----

TEST(DnsIntegrationTest, SoftwareResolves) {
  Simulation sim(1);
  DnsTestbedOptions options;
  options.mode = DnsMode::kSoftwareOnly;
  DnsTestbed testbed(sim, options);
  DnsWorkloadConfig workload;
  workload.dns_service = testbed.ServiceNode();
  workload.zone_size = options.zone_size;
  auto& client =
      testbed.AddClient(LoadClientConfig{}, std::make_unique<ConstantArrival>(50000.0),
                        MakeDnsRequestFactory(workload));
  client.Start();
  sim.RunUntil(Milliseconds(200));
  EXPECT_GT(client.received(), 9000u);
  EXPECT_GT(testbed.nsd()->answered(), 9000u);
}

TEST(DnsIntegrationTest, EmuResolvesInHardware) {
  Simulation sim(1);
  DnsTestbedOptions options;
  options.mode = DnsMode::kEmu;
  DnsTestbed testbed(sim, options);
  DnsWorkloadConfig workload;
  workload.dns_service = testbed.ServiceNode();
  workload.zone_size = options.zone_size;
  auto& client =
      testbed.AddClient(LoadClientConfig{}, std::make_unique<ConstantArrival>(50000.0),
                        MakeDnsRequestFactory(workload));
  client.Start();
  sim.RunUntil(Milliseconds(200));
  EXPECT_GT(client.received(), 9000u);
  EXPECT_GT(testbed.emu()->answered(), 9000u);
  EXPECT_EQ(testbed.nsd()->answered(), 0u);  // All served in hardware.
}

TEST(DnsIntegrationTest, PowerAnchorsMatchPaper) {
  // §4.4: Emu DNS system ~47.5 W; idle software server just under 40 W.
  Simulation sim(1);
  DnsTestbedOptions sw;
  sw.mode = DnsMode::kSoftwareOnly;
  DnsTestbed software(sim, sw);
  DnsTestbedOptions hw;
  hw.mode = DnsMode::kEmu;
  DnsTestbed emu(sim, hw);
  sim.RunUntil(Milliseconds(50));
  EXPECT_NEAR(software.meter().InstantWatts(), 39.5, 0.5);
  EXPECT_NEAR(emu.meter().InstantWatts(), 47.5, 0.5);
}

TEST(DnsIntegrationTest, NetworkControlledShift) {
  // §9.2: "Dynamically shifting DNS operation from software to the network
  // is much the same as shifting KVS", with the network-based controller.
  Simulation sim(1);
  DnsTestbedOptions options;
  options.mode = DnsMode::kEmu;
  options.emu_initially_active = false;
  DnsTestbed testbed(sim, options);
  DnsWorkloadConfig workload;
  workload.dns_service = testbed.ServiceNode();
  workload.zone_size = options.zone_size;
  auto& client =
      testbed.AddClient(LoadClientConfig{}, std::make_unique<ConstantArrival>(300000.0),
                        MakeDnsRequestFactory(workload));
  ClassifierMigrator migrator(sim, *testbed.fpga());
  NetworkControllerConfig controller_config;
  controller_config.up_rate_pps = 150000;
  controller_config.up_window = Seconds(1);
  controller_config.down_rate_pps = 50000;
  NetworkController controller(sim, *testbed.fpga(), migrator, controller_config);
  controller.Start();
  client.Start();
  sim.RunUntil(Seconds(3));
  EXPECT_EQ(migrator.placement(), Placement::kNetwork);
  EXPECT_GT(testbed.emu()->answered(), 0u);
}

// --------------------------------------------------------------- Paxos ----

TEST(PaxosIntegrationTest, LibpaxosReachesConsensus) {
  Simulation sim(1);
  PaxosTestbedOptions options;
  options.deployment = PaxosDeployment::kLibpaxos;
  options.client.requests_per_second = 10000;
  PaxosTestbed testbed(sim, options);
  testbed.client().Start();
  sim.RunUntil(Milliseconds(500));
  EXPECT_GT(testbed.client().completed(), 4000u);
  EXPECT_GT(testbed.learner()->state().delivered_count(), 4000u);
  // End-to-end latency: sub-millisecond at this load.
  EXPECT_LT(testbed.client().latency().P99(),
            static_cast<uint64_t>(Milliseconds(2)));
}

TEST(PaxosIntegrationTest, LibpaxosSaturatesNearPaperPeak) {
  // §3.2: libpaxos sustains ~178 Kmsg/s on one core.
  Simulation sim(1);
  PaxosTestbedOptions options;
  options.deployment = PaxosDeployment::kLibpaxos;
  options.client.requests_per_second = 400000;  // 2x capacity.
  options.client.max_retries = 0;               // Measure raw capacity.
  PaxosTestbed testbed(sim, options);
  testbed.client().Start();
  sim.RunUntil(Milliseconds(500));
  const double rate = static_cast<double>(testbed.client().completed()) / 0.5;
  EXPECT_GT(rate, 140000.0);
  EXPECT_LT(rate, 220000.0);
}

TEST(PaxosIntegrationTest, P4xosFpgaHandlesHighRate) {
  Simulation sim(1);
  PaxosTestbedOptions options;
  options.deployment = PaxosDeployment::kP4xosFpga;
  options.client.requests_per_second = 500000;
  options.client.max_retries = 0;
  PaxosTestbed testbed(sim, options);
  testbed.client().Start();
  sim.RunUntil(Milliseconds(300));
  const double rate = static_cast<double>(testbed.client().completed()) / 0.3;
  EXPECT_GT(rate, 450000.0);  // No software bottleneck.
}

TEST(PaxosIntegrationTest, PowerAnchorsPerDeployment) {
  // One simulation per measurement: a testbed's self-rescheduling events
  // (meter samples, learner gap timer) must not outlive it in a shared sim.
  auto measure = [](PaxosDeployment deployment) {
    Simulation sim(1);
    PaxosTestbedOptions options;
    options.deployment = deployment;
    options.client.requests_per_second = 1000;  // Near idle.
    auto testbed = std::make_unique<PaxosTestbed>(sim, options);
    sim.RunUntil(sim.Now() + Milliseconds(50));
    return testbed->meter().InstantWatts();
  };
  // §4: software idle 39 W; P4xos-in-server ~48 W; DPDK high at idle;
  // standalone board ~18 W.
  EXPECT_NEAR(measure(PaxosDeployment::kLibpaxos), 39.0, 1.0);
  EXPECT_NEAR(measure(PaxosDeployment::kP4xosFpga), 47.6, 1.0);
  EXPECT_GT(measure(PaxosDeployment::kDpdk), 85.0);
  EXPECT_NEAR(measure(PaxosDeployment::kP4xosStandalone), 18.2, 1.5);
}

TEST(PaxosIntegrationTest, Fig7LeaderMigrationMaintainsConsensus) {
  Simulation sim(1);
  PaxosTestbedOptions options;
  options.deployment = PaxosDeployment::kP4xosFpga;
  options.dual_leader = true;
  options.client.requests_per_second = 10000;
  options.client.retry_timeout = Milliseconds(100);
  PaxosTestbed testbed(sim, options);

  PaxosLeaderMigrator migrator(sim, testbed.net_switch(), kPaxosLeaderService,
                               *testbed.software_leader(), testbed.leader_port(),
                               *testbed.sut_fpga(), *testbed.fpga_leader(),
                               testbed.leader_port());
  // Shift to hardware at 1 s, back to software at 3 s (Fig 7).
  sim.Schedule(Seconds(1), [&] { migrator.ShiftToNetwork(); });
  sim.Schedule(Seconds(3), [&] { migrator.ShiftToHost(); });
  testbed.client().Start();
  sim.RunUntil(Seconds(5));

  ASSERT_EQ(migrator.transitions().size(), 2u);
  // Consensus kept running: the vast majority of requests completed.
  const double completed = static_cast<double>(testbed.client().completed());
  const double sent = static_cast<double>(testbed.client().sent());
  EXPECT_GT(completed / sent, 0.95);
  // Both leaders did work.
  EXPECT_GT(testbed.fpga_leader()->messages_handled(), 0u);
  EXPECT_GT(testbed.software_leader()->messages_handled(), 0u);
  // Retries occurred around the shifts (the ~100 ms gap of Fig 7).
  EXPECT_GT(testbed.client().retries(), 0u);
  // The new leader learned the old sequence instead of restarting at 1.
  EXPECT_GT(testbed.fpga_leader()->leader()->sequence_jumps(), 0u);
  // Throughput recovered after each shift.
  const double late_rate =
      testbed.client().completion_rate().MeanValueBetween(Seconds(4), Seconds(5));
  EXPECT_GT(late_rate, 9000.0);
}

TEST(PaxosIntegrationTest, AcceptorSutVariantsWork) {
  Simulation sim(1);
  PaxosTestbedOptions options;
  options.sut = PaxosSut::kAcceptor;
  options.deployment = PaxosDeployment::kLibpaxos;
  options.client.requests_per_second = 20000;
  PaxosTestbed testbed(sim, options);
  testbed.client().Start();
  sim.RunUntil(Milliseconds(300));
  EXPECT_GT(testbed.client().completed(), 4000u);
  EXPECT_GT(testbed.SutMessagesHandled(), 4000u);
}

}  // namespace
}  // namespace incod
