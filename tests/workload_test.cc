// Tests for arrival processes, the load client, ETC, and trace synthesis.
#include <gtest/gtest.h>

#include <memory>

#include "src/net/topology.h"
#include "src/sim/simulation.h"
#include "src/workload/arrival.h"
#include "src/workload/client.h"
#include "src/workload/dns_workload.h"
#include "src/workload/dynamo.h"
#include "src/workload/etc_workload.h"
#include "src/workload/google_trace.h"

namespace incod {
namespace {

TEST(ArrivalTest, ConstantGapsAreEven) {
  Rng rng(1);
  ConstantArrival arrival(1000.0);  // 1 ms gaps.
  EXPECT_EQ(arrival.NextGap(rng), Milliseconds(1));
  EXPECT_EQ(arrival.NextGap(rng), Milliseconds(1));
  EXPECT_DOUBLE_EQ(arrival.TargetRate(), 1000.0);
  arrival.SetRate(2000.0);
  EXPECT_EQ(arrival.NextGap(rng), Microseconds(500));
}

TEST(ArrivalTest, PoissonMeanGapMatchesRate) {
  Rng rng(2);
  PoissonArrival arrival(10000.0);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(arrival.NextGap(rng));
  }
  EXPECT_NEAR(sum / n, 100000.0, 2000.0);  // 100 us mean gap.
}

TEST(ArrivalTest, RejectsNonPositiveRates) {
  EXPECT_THROW(ConstantArrival(0), std::invalid_argument);
  EXPECT_THROW(PoissonArrival(-5), std::invalid_argument);
  EXPECT_THROW(OnOffArrival(0, 1, 1, 1), std::invalid_argument);
  EXPECT_THROW(OnOffArrival(1, 1, 0, 1), std::invalid_argument);
}

TEST(ArrivalTest, OnOffAlternatesPhases) {
  Rng rng(3);
  OnOffArrival arrival(1e6, 1e3, Milliseconds(10), Milliseconds(10));
  EXPECT_DOUBLE_EQ(arrival.TargetRate(), 1e6);
  // Drain more than one phase worth of gaps.
  SimDuration elapsed = 0;
  bool saw_off = false;
  for (int i = 0; i < 100000 && !saw_off; ++i) {
    elapsed += arrival.NextGap(rng);
    if (arrival.TargetRate() == 1e3) {
      saw_off = true;
    }
  }
  EXPECT_TRUE(saw_off);
}

// Echo service for the load client.
class EchoService : public PacketSink {
 public:
  explicit EchoService(Simulation& sim) : sim_(sim) {}
  void SetLink(Link* link) { link_ = link; }
  void Receive(Packet packet) override {
    ++requests;
    if (drop_next > 0) {
      --drop_next;
      return;
    }
    Packet reply;
    reply.src = packet.dst;
    reply.dst = packet.src;
    reply.proto = packet.proto;
    reply.id = packet.id;
    sim_.Schedule(Microseconds(5), [this, reply] { link_->Send(this, reply); });
  }
  std::string SinkName() const override { return "echo"; }
  int requests = 0;
  int drop_next = 0;

 private:
  Simulation& sim_;
  Link* link_ = nullptr;
};

RequestFactory RawFactory(NodeId dst) {
  return [dst](NodeId src, uint64_t id, SimTime now, Rng&) {
    Packet pkt;
    pkt.src = src;
    pkt.dst = dst;
    pkt.proto = AppProto::kRaw;
    pkt.id = id;
    pkt.created_at = now;
    return pkt;
  };
}

TEST(LoadClientTest, SendsAtConfiguredRateAndMeasuresLatency) {
  Simulation sim;
  Topology topo(sim);
  EchoService echo(sim);
  LoadClientConfig config;
  config.node = 100;
  LoadClient client(sim, config, std::make_unique<ConstantArrival>(10000.0),
                    RawFactory(1));
  Link* link = topo.Connect(&client, &echo);
  client.SetUplink(link);
  echo.SetLink(link);
  client.Start();
  sim.RunUntil(Milliseconds(100));
  EXPECT_NEAR(static_cast<double>(client.sent()), 1000.0, 10.0);
  EXPECT_EQ(client.received(),
            client.sent() - client.lost() - client.outstanding());
}

TEST(LoadClientTest, LostRepliesCountedAfterTimeout) {
  Simulation sim;
  Topology topo(sim);
  EchoService echo(sim);
  echo.drop_next = 5;
  LoadClientConfig config;
  config.loss_timeout = Milliseconds(100);
  LoadClient client(sim, config, std::make_unique<ConstantArrival>(1000.0),
                    RawFactory(1));
  Link* link = topo.Connect(&client, &echo);
  client.SetUplink(link);
  echo.SetLink(link);
  client.Start();
  sim.RunUntil(Milliseconds(500));
  EXPECT_EQ(client.lost(), 5u);
  EXPECT_GT(client.LossFraction(), 0.0);
}

TEST(LoadClientTest, LatencyHistogramPopulated) {
  Simulation sim;
  Topology topo(sim);
  EchoService echo(sim);
  LoadClient client(sim, LoadClientConfig{}, std::make_unique<ConstantArrival>(1000.0),
                    RawFactory(1));
  Link* link = topo.Connect(&client, &echo);
  client.SetUplink(link);
  echo.SetLink(link);
  client.Start();
  sim.RunUntil(Milliseconds(100));
  EXPECT_GT(client.latency().count(), 0u);
  // Echo adds 5 us; link adds serialization+propagation each way.
  EXPECT_GT(client.latency().P50(), static_cast<uint64_t>(Microseconds(5)));
  EXPECT_LT(client.latency().P50(), static_cast<uint64_t>(Microseconds(20)));
}

TEST(LoadClientTest, ResetStatsClears) {
  Simulation sim;
  Topology topo(sim);
  EchoService echo(sim);
  LoadClient client(sim, LoadClientConfig{}, std::make_unique<ConstantArrival>(1000.0),
                    RawFactory(1));
  Link* link = topo.Connect(&client, &echo);
  client.SetUplink(link);
  echo.SetLink(link);
  client.Start();
  sim.RunUntil(Milliseconds(50));
  client.ResetStats();
  EXPECT_EQ(client.sent(), 0u);
  EXPECT_EQ(client.latency().count(), 0u);
}

TEST(LoadClientTest, RejectsNullPieces) {
  Simulation sim;
  EXPECT_THROW(LoadClient(sim, LoadClientConfig{}, nullptr, RawFactory(1)),
               std::invalid_argument);
  EXPECT_THROW(LoadClient(sim, LoadClientConfig{},
                          std::make_unique<ConstantArrival>(1000.0), nullptr),
               std::invalid_argument);
}

TEST(EtcWorkloadTest, GetFractionRespected) {
  EtcWorkloadConfig config;
  config.kvs_service = 1;
  config.get_fraction = 0.97;
  EtcWorkload etc(config);
  Rng rng(5);
  int gets = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (etc.NextRequest(rng).op == KvOp::kGet) {
      ++gets;
    }
  }
  EXPECT_NEAR(static_cast<double>(gets) / n, 0.97, 0.005);
}

TEST(EtcWorkloadTest, KeyPopularityIsSkewed) {
  EtcWorkloadConfig config;
  config.kvs_service = 1;
  config.key_population = 100000;
  EtcWorkload etc(config);
  Rng rng(6);
  int top100 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (etc.NextRequest(rng).key < 100) {
      ++top100;
    }
  }
  EXPECT_GT(top100, n / 4);  // Zipf 0.99: heavy head.
}

TEST(EtcWorkloadTest, ValueSizesMostlySmall) {
  EtcWorkloadConfig config;
  config.kvs_service = 1;
  EtcWorkload etc(config);
  Rng rng(7);
  int small = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const uint32_t bytes = etc.SampleValueBytes(rng);
    EXPECT_GE(bytes, 2u);
    EXPECT_LE(bytes, 4096u);
    if (bytes <= 500) {
      ++small;
    }
  }
  EXPECT_GT(static_cast<double>(small) / n, 0.8);  // ETC: bulk under 500 B.
}

TEST(EtcWorkloadTest, FactoryProducesKvPackets) {
  EtcWorkloadConfig config;
  config.kvs_service = 42;
  EtcWorkload etc(config);
  Rng rng(8);
  const Packet pkt = etc.MakeFactory()(100, 7, 123, rng);
  EXPECT_EQ(pkt.proto, AppProto::kKv);
  EXPECT_EQ(pkt.dst, 42u);
  EXPECT_TRUE(PayloadIs<KvRequest>(pkt));
}

TEST(EtcWorkloadTest, RejectsBadConfig) {
  EtcWorkloadConfig config;  // Missing service address.
  EXPECT_THROW(EtcWorkload{config}, std::invalid_argument);
  config.kvs_service = 1;
  config.get_fraction = 1.5;
  EXPECT_THROW(EtcWorkload{config}, std::invalid_argument);
}

TEST(DnsWorkloadTest, FactoryProducesValidQueries) {
  DnsWorkloadConfig config;
  config.dns_service = 9;
  config.zone_size = 100;
  auto factory = MakeDnsRequestFactory(config);
  Rng rng(9);
  const Packet pkt = factory(100, 1, 0, rng);
  EXPECT_EQ(pkt.proto, AppProto::kDns);
  const auto& query = PayloadAs<DnsMessage>(pkt);
  ASSERT_EQ(query.questions.size(), 1u);
  EXPECT_TRUE(IsValidDnsName(query.questions[0].name));
}

TEST(DnsWorkloadTest, MissFractionGeneratesAbsentNames) {
  DnsWorkloadConfig config;
  config.dns_service = 9;
  config.miss_fraction = 1.0;
  auto factory = MakeDnsRequestFactory(config);
  Rng rng(10);
  const Packet pkt = factory(100, 1, 0, rng);
  const auto& query = PayloadAs<DnsMessage>(pkt);
  EXPECT_NE(query.questions[0].name.find("absent"), std::string::npos);
}

TEST(GoogleTraceTest, LongJobsDriveUtilization) {
  Rng rng(11);
  GoogleTraceConfig config;
  config.num_tasks = 50000;
  const auto tasks = SynthesizeGoogleTrace(config, rng);
  EXPECT_EQ(tasks.size(), 50000u);
  // ~90 % of core-seconds from jobs >= 2 h (§9.3).
  const double share = LongJobUtilizationShare(tasks, 2 * 3600);
  EXPECT_GT(share, 0.80);
  EXPECT_LT(share, 0.98);
}

TEST(GoogleTraceTest, OffloadCandidateAnalysis) {
  Rng rng(12);
  GoogleTraceConfig config;
  config.num_tasks = 50000;
  config.num_nodes = 500;
  const auto tasks = SynthesizeGoogleTrace(config, rng);
  const auto stats = AnalyzeOffloadCandidates(tasks, config.num_nodes);
  EXPECT_GT(stats.candidate_tasks, 0u);
  EXPECT_GT(stats.utilization_share, 0.5);
  EXPECT_GT(stats.mean_candidate_cores_per_node, 0.0);
  // Candidates are a minority of tasks but the bulk of utilization.
  EXPECT_LT(stats.candidate_fraction, 0.5);
}

TEST(GoogleTraceTest, DiurnalAmplitudeShapesStartDensity) {
  GoogleTraceConfig config;
  config.num_tasks = 50000;
  config.diurnal_amplitude = 0.8;
  // Density bottoms at the day start (phase -pi/2) and peaks mid-day.
  EXPECT_NEAR(DiurnalDensity(config, 0), 0.2, 1e-9);
  EXPECT_NEAR(DiurnalDensity(config, config.horizon_seconds / 2), 1.8, 1e-9);
  Rng rng(15);
  const auto tasks = SynthesizeGoogleTrace(config, rng);
  uint64_t first_quarter = 0, mid_half = 0;
  for (const TraceTask& task : tasks) {
    if (task.start_seconds < config.horizon_seconds / 4) {
      ++first_quarter;
    }
    if (task.start_seconds >= config.horizon_seconds / 4 &&
        task.start_seconds < 3 * config.horizon_seconds / 4) {
      ++mid_half;
    }
  }
  // Starts pile mid-day: the middle half draws far more than the off-peak
  // first quarter (a uniform trace would put ~25 % in each quarter).
  EXPECT_GT(mid_half, 2 * first_quarter);
}

TEST(GoogleTraceTest, ZeroAmplitudeKeepsHistoricalStream) {
  GoogleTraceConfig config;
  config.num_tasks = 2000;
  {
    // Amplitude 0 must be draw-for-draw the historical uniform stream.
    Rng a(16), b(16);
    const auto uniform = SynthesizeGoogleTrace(config, a);
    GoogleTraceConfig flat = config;
    flat.diurnal_amplitude = 0;
    const auto same = SynthesizeGoogleTrace(flat, b);
    ASSERT_EQ(uniform.size(), same.size());
    for (size_t i = 0; i < uniform.size(); ++i) {
      EXPECT_EQ(uniform[i].start_seconds, same[i].start_seconds) << "task " << i;
      EXPECT_EQ(uniform[i].node, same[i].node) << "task " << i;
    }
  }
  GoogleTraceConfig bad = config;
  bad.diurnal_amplitude = 1.5;
  Rng rng(17);
  EXPECT_THROW(SynthesizeGoogleTrace(bad, rng), std::invalid_argument);
}

TEST(GoogleTraceTest, EmptyInputsHandled) {
  const auto stats = AnalyzeOffloadCandidates({}, 10);
  EXPECT_EQ(stats.candidate_tasks, 0u);
  Rng rng(13);
  GoogleTraceConfig config;
  config.num_tasks = 0;
  EXPECT_THROW(SynthesizeGoogleTrace(config, rng), std::invalid_argument);
}

TEST(DynamoTest, TraceHasConfiguredMean) {
  Rng rng(14);
  PowerTraceConfig config;
  config.mean_watts = 500;
  config.sigma_watts = 10;
  config.num_samples = 5000;
  const auto trace = SynthesizePowerTrace(config, rng);
  double sum = 0;
  for (double w : trace) {
    sum += w;
  }
  EXPECT_NEAR(sum / static_cast<double>(trace.size()), 500.0, 25.0);
}

TEST(DynamoTest, WebTierVariesMoreThanCaching) {
  // §9.3: web 37.2 % median variation vs caching 9.2 % over 60 s.
  Rng rng1(15);
  Rng rng2(15);
  const auto caching = SynthesizePowerTrace(DynamoCachingTraceConfig(), rng1);
  const auto web = SynthesizePowerTrace(DynamoWebTraceConfig(), rng2);
  const auto caching_stats = AnalyzePowerVariation(caching, 1.0, 60.0);
  const auto web_stats = AnalyzePowerVariation(web, 1.0, 60.0);
  EXPECT_GT(web_stats.median, caching_stats.median);
  EXPECT_GT(web_stats.p99, caching_stats.p99);
}

TEST(DynamoTest, LongerWindowsVaryMore) {
  // Dynamo: 12.8 % p99 over 3 s but 26.6 % over 30 s.
  Rng rng(16);
  const auto trace = SynthesizePowerTrace(DynamoCachingTraceConfig(), rng);
  const auto short_window = AnalyzePowerVariation(trace, 1.0, 3.0);
  const auto long_window = AnalyzePowerVariation(trace, 1.0, 30.0);
  EXPECT_GT(long_window.p99, short_window.p99);
}

TEST(DynamoTest, SafetyRule) {
  PowerVariationStats low{0.05, 0.12};
  PowerVariationStats high{0.37, 0.62};
  EXPECT_TRUE(SafeForInNetworkPlacement(low));
  EXPECT_FALSE(SafeForInNetworkPlacement(high));
}

TEST(DynamoTest, DegenerateInputs) {
  EXPECT_EQ(AnalyzePowerVariation({}, 1.0, 3.0).p99, 0.0);
  EXPECT_EQ(AnalyzePowerVariation({1.0}, 1.0, 30.0).p99, 0.0);
  Rng rng(17);
  PowerTraceConfig config;
  config.num_samples = 0;
  EXPECT_THROW(SynthesizePowerTrace(config, rng), std::invalid_argument);
  config.num_samples = 10;
  config.ar1_coefficient = 1.5;
  EXPECT_THROW(SynthesizePowerTrace(config, rng), std::invalid_argument);
}

}  // namespace
}  // namespace incod
