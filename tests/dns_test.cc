// Tests for DNS wire format, zone, NSD and Emu DNS.
#include <gtest/gtest.h>

#include <memory>

#include "src/device/fpga_nic.h"
#include "src/dns/dns_message.h"
#include "src/dns/emu_dns.h"
#include "src/dns/nsd_server.h"
#include "src/dns/zone.h"
#include "src/host/server.h"
#include "src/net/topology.h"
#include "src/sim/random.h"
#include "src/sim/simulation.h"

namespace incod {
namespace {

TEST(DnsNameTest, Validation) {
  EXPECT_TRUE(IsValidDnsName("example.com"));
  EXPECT_TRUE(IsValidDnsName("a"));
  EXPECT_TRUE(IsValidDnsName("a.b.c.d.e"));
  EXPECT_FALSE(IsValidDnsName(""));
  EXPECT_FALSE(IsValidDnsName(".leading.dot"));
  EXPECT_FALSE(IsValidDnsName("trailing.dot."));
  EXPECT_FALSE(IsValidDnsName("double..dot"));
  EXPECT_FALSE(IsValidDnsName(std::string(64, 'x') + ".com"));  // Label > 63.
  EXPECT_FALSE(IsValidDnsName(std::string(254, 'x')));          // Name > 253.
}

TEST(DnsNameTest, CountLabels) {
  EXPECT_EQ(CountLabels(""), 0);
  EXPECT_EQ(CountLabels("com"), 1);
  EXPECT_EQ(CountLabels("www.example.com"), 3);
}

TEST(DnsIpv4Test, RoundTrip) {
  const uint32_t ip = 0xC0A80101;  // 192.168.1.1
  EXPECT_EQ(Ipv4ToString(ip), "192.168.1.1");
  EXPECT_EQ(ParseIpv4("192.168.1.1"), ip);
  EXPECT_EQ(RdataToIpv4(Ipv4ToRdata(ip)), ip);
  EXPECT_FALSE(ParseIpv4("300.1.1.1").has_value());
  EXPECT_FALSE(ParseIpv4("1.2.3").has_value());
  EXPECT_FALSE(ParseIpv4("1.2.3.4.5").has_value());
  DnsRdata three_bytes;
  three_bytes.push_back(1);
  three_bytes.push_back(2);
  three_bytes.push_back(3);
  EXPECT_THROW(RdataToIpv4(three_bytes), std::invalid_argument);
}

TEST(DnsWireTest, QueryRoundTrip) {
  DnsMessage query;
  query.id = 0xbeef;
  query.recursion_desired = true;
  query.questions.push_back(DnsQuestion{"www.example.com", kDnsTypeA, kDnsClassIn});
  const auto wire = EncodeDnsMessage(query);
  const auto decoded = DecodeDnsMessage(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->id, 0xbeef);
  EXPECT_FALSE(decoded->is_response);
  EXPECT_TRUE(decoded->recursion_desired);
  ASSERT_EQ(decoded->questions.size(), 1u);
  EXPECT_EQ(decoded->questions[0].name, "www.example.com");
}

TEST(DnsWireTest, ResponseWithAnswerRoundTrip) {
  DnsMessage resp;
  resp.id = 7;
  resp.is_response = true;
  resp.authoritative = true;
  resp.rcode = DnsRcode::kNoError;
  resp.questions.push_back(DnsQuestion{"host.example", kDnsTypeA, kDnsClassIn});
  DnsResourceRecord rr;
  rr.name = "host.example";
  rr.ttl = 600;
  rr.rdata = Ipv4ToRdata(0x0a000001);
  resp.answers.push_back(rr);
  const auto decoded = DecodeDnsMessage(EncodeDnsMessage(resp));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->is_response);
  EXPECT_TRUE(decoded->authoritative);
  ASSERT_EQ(decoded->answers.size(), 1u);
  EXPECT_EQ(decoded->answers[0].ttl, 600u);
  EXPECT_EQ(RdataToIpv4(decoded->answers[0].rdata), 0x0a000001u);
}

TEST(DnsWireTest, NxDomainFlagSurvives) {
  DnsMessage resp;
  resp.is_response = true;
  resp.rcode = DnsRcode::kNxDomain;
  const auto decoded = DecodeDnsMessage(EncodeDnsMessage(resp));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->rcode, DnsRcode::kNxDomain);
}

TEST(DnsWireTest, MalformedInputsRejected) {
  EXPECT_FALSE(DecodeDnsMessage({}).has_value());
  EXPECT_FALSE(DecodeDnsMessage({0x00, 0x01, 0x02}).has_value());
  // Header claiming a question with no question bytes.
  std::vector<uint8_t> truncated = {0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0};
  EXPECT_FALSE(DecodeDnsMessage(truncated).has_value());
  // Compression pointer (0xc0) is unsupported by the Emu parser model.
  std::vector<uint8_t> pointer = {0, 1, 0, 0, 0, 1, 0, 0, 0,    0,
                                  0, 0, 0xc0, 0x0c, 0, 1, 0, 1};
  EXPECT_FALSE(DecodeDnsMessage(pointer).has_value());
}

TEST(DnsWireTest, EncodeRejectsInvalidName) {
  DnsMessage query;
  query.questions.push_back(DnsQuestion{"bad..name", kDnsTypeA, kDnsClassIn});
  EXPECT_THROW(EncodeDnsMessage(query), std::invalid_argument);
}

// Round-trip property over generated names.
class DnsRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(DnsRoundTripTest, RandomNamesSurviveRoundTrip) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  for (int iter = 0; iter < 200; ++iter) {
    const int labels = static_cast<int>(rng.UniformInt(1, 6));
    std::string name;
    for (int l = 0; l < labels; ++l) {
      if (l > 0) {
        name.push_back('.');
      }
      const int len = static_cast<int>(rng.UniformInt(1, 20));
      for (int c = 0; c < len; ++c) {
        name.push_back(static_cast<char>('a' + rng.UniformInt(0, 25)));
      }
    }
    DnsMessage query;
    query.id = static_cast<uint16_t>(rng.UniformInt(0, 65535));
    query.questions.push_back(DnsQuestion{name, kDnsTypeA, kDnsClassIn});
    const auto decoded = DecodeDnsMessage(EncodeDnsMessage(query));
    ASSERT_TRUE(decoded.has_value()) << name;
    EXPECT_EQ(decoded->questions[0].name, name);
    EXPECT_EQ(decoded->id, query.id);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DnsRoundTripTest, ::testing::Values(1, 2, 3, 4));

TEST(ZoneTest, AddLookupRemove) {
  Zone zone;
  EXPECT_TRUE(zone.AddRecord("a.example", 0x01020304));
  const auto rec = zone.Lookup("a.example");
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->ipv4, 0x01020304u);
  EXPECT_FALSE(zone.Lookup("b.example").has_value());
  EXPECT_TRUE(zone.Remove("a.example"));
  EXPECT_FALSE(zone.Remove("a.example"));
  EXPECT_FALSE(zone.AddRecord("bad..name", 1));
}

TEST(ZoneTest, LoadZoneText) {
  Zone zone;
  const int n = zone.LoadZoneText(
      "# comment\n"
      "www.example A 10.0.0.1\n"
      "mail.example 600 A 10.0.0.2  ; with ttl\n"
      "\n");
  EXPECT_EQ(n, 2);
  EXPECT_EQ(zone.Lookup("www.example")->ipv4, 0x0a000001u);
  EXPECT_EQ(zone.Lookup("mail.example")->ttl, 600u);
}

TEST(ZoneTest, LoadZoneTextRejectsMalformed) {
  Zone zone;
  EXPECT_EQ(zone.LoadZoneText("www.example MX 10.0.0.1\n"), -1);
  EXPECT_EQ(zone.LoadZoneText("www.example A not-an-ip\n"), -1);
  EXPECT_EQ(zone.LoadZoneText("lonely-token\n"), -1);
}

TEST(ZoneTest, FillSynthetic) {
  Zone zone;
  zone.FillSynthetic(100);
  EXPECT_EQ(zone.size(), 100u);
  EXPECT_TRUE(zone.Lookup(Zone::SyntheticName(42)).has_value());
}

TEST(NsdResolveTest, AnswersFromZone) {
  Zone zone;
  zone.AddRecord("host.example", 0x0a000001, 123);
  DnsMessage query;
  query.id = 5;
  query.questions.push_back(DnsQuestion{"host.example", kDnsTypeA, kDnsClassIn});
  const DnsMessage resp = NsdServer::Resolve(zone, query);
  EXPECT_TRUE(resp.is_response);
  EXPECT_TRUE(resp.authoritative);
  EXPECT_EQ(resp.rcode, DnsRcode::kNoError);
  ASSERT_EQ(resp.answers.size(), 1u);
  EXPECT_EQ(RdataToIpv4(resp.answers[0].rdata), 0x0a000001u);
  EXPECT_EQ(resp.answers[0].ttl, 123u);
  EXPECT_EQ(resp.id, 5);
}

TEST(NsdResolveTest, NxDomainForAbsentName) {
  Zone zone;
  DnsMessage query;
  query.questions.push_back(DnsQuestion{"missing.example", kDnsTypeA, kDnsClassIn});
  EXPECT_EQ(NsdServer::Resolve(zone, query).rcode, DnsRcode::kNxDomain);
}

TEST(NsdResolveTest, NotImpForUnsupportedType) {
  Zone zone;
  zone.AddRecord("host.example", 1);
  DnsMessage query;
  query.questions.push_back(DnsQuestion{"host.example", kDnsTypeAaaa, kDnsClassIn});
  EXPECT_EQ(NsdServer::Resolve(zone, query).rcode, DnsRcode::kNotImp);
}

TEST(NsdResolveTest, FormErrForEmptyQuestion) {
  Zone zone;
  EXPECT_EQ(NsdServer::Resolve(zone, DnsMessage{}).rcode, DnsRcode::kFormErr);
}

TEST(NsdServerTest, RejectsNullZone) {
  EXPECT_THROW(NsdServer(nullptr), std::invalid_argument);
}

// ---- Emu DNS on the FPGA ----

struct EmuHarness {
  EmuHarness() : sim(), topo(sim) {
    zone.FillSynthetic(16);
    emu = std::make_unique<EmuDns>(&zone);
    FpgaNicConfig config;
    config.host_node = 1;
    config.device_node = 50;
    fpga = std::make_unique<FpgaNic>(sim, config);
    fpga->InstallApp(emu.get());
    net_link = topo.Connect(&client_side, fpga.get());
    fpga->SetNetworkLink(net_link);
    host_link = topo.Connect(fpga.get(), &host_side);
    fpga->SetHostLink(host_link);
    fpga->SetAppActive(true);
  }
  Packet Query(const std::string& name, uint64_t id = 1) {
    DnsMessage query;
    query.id = static_cast<uint16_t>(id);
    query.questions.push_back(DnsQuestion{name, kDnsTypeA, kDnsClassIn});
    Packet pkt;
    pkt.src = 100;
    pkt.dst = 1;
    pkt.proto = AppProto::kDns;
    pkt.size_bytes = DnsWireBytes(query);
    pkt.id = id;
    pkt.payload = query;
    return pkt;
  }
  struct Collector : PacketSink {
    void Receive(Packet packet) override { packets.push_back(std::move(packet)); }
    std::string SinkName() const override { return "side"; }
    std::vector<Packet> packets;
  };
  Simulation sim;
  Topology topo;
  Zone zone;
  Collector client_side;
  Collector host_side;
  std::unique_ptr<EmuDns> emu;
  std::unique_ptr<FpgaNic> fpga;
  Link* net_link;
  Link* host_link;
};

TEST(EmuDnsTest, AnswersKnownName) {
  EmuHarness h;
  h.fpga->Receive(h.Query(Zone::SyntheticName(3)));
  h.sim.Run();
  ASSERT_EQ(h.client_side.packets.size(), 1u);
  const auto& resp = PayloadAs<DnsMessage>(h.client_side.packets[0]);
  EXPECT_EQ(resp.rcode, DnsRcode::kNoError);
  EXPECT_EQ(h.emu->answered(), 1u);
}

TEST(EmuDnsTest, NxDomainForUnknownName) {
  EmuHarness h;
  h.fpga->Receive(h.Query("unknown.absent.example"));
  h.sim.Run();
  ASSERT_EQ(h.client_side.packets.size(), 1u);
  EXPECT_EQ(PayloadAs<DnsMessage>(h.client_side.packets[0]).rcode, DnsRcode::kNxDomain);
  EXPECT_EQ(h.emu->nxdomain(), 1u);
}

TEST(EmuDnsTest, DeepNamesPuntToHost) {
  EmuHarness h;
  h.fpga->Receive(h.Query("a.b.c.d.e.f.g.h.i.j.k"));  // 11 labels > 8 budget.
  h.sim.Run();
  EXPECT_EQ(h.emu->punted_to_host(), 1u);
  EXPECT_EQ(h.host_side.packets.size(), 1u);
  EXPECT_TRUE(h.client_side.packets.empty());
}

TEST(EmuDnsTest, MatchesHardwareAndSoftwareAnswers) {
  // The §9.2 requirement: the shift is invisible — HW and SW produce the
  // same resolution result.
  EmuHarness h;
  DnsMessage query;
  query.id = 9;
  query.questions.push_back(
      DnsQuestion{Zone::SyntheticName(5), kDnsTypeA, kDnsClassIn});
  const DnsMessage sw = NsdServer::Resolve(h.zone, query);
  h.fpga->Receive(h.Query(Zone::SyntheticName(5), 9));
  h.sim.Run();
  ASSERT_EQ(h.client_side.packets.size(), 1u);
  const auto& hw = PayloadAs<DnsMessage>(h.client_side.packets[0]);
  EXPECT_EQ(hw.rcode, sw.rcode);
  ASSERT_EQ(hw.answers.size(), sw.answers.size());
  EXPECT_EQ(RdataToIpv4(hw.answers[0].rdata), RdataToIpv4(sw.answers[0].rdata));
}

TEST(EmuDnsTest, NonPipelinedCapacityIsAboutOneMqps) {
  EmuHarness h;
  // Offer 2 Mqps for 10 ms: ~1 M served per second means ~10 K responses.
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    h.sim.Schedule(i * 500, [&h, i] {
      h.fpga->Receive(h.Query(Zone::SyntheticName(i % 16), i + 1));
    });
  }
  h.sim.RunUntil(Milliseconds(11));
  const double rate = static_cast<double>(h.client_side.packets.size()) / 0.011;
  EXPECT_GT(rate, 0.8e6);
  EXPECT_LT(rate, 1.2e6);
}

TEST(EmuDnsTest, PowerModulesTotalOnePointFive) {
  EmuHarness h;
  double watts = 0;
  for (const auto& m : h.emu->PowerModules()) {
    watts += m.active_watts;
  }
  EXPECT_NEAR(watts, 1.5, 1e-9);
}

TEST(EmuDnsTest, RejectsNullZone) {
  EXPECT_THROW(EmuDns(nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace incod
