// ShardedSimulation unit tests: parallel mode must be event-identical to
// the single-queue reference — same per-shard execution traces, same
// cross-shard tie-breaking, same cancel decisions, same RNG streams.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "src/sim/sharded.h"
#include "src/sim/simulation.h"

namespace incod {
namespace {

using Mode = ShardedSimulation::Mode;
using Trace = std::vector<std::pair<SimTime, uint64_t>>;

constexpr SimDuration kLookahead = Microseconds(1);

ShardedSimulation::Options MakeOptions(Mode mode, int shards, int threads,
                                       uint64_t seed = 5) {
  ShardedSimulation::Options options;
  options.num_shards = shards;
  options.num_threads = threads;
  options.mode = mode;
  options.seed = seed;
  return options;
}

// Self-expanding churn that hops shards: every event records (Now, tag) into
// its shard's trace, schedules local children at 0..2us gaps, and posts a
// cross-shard child to the next shard at now + L + jitter. Identical logic
// in both modes => per-shard traces must match exactly.
struct HopDriver {
  ShardedSimulation* ssim;
  int shard;
  std::vector<Trace>* traces;
  uint64_t state;
  uint64_t tag;
  int depth;

  void operator()() {
    Simulation& sim = ssim->shard(shard);
    (*traces)[static_cast<size_t>(shard)].push_back({sim.Now(), tag});
    if (depth >= 5) {
      return;
    }
    uint64_t s = state;
    const auto next = [&s] {
      s = s * 6364136223846793005ULL + 1442695040888963407ULL;
      return s >> 33;
    };
    const uint64_t locals = next() % 3;
    for (uint64_t c = 0; c < locals; ++c) {
      sim.Schedule(static_cast<SimDuration>(next() % 2000),
                   HopDriver{ssim, shard, traces, next(), tag * 31 + c + 1, depth + 1});
    }
    if (next() % 2 == 0) {
      const int dst = (shard + 1) % ssim->num_shards();
      const SimTime at = sim.Now() + kLookahead + static_cast<SimDuration>(next() % 1000);
      ssim->PostCrossShard(shard, dst, at,
                           HopDriver{ssim, dst, traces, next(), tag * 37 + 7, depth + 1});
    }
  }
};

std::vector<Trace> RunHopWorkload(Mode mode, int threads, uint64_t seed) {
  ShardedSimulation ssim(MakeOptions(mode, 4, threads, seed));
  ssim.RegisterCrossShardLatency(kLookahead);
  std::vector<Trace> traces(4);
  for (int shard = 0; shard < 4; ++shard) {
    for (int i = 0; i < 10; ++i) {
      ssim.shard(shard).Schedule(
          static_cast<SimDuration>(i * 137),
          HopDriver{&ssim, shard, &traces,
                    0x9e3779b97f4a7c15ULL * (seed + static_cast<uint64_t>(i) + 1),
                    static_cast<uint64_t>(shard * 1000 + i), 0});
    }
  }
  ssim.Run();
  EXPECT_EQ(ssim.pending_events(), 0u);
  return traces;
}

TEST(ShardedSimTest, CrossShardChurnIdenticalAcrossModes) {
  for (const uint64_t seed : {3u, 7u, 11u}) {
    const std::vector<Trace> reference = RunHopWorkload(Mode::kSingleQueue, 1, seed);
    size_t total = 0;
    for (const Trace& t : reference) {
      total += t.size();
    }
    ASSERT_GT(total, 200u) << "workload did not expand, seed " << seed;
    for (const int threads : {1, 2, 4}) {
      const std::vector<Trace> parallel = RunHopWorkload(Mode::kParallel, threads, seed);
      for (int shard = 0; shard < 4; ++shard) {
        const Trace& want = reference[static_cast<size_t>(shard)];
        const Trace& got = parallel[static_cast<size_t>(shard)];
        ASSERT_EQ(want.size(), got.size())
            << "shard " << shard << " threads " << threads << " seed " << seed;
        for (size_t i = 0; i < want.size(); ++i) {
          ASSERT_EQ(want[i], got[i]) << "shard " << shard << " event " << i
                                     << " threads " << threads << " seed " << seed;
        }
      }
    }
  }
}

TEST(ShardedSimTest, SameTickDeliveriesOrderBySourceShardThenSendOrder) {
  for (const Mode mode : {Mode::kSingleQueue, Mode::kParallel}) {
    ShardedSimulation ssim(MakeOptions(mode, 3, 3));
    ssim.RegisterCrossShardLatency(kLookahead);
    const SimTime tick = Microseconds(2);
    std::vector<uint64_t> order;  // Executed in shard 0 only: no race.
    // Receiver-local events at the contested tick land first.
    ssim.shard(0).ScheduleAt(tick, [&order] { order.push_back(100); });
    ssim.shard(0).ScheduleAt(tick, [&order] { order.push_back(101); });
    // Sources post interleaved; arrival order must not matter.
    ssim.PostCrossShard(2, 0, tick, [&order] { order.push_back(200); });
    ssim.PostCrossShard(1, 0, tick, [&order] { order.push_back(110); });
    ssim.PostCrossShard(2, 0, tick, [&order] { order.push_back(201); });
    ssim.PostCrossShard(1, 0, tick, [&order] { order.push_back(111); });
    ssim.Run();
    const std::vector<uint64_t> want = {100, 101, 110, 111, 200, 201};
    EXPECT_EQ(order, want) << "mode " << static_cast<int>(mode);
  }
}

TEST(ShardedSimTest, LookaheadViolationThrows) {
  ShardedSimulation ssim(MakeOptions(Mode::kParallel, 2, 2));
  // No registered latency: any cross-shard post is a topology bug.
  EXPECT_THROW(ssim.PostCrossShard(0, 1, Microseconds(5), [] {}), std::logic_error);
  ssim.RegisterCrossShardLatency(kLookahead);
  // Under the lookahead bound: the receiver may already be past this time.
  EXPECT_THROW(ssim.PostCrossShard(0, 1, kLookahead - 1, [] {}), std::logic_error);
  ssim.PostCrossShard(0, 1, kLookahead, [] {});  // Exactly at the bound: fine.
  ssim.Run();
}

struct CancelOutcome {
  bool first = false;
  bool second = false;
  bool delivered = false;

  bool operator==(const CancelOutcome&) const = default;
};

// Posts a cancellable delivery to shard 1 at `deliver_at`, then attempts to
// cancel from shard 0 at `cancel_at` (and once more a tick later when
// `double_cancel`). Returns the cancel results and whether it still fired.
CancelOutcome RunCancelProbe(Mode mode, SimTime deliver_at, SimTime cancel_at,
                             bool double_cancel = false) {
  ShardedSimulation ssim(MakeOptions(mode, 2, 2));
  ssim.RegisterCrossShardLatency(kLookahead);
  CancelOutcome outcome;
  const auto id = ssim.PostCrossShardCancellable(
      0, 1, deliver_at, [&outcome] { outcome.delivered = true; });
  ssim.shard(0).ScheduleAt(cancel_at, [&ssim, id, &outcome] {
    outcome.first = ssim.CancelCrossShard(id);
  });
  if (double_cancel) {
    ssim.shard(0).ScheduleAt(cancel_at + 1, [&ssim, id, &outcome] {
      outcome.second = ssim.CancelCrossShard(id);
    });
  }
  ssim.RunUntil(deliver_at + Microseconds(5));
  return outcome;
}

TEST(ShardedSimTest, TimelyCrossShardCancelTakesEffect) {
  // Cancel at 5us against a 10us delivery: 5 + L <= 10, must succeed —
  // before the safe-horizon handoff ever sees the event.
  for (const Mode mode : {Mode::kSingleQueue, Mode::kParallel}) {
    const CancelOutcome outcome =
        RunCancelProbe(mode, Microseconds(10), Microseconds(5));
    EXPECT_EQ(outcome, (CancelOutcome{true, false, false}))
        << "mode " << static_cast<int>(mode);
  }
}

TEST(ShardedSimTest, LateCrossShardCancelFailsAndDeliveryFires) {
  // Cancel at 2.5us against a 3us delivery: 2.5 + L > 3. The safe horizon
  // may already have handed the event to shard 1 (it may even have fired);
  // the conservative rule rejects the cancel identically in both modes.
  for (const Mode mode : {Mode::kSingleQueue, Mode::kParallel}) {
    const CancelOutcome outcome =
        RunCancelProbe(mode, Microseconds(3), Nanoseconds(2500));
    EXPECT_EQ(outcome, (CancelOutcome{false, false, true}))
        << "mode " << static_cast<int>(mode);
  }
}

TEST(ShardedSimTest, CancelAfterDeliveryTimeFails) {
  for (const Mode mode : {Mode::kSingleQueue, Mode::kParallel}) {
    const CancelOutcome outcome =
        RunCancelProbe(mode, Microseconds(3), Microseconds(8));
    EXPECT_EQ(outcome, (CancelOutcome{false, false, true}))
        << "mode " << static_cast<int>(mode);
  }
}

TEST(ShardedSimTest, DoubleCancelSecondAttemptFails) {
  for (const Mode mode : {Mode::kSingleQueue, Mode::kParallel}) {
    const CancelOutcome outcome = RunCancelProbe(mode, Microseconds(10),
                                                 Microseconds(5),
                                                 /*double_cancel=*/true);
    EXPECT_EQ(outcome, (CancelOutcome{true, false, false}))
        << "mode " << static_cast<int>(mode);
  }
}

TEST(ShardedSimTest, RunUntilAdvancesEveryShardClock) {
  for (const Mode mode : {Mode::kSingleQueue, Mode::kParallel}) {
    ShardedSimulation ssim(MakeOptions(mode, 3, 3));
    ssim.RegisterCrossShardLatency(kLookahead);
    // Uneven load: shard 0 busy, shard 2 empty.
    for (int i = 0; i < 100; ++i) {
      ssim.shard(0).Schedule(Microseconds(i), [] {});
    }
    ssim.shard(1).Schedule(Microseconds(3), [] {});
    ssim.RunUntil(Milliseconds(1));
    EXPECT_EQ(ssim.Now(), Milliseconds(1));
    for (int shard = 0; shard < 3; ++shard) {
      EXPECT_EQ(ssim.shard(shard).Now(), Milliseconds(1))
          << "shard " << shard << " mode " << static_cast<int>(mode);
    }
  }
}

TEST(ShardedSimTest, ShardRngStreamsIdenticalAcrossModes) {
  ShardedSimulation single(MakeOptions(Mode::kSingleQueue, 4, 1, 77));
  ShardedSimulation parallel(MakeOptions(Mode::kParallel, 4, 4, 77));
  for (int shard = 0; shard < 4; ++shard) {
    Rng a = single.shard(shard).rng().Fork();
    Rng b = parallel.shard(shard).rng().Fork();
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(a.NextU64(), b.NextU64()) << "shard " << shard << " draw " << i;
    }
  }
  // And the per-shard roots are genuinely distinct streams.
  Rng s0 = single.shard(0).rng().Fork();
  Rng s1 = single.shard(1).rng().Fork();
  EXPECT_NE(s0.NextU64(), s1.NextU64());
}

TEST(ShardedSimTest, EventsExecutedAggregatesAcrossModes) {
  for (const uint64_t seed : {5u}) {
    ShardedSimulation a(MakeOptions(Mode::kSingleQueue, 4, 1, seed));
    ShardedSimulation b(MakeOptions(Mode::kParallel, 4, 4, seed));
    for (ShardedSimulation* ssim : {&a, &b}) {
      ssim->RegisterCrossShardLatency(kLookahead);
      for (int shard = 0; shard < 4; ++shard) {
        for (int i = 0; i < 50; ++i) {
          ssim->shard(shard).Schedule(static_cast<SimDuration>(i * 100), [] {});
        }
      }
      ssim->Run();
    }
    EXPECT_EQ(a.events_executed(), 200u);
    EXPECT_EQ(a.events_executed(), b.events_executed());
    EXPECT_EQ(a.pending_events(), 0u);
    EXPECT_EQ(b.pending_events(), 0u);
  }
}

}  // namespace
}  // namespace incod
