// Tests for histograms, time series, sliding windows, and CSV output.
#include <gtest/gtest.h>

#include <sstream>

#include "src/stats/counters.h"
#include "src/stats/csv.h"
#include "src/stats/histogram.h"
#include "src/stats/timeseries.h"

namespace incod {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1000u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_EQ(h.P50(), 1000u);
  EXPECT_EQ(h.P99(), 1000u);
}

TEST(HistogramTest, SmallValuesExact) {
  // Values below the sub-bucket count are recorded exactly.
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.ValueAtQuantile(0.5), 50u);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 100u);
  EXPECT_EQ(h.min(), 1u);
}

TEST(HistogramTest, RelativePrecisionBounded) {
  Histogram h;  // 6 significant bits -> ~1.6 % relative error.
  const uint64_t value = 123456789;
  h.Record(value);
  const uint64_t p50 = h.P50();
  const double rel =
      std::abs(static_cast<double>(p50) - static_cast<double>(value)) / value;
  EXPECT_LT(rel, 0.02);
}

TEST(HistogramTest, QuantileMonotonicity) {
  Histogram h;
  for (int i = 0; i < 10000; ++i) {
    h.Record(static_cast<uint64_t>(i * 37 + 1));
  }
  uint64_t prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const uint64_t v = h.ValueAtQuantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(HistogramTest, MeanIsExact) {
  Histogram h;
  h.Record(10);
  h.Record(20);
  h.Record(30);
  EXPECT_DOUBLE_EQ(h.Mean(), 20.0);
}

TEST(HistogramTest, RecordNCounts) {
  Histogram h;
  h.RecordN(5, 100);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.P50(), 5u);
  h.RecordN(7, 0);  // No-op.
  EXPECT_EQ(h.count(), 100u);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h;
  h.Record(42);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
  h.Record(7);
  EXPECT_EQ(h.P50(), 7u);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a;
  Histogram b;
  a.Record(10);
  b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000u);
}

TEST(HistogramTest, MergeRejectsGeometryMismatch) {
  Histogram a(1 << 20, 6);
  Histogram b(1 << 30, 6);
  EXPECT_THROW(a.Merge(b), std::invalid_argument);
}

TEST(HistogramTest, ClampsAboveMaxValue) {
  Histogram h(1000, 6);
  h.Record(50000);  // Far beyond max: clamped into the top bucket.
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.max(), 50000u);  // recorded_max keeps the raw value.
}

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1, 6), std::invalid_argument);
  EXPECT_THROW(Histogram(1000, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1000, 15), std::invalid_argument);
}

// Percentile sanity across magnitudes (property sweep).
class HistogramScaleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HistogramScaleTest, P99WithinPrecision) {
  Histogram h;
  const uint64_t scale = GetParam();
  for (uint64_t i = 1; i <= 1000; ++i) {
    h.Record(i * scale);
  }
  const double p99 = static_cast<double>(h.P99());
  const double expect = static_cast<double>(990 * scale);
  EXPECT_NEAR(p99 / expect, 1.0, 0.03);
}

INSTANTIATE_TEST_SUITE_P(Scales, HistogramScaleTest,
                         ::testing::Values(1u, 10u, 1000u, 1000000u));

TEST(TimeSeriesTest, BasicStats) {
  TimeSeries ts("x");
  ts.Append(0, 1.0);
  ts.Append(Seconds(1), 3.0);
  ts.Append(Seconds(2), 5.0);
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_DOUBLE_EQ(ts.MinValue(), 1.0);
  EXPECT_DOUBLE_EQ(ts.MaxValue(), 5.0);
  EXPECT_DOUBLE_EQ(ts.MeanValue(), 3.0);
}

TEST(TimeSeriesTest, MeanBetweenWindow) {
  TimeSeries ts;
  for (int i = 0; i < 10; ++i) {
    ts.Append(Seconds(i), static_cast<double>(i));
  }
  // [2s, 5s) covers samples 2, 3, 4.
  EXPECT_DOUBLE_EQ(ts.MeanValueBetween(Seconds(2), Seconds(5)), 3.0);
  EXPECT_DOUBLE_EQ(ts.MeanValueBetween(Seconds(100), Seconds(200)), 0.0);
}

TEST(SlidingWindowRateTest, RateOverWindow) {
  SlidingWindowRate rate(Seconds(1));
  for (int i = 0; i < 100; ++i) {
    rate.RecordEvent(Milliseconds(i * 10));
  }
  // 100 events in the last second.
  EXPECT_NEAR(rate.RatePerSecond(Milliseconds(990)), 100.0, 1.0);
}

TEST(SlidingWindowRateTest, OldEventsEvicted) {
  SlidingWindowRate rate(Seconds(1));
  rate.RecordEvent(0, 1000);
  EXPECT_GT(rate.RatePerSecond(Milliseconds(500)), 0.0);
  EXPECT_DOUBLE_EQ(rate.RatePerSecond(Seconds(3)), 0.0);
}

TEST(SlidingWindowRateTest, CountedEvents) {
  SlidingWindowRate rate(Seconds(1));
  rate.RecordEvent(0, 50);
  rate.RecordEvent(Milliseconds(100), 50);
  EXPECT_NEAR(rate.RatePerSecond(Milliseconds(200)), 100.0, 0.1);
}

TEST(SlidingWindowRateTest, RejectsBadWindow) {
  EXPECT_THROW(SlidingWindowRate(0), std::invalid_argument);
}

TEST(SlidingWindowMeanTest, MeanAndEviction) {
  SlidingWindowMean mean(Seconds(1));
  mean.AddSample(0, 10.0);
  mean.AddSample(Milliseconds(500), 20.0);
  EXPECT_DOUBLE_EQ(mean.Mean(Milliseconds(600)), 15.0);
  // After 1.2 s the first sample is evicted.
  EXPECT_DOUBLE_EQ(mean.Mean(Milliseconds(1200)), 20.0);
}

TEST(SlidingWindowMeanTest, WindowFullDetection) {
  SlidingWindowMean mean(Seconds(1));
  mean.AddSample(0, 1.0);
  EXPECT_FALSE(mean.WindowFull(Milliseconds(100)));
  mean.AddSample(Milliseconds(500), 1.0);
  mean.AddSample(Milliseconds(1000), 1.0);
  EXPECT_TRUE(mean.WindowFull(Milliseconds(1000)));
  // Far in the future everything is evicted again.
  EXPECT_FALSE(mean.WindowFull(Seconds(10)));
}

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  c.Increment();
  c.Increment(5);
  EXPECT_EQ(c.value(), 6u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(RatioCounterTest, HitRatio) {
  RatioCounter r;
  EXPECT_DOUBLE_EQ(r.HitRatio(), 0.0);
  r.Hit();
  r.Hit();
  r.Hit();
  r.Miss();
  EXPECT_DOUBLE_EQ(r.HitRatio(), 0.75);
  EXPECT_EQ(r.total(), 4u);
}

TEST(CsvTableTest, WritesHeaderAndRows) {
  CsvTable table({"name", "value"});
  table.AddRow({std::string("a"), 1.5});
  table.AddRow({std::string("b"), static_cast<int64_t>(42)});
  std::ostringstream out;
  table.WriteCsv(out);
  EXPECT_EQ(out.str(), "name,value\na,1.5\nb,42\n");
}

TEST(CsvTableTest, EscapesSpecialCharacters) {
  CsvTable table({"text"});
  table.AddRow({std::string("a,b")});
  table.AddRow({std::string("say \"hi\"")});
  std::ostringstream out;
  table.WriteCsv(out);
  EXPECT_EQ(out.str(), "text\n\"a,b\"\n\"say \"\"hi\"\"\"\n");
}

TEST(CsvTableTest, RejectsMismatchedRow) {
  CsvTable table({"a", "b"});
  EXPECT_THROW(table.AddRow({std::string("only-one")}), std::invalid_argument);
  EXPECT_THROW(CsvTable({}), std::invalid_argument);
}

TEST(CsvTableTest, AlignedOutputHasAllCells) {
  CsvTable table({"col", "value"});
  table.AddRow({std::string("row1"), 3.25});
  std::ostringstream out;
  table.WriteAligned(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("col"), std::string::npos);
  EXPECT_NE(s.find("row1"), std::string::npos);
  EXPECT_NE(s.find("3.25"), std::string::npos);
}

}  // namespace
}  // namespace incod
