// Row subsystem tests: the global power ledger and apportionment kernel,
// RowOrchestrator wiring/validation, and the property suite proving the
// row-level ledger invariants the rack suite proves one level down —
// sampled apportionment never exceeds the budget, per-rack apportionments
// sum to the global cap, and the aggregate counters reconcile with the
// row's decision log, across seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/row/row_orchestrator.h"
#include "src/row/row_scenario.h"
#include "src/row/row_spec.h"
#include "src/scenarios/multi_rack.h"
#include "src/sim/sharded.h"

namespace incod {
namespace {

using Policy = RowOrchestratorConfig::Policy;

double Sum(const std::vector<double>& values) {
  double total = 0;
  for (double v : values) {
    total += v;
  }
  return total;
}

// --- RowPowerLedger ---------------------------------------------------------

TEST(RowPowerLedgerTest, ApportionsWithinBudgetAndRejectsOverflow) {
  RowPowerLedger ledger(100);
  EXPECT_TRUE(ledger.TryApportion("a", 60));
  EXPECT_TRUE(ledger.TryApportion("b", 40));
  EXPECT_DOUBLE_EQ(ledger.apportioned_watts(), 100);
  EXPECT_DOUBLE_EQ(ledger.RemainingWatts(), 0);
  // Growing past the budget fails and leaves the prior value intact.
  EXPECT_FALSE(ledger.TryApportion("b", 41));
  EXPECT_DOUBLE_EQ(ledger.apportionments().at("b"), 40);
  // Replace-semantics: re-apportioning the same rack is not additive.
  EXPECT_TRUE(ledger.TryApportion("a", 60));
  EXPECT_DOUBLE_EQ(ledger.apportioned_watts(), 100);
}

TEST(RowPowerLedgerTest, ShrinkAcceptedWhileOverBrownedOutBudget) {
  RowPowerLedger ledger(100);
  ASSERT_TRUE(ledger.TryApportion("a", 60));
  ASSERT_TRUE(ledger.TryApportion("b", 40));
  // Brownout: the budget steps below the committed total.
  ledger.SetBudgetWatts(50);
  // Shrinks must land even though the total still exceeds the new budget —
  // rejecting them would wedge the ledger over budget forever.
  EXPECT_TRUE(ledger.TryApportion("a", 30));
  EXPECT_TRUE(ledger.TryApportion("b", 20));
  EXPECT_DOUBLE_EQ(ledger.apportioned_watts(), 50);
  // Grows are still policed against the new budget.
  EXPECT_FALSE(ledger.TryApportion("a", 31));
}

TEST(RowPowerLedgerTest, NegativeApportionmentThrows) {
  RowPowerLedger ledger(100);
  EXPECT_THROW(ledger.TryApportion("a", -1), std::invalid_argument);
}

// --- ComputeRowApportionment ------------------------------------------------

TEST(RowApportionmentTest, EqualShareSplitsEvenly) {
  std::vector<RowRackApportionInput> racks(4);
  const std::vector<double> shares =
      ComputeRowApportionment(120, racks, Policy::kEqualShare, 0);
  ASSERT_EQ(shares.size(), 4u);
  for (double s : shares) {
    EXPECT_DOUBLE_EQ(s, 30);
  }
}

TEST(RowApportionmentTest, DemandWeightedFollowsDemand) {
  std::vector<RowRackApportionInput> racks(3);
  racks[0].demand_watts = 60;
  racks[1].demand_watts = 30;
  racks[2].demand_watts = 10;
  const std::vector<double> shares =
      ComputeRowApportionment(100, racks, Policy::kDemandWeighted, 0);
  EXPECT_DOUBLE_EQ(shares[0], 60);
  EXPECT_DOUBLE_EQ(shares[1], 30);
  EXPECT_DOUBLE_EQ(shares[2], 10);
  EXPECT_NEAR(Sum(shares), 100, 1e-9);
}

TEST(RowApportionmentTest, ZeroDemandFallsBackToEqualSplit) {
  std::vector<RowRackApportionInput> racks(4);
  const std::vector<double> shares =
      ComputeRowApportionment(80, racks, Policy::kDemandWeighted, 0);
  for (double s : shares) {
    EXPECT_DOUBLE_EQ(s, 20);
  }
}

TEST(RowApportionmentTest, CeilingClampsAndExcessRespreads) {
  std::vector<RowRackApportionInput> racks(3);
  racks[0].ceiling_watts = 10;  // Browned-out rack.
  const std::vector<double> shares =
      ComputeRowApportionment(90, racks, Policy::kEqualShare, 0);
  EXPECT_DOUBLE_EQ(shares[0], 10);
  // The freed 20 W flow to the unclamped racks.
  EXPECT_DOUBLE_EQ(shares[1], 40);
  EXPECT_DOUBLE_EQ(shares[2], 40);
  EXPECT_NEAR(Sum(shares), 90, 1e-9);
}

TEST(RowApportionmentTest, AllCeilingClampedLeavesBudgetUnused) {
  std::vector<RowRackApportionInput> racks(2);
  racks[0].ceiling_watts = 5;
  racks[1].ceiling_watts = 5;
  const std::vector<double> shares =
      ComputeRowApportionment(100, racks, Policy::kEqualShare, 0);
  EXPECT_DOUBLE_EQ(shares[0], 5);
  EXPECT_DOUBLE_EQ(shares[1], 5);
}

TEST(RowApportionmentTest, FloorsScaleDownWhenOverBudget) {
  std::vector<RowRackApportionInput> racks(4);
  const std::vector<double> shares =
      ComputeRowApportionment(40, racks, Policy::kEqualShare, /*min_rack_watts=*/20);
  // Floors alone want 80 W: everyone keeps the same fraction.
  for (double s : shares) {
    EXPECT_DOUBLE_EQ(s, 10);
  }
}

TEST(RowApportionmentTest, FloorsHoldUnderDemandWeighting) {
  std::vector<RowRackApportionInput> racks(3);
  racks[0].demand_watts = 100;  // Would starve the others without floors.
  const std::vector<double> shares =
      ComputeRowApportionment(90, racks, Policy::kDemandWeighted, /*min_rack_watts=*/10);
  EXPECT_GE(shares[1], 10);
  EXPECT_GE(shares[2], 10);
  EXPECT_NEAR(Sum(shares), 90, 1e-9);
  EXPECT_DOUBLE_EQ(shares[0], 70);
}

// Randomized kernel property: for arbitrary demands/ceilings/floors the
// result never exceeds a ceiling, never goes negative, and sums to the
// budget unless every rack is ceiling-clamped.
TEST(RowApportionmentTest, RandomizedInvariants) {
  Rng rng(1234);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = 1 + static_cast<size_t>(rng.UniformInt(0, 5));
    std::vector<RowRackApportionInput> racks(n);
    for (auto& rack : racks) {
      rack.demand_watts = rng.UniformDouble(0, 100);
      if (rng.Bernoulli(0.3)) {
        rack.ceiling_watts = rng.UniformDouble(0, 50);
      }
    }
    const double budget = rng.UniformDouble(1, 300);
    const double floor = rng.Bernoulli(0.5) ? rng.UniformDouble(0, 30) : 0;
    const Policy policy =
        rng.Bernoulli(0.5) ? Policy::kDemandWeighted : Policy::kEqualShare;
    const std::vector<double> shares =
        ComputeRowApportionment(budget, racks, policy, floor);
    double total = 0;
    bool all_clamped = true;
    for (size_t i = 0; i < n; ++i) {
      EXPECT_GE(shares[i], -1e-9) << "trial " << trial;
      if (racks[i].ceiling_watts >= 0) {
        EXPECT_LE(shares[i], racks[i].ceiling_watts + 1e-9) << "trial " << trial;
      }
      if (racks[i].ceiling_watts < 0 || shares[i] < racks[i].ceiling_watts - 1e-9) {
        all_clamped = false;
      }
      total += shares[i];
    }
    EXPECT_LE(total, budget + 1e-6) << "trial " << trial;
    if (!all_clamped) {
      EXPECT_NEAR(total, budget, 1e-6) << "trial " << trial;
    }
  }
}

// --- RowOrchestrator wiring -------------------------------------------------

TEST(RowOrchestratorTest, ValidatesRacks) {
  ShardedSimulation::Options options;
  options.num_shards = 2;
  ShardedSimulation ssim(options);
  Simulation& sim = ssim.shard(0);
  RackOrchestrator rack(sim);
  RowOrchestrator row(ssim, 1);
  EXPECT_THROW(row.AddRack("", 0, &rack), std::invalid_argument);
  EXPECT_THROW(row.AddRack("r0", 0, nullptr), std::invalid_argument);
  EXPECT_THROW(row.AddRack("r0", 7, &rack), std::invalid_argument);
  EXPECT_EQ(row.AddRack("r0", 0, &rack), 0u);
  EXPECT_THROW(row.AddRack("r0", 0, &rack), std::invalid_argument);  // Duplicate.
  EXPECT_EQ(row.rack_count(), 1u);
}

TEST(RowOrchestratorTest, UnlimitedBudgetIssuesNoCaps) {
  ShardedSimulation::Options options;
  options.num_shards = 2;
  ShardedSimulation ssim(options);
  ssim.RegisterCrossShardLatency(Microseconds(5));
  RackOrchestrator rack(ssim.shard(0));
  RowOrchestrator row(ssim, 1);  // Default config: no budget.
  row.AddRack("r0", 0, &rack);
  row.Start();
  ssim.RunUntil(Milliseconds(500));
  EXPECT_EQ(row.caps_issued(), 0u);
  EXPECT_EQ(row.apportion_rounds(), 0u);
  // Reports still flow (the row observes even when it does not govern).
  EXPECT_GT(row.reports_received(), 0u);
  EXPECT_TRUE(rack.ledger().unlimited());
}

TEST(RowOrchestratorTest, InitialApportionmentCapsEveryRack) {
  ShardedSimulation::Options options;
  options.num_shards = 3;
  ShardedSimulation ssim(options);
  ssim.RegisterCrossShardLatency(Microseconds(5));
  RackOrchestrator rack0(ssim.shard(0));
  RackOrchestrator rack1(ssim.shard(1));
  RowOrchestratorConfig config;
  config.global_budget_watts = 100;
  RowOrchestrator row(ssim, 2, config);
  row.AddRack("r0", 0, &rack0);
  row.AddRack("r1", 1, &rack1);
  row.Start();
  // Synchronous setup apportionment: both racks capped before any event.
  EXPECT_DOUBLE_EQ(row.CurrentApportionment(0), 50);
  EXPECT_DOUBLE_EQ(row.CurrentApportionment(1), 50);
  EXPECT_DOUBLE_EQ(rack0.ledger().budget_watts(), 50);
  EXPECT_DOUBLE_EQ(rack1.ledger().budget_watts(), 50);
  EXPECT_EQ(row.caps_issued(), 2u);
}

TEST(RowOrchestratorTest, RackBrownoutFreesBudgetForOthers) {
  ShardedSimulation::Options options;
  options.num_shards = 3;
  ShardedSimulation ssim(options);
  ssim.RegisterCrossShardLatency(Microseconds(5));
  RackOrchestrator rack0(ssim.shard(0));
  RackOrchestrator rack1(ssim.shard(1));
  RowOrchestratorConfig config;
  config.global_budget_watts = 100;
  config.policy = Policy::kEqualShare;
  RowOrchestrator row(ssim, 2, config);
  row.AddRack("r0", 0, &rack0);
  row.AddRack("r1", 1, &rack1);
  row.Start();
  ssim.shard(2).ScheduleAt(Milliseconds(1), [&row] { row.ApplyRackBrownout(0, 10); });
  ssim.RunUntil(Milliseconds(50));
  EXPECT_DOUBLE_EQ(row.CurrentApportionment(0), 10);
  EXPECT_DOUBLE_EQ(row.CurrentApportionment(1), 90);
  EXPECT_DOUBLE_EQ(rack1.ledger().budget_watts(), 90);
  EXPECT_EQ(row.rack_brownouts(), 1u);
  // A rack brownout cap clamps to epsilon, never to "unlimited" zero.
  ssim.shard(2).ScheduleAt(Milliseconds(60), [&row] { row.ApplyRackBrownout(1, 0); });
  ssim.RunUntil(Milliseconds(100));
  EXPECT_GT(rack1.ledger().budget_watts(), 0);
  EXPECT_LE(rack1.ledger().budget_watts(), 0.01);
  EXPECT_FALSE(rack1.ledger().unlimited());
}

TEST(RowOrchestratorTest, GlobalBrownoutShrinksEveryCap) {
  ShardedSimulation::Options options;
  options.num_shards = 3;
  ShardedSimulation ssim(options);
  ssim.RegisterCrossShardLatency(Microseconds(5));
  RackOrchestrator rack0(ssim.shard(0));
  RackOrchestrator rack1(ssim.shard(1));
  RowOrchestratorConfig config;
  config.global_budget_watts = 100;
  config.policy = Policy::kEqualShare;
  RowOrchestrator row(ssim, 2, config);
  row.AddRack("r0", 0, &rack0);
  row.AddRack("r1", 1, &rack1);
  row.Start();
  ssim.shard(2).ScheduleAt(Milliseconds(1), [&row] { row.ApplyGlobalBrownout(40); });
  ssim.RunUntil(Milliseconds(50));
  EXPECT_DOUBLE_EQ(row.ledger().budget_watts(), 40);
  EXPECT_DOUBLE_EQ(row.CurrentApportionment(0), 20);
  EXPECT_DOUBLE_EQ(row.CurrentApportionment(1), 20);
  EXPECT_LE(row.ledger().apportioned_watts(), 40 + 1e-9);
  EXPECT_EQ(row.global_brownouts(), 1u);
}

// --- RowScenario validation -------------------------------------------------

RowSpec OrchestratedRowSpec(int num_racks, double budget_watts) {
  MultiRackOptions options;
  options.num_racks = num_racks;
  options.kvs_rate_per_second = 150000;
  options.dns_rate_per_second = 75000;
  options.prefill = 1000;
  options.keyspace = 1000;
  RowSpec row = MakeMultiRackRowSpec(options);
  for (RowRackSpec& rack : row.racks) {
    // The orchestrator decides placement; the spec's FPGA starts parked and
    // gets a rack-local fault name shared across racks so correlated waves
    // can address "lake/kvs" in every rack at once.
    rack.scenario.members[0].target.initially_active = false;
    rack.scenario.members[0].target.name = "lake";
    rack.orchestrate = true;
    rack.orchestrator.check_period = Milliseconds(2);
    rack.orchestrator.min_dwell = Milliseconds(2);
    rack.orchestrator.sample_period = Milliseconds(2);
    rack.orchestrator.heartbeat_period = Milliseconds(1);
    rack.orchestrator.checkpoint_period = Milliseconds(2);
    RowAppSpec app;
    app.member = 0;
    rack.apps.push_back(app);
  }
  row.power.global_budget_watts = budget_watts;
  row.power.report_period = Milliseconds(2);
  row.power.apportion_period = Milliseconds(5);
  row.power.sample_period = Milliseconds(2);
  row.power.min_rack_watts = 5;
  return row;
}

ShardedSimulation::Options RowShardOptions(int num_racks, uint64_t seed) {
  ShardedSimulation::Options options;
  options.num_shards = num_racks + 1;
  options.num_threads = 1;
  options.mode = ShardedSimulation::Mode::kSingleQueue;
  options.seed = seed;
  return options;
}

TEST(RowScenarioTest, ValidatesSpec) {
  {
    ShardedSimulation ssim(RowShardOptions(2, 1));
    RowSpec spec;  // No racks.
    EXPECT_THROW(RowScenario(ssim, std::move(spec)), std::invalid_argument);
  }
  {
    // Shard count mismatch.
    ShardedSimulation ssim(RowShardOptions(3, 1));
    RowSpec spec = MakeMultiRackRowSpec(MultiRackOptions{.num_racks = 2});
    EXPECT_THROW(RowScenario(ssim, std::move(spec)), std::invalid_argument);
  }
  {
    // Brownout events need a global budget.
    ShardedSimulation ssim(RowShardOptions(2, 1));
    RowSpec spec = MakeMultiRackRowSpec(MultiRackOptions{.num_racks = 2});
    RowFaultEventSpec event;
    event.kind = RowFaultEventSpec::Kind::kGlobalBrownout;
    event.at = Milliseconds(1);
    event.watts = 50;
    spec.faults.events.push_back(event);
    EXPECT_THROW(RowScenario(ssim, std::move(spec)), std::invalid_argument);
  }
  {
    // A global budget needs at least one orchestrated rack.
    ShardedSimulation ssim(RowShardOptions(2, 1));
    RowSpec spec = MakeMultiRackRowSpec(MultiRackOptions{.num_racks = 2});
    spec.power.global_budget_watts = 100;
    EXPECT_THROW(RowScenario(ssim, std::move(spec)), std::invalid_argument);
  }
  {
    // Fault rack index out of range.
    ShardedSimulation ssim(RowShardOptions(2, 1));
    RowSpec spec = OrchestratedRowSpec(2, 100);
    RowFaultEventSpec event;
    event.kind = RowFaultEventSpec::Kind::kUplinkDown;
    event.racks = {5};
    spec.faults.events.push_back(event);
    EXPECT_THROW(RowScenario(ssim, std::move(spec)), std::invalid_argument);
  }
}

TEST(RowScenarioTest, BuildsOrchestratedRow) {
  ShardedSimulation ssim(RowShardOptions(2, 1));
  RowScenario row(ssim, OrchestratedRowSpec(2, 100));
  EXPECT_EQ(row.num_racks(), 2);
  EXPECT_EQ(row.spine_shard(), 2);
  ASSERT_NE(row.row_orchestrator(), nullptr);
  EXPECT_EQ(row.row_orchestrator()->rack_count(), 2u);
  for (int r = 0; r < 2; ++r) {
    ASSERT_NE(row.rack_orchestrator(r), nullptr);
    EXPECT_EQ(row.rack_orchestrator(r)->app_count(), 1u);
    EXPECT_EQ(row.client_count(r), 2u);
  }
  row.Start();
  // Initial apportionment landed synchronously at Start.
  EXPECT_DOUBLE_EQ(row.row_orchestrator()->CurrentApportionment(0), 50);
  EXPECT_DOUBLE_EQ(row.row_orchestrator()->CurrentApportionment(1), 50);
  EXPECT_DOUBLE_EQ(row.rack_orchestrator(0)->ledger().budget_watts(), 50);
}

TEST(RowScenarioTest, DiurnalTracePhaseShiftsAcrossRacks) {
  RowSpec spec = OrchestratedRowSpec(2, 100);
  spec.trace.enabled = true;
  spec.trace.trace = {.num_tasks = 2000, .num_nodes = 4, .diurnal_amplitude = 0.8};
  spec.trace.sim_horizon = Milliseconds(20);  // Whole day inside the run.
  spec.trace.seed = 42;
  ShardedSimulation ssim(RowShardOptions(2, 9));
  RowScenario row(ssim, std::move(spec));
  EXPECT_EQ(row.trace_tasks().size(), 2000u);
  row.Start();
  // Mid-day: rack 0 sits at its diurnal peak, rack 1 is half a day shifted
  // (phase_shift defaults to horizon / num_racks) so the racks are loaded
  // differently — the imbalance the demand-weighted apportionment feeds on.
  ssim.RunUntil(Milliseconds(10));
  EXPECT_GT(row.background_cores(0, 0), 0.0);
  EXPECT_NE(row.background_cores(0, 0), row.background_cores(1, 0));
  // Day over: every task ended, the background drains back to idle.
  ssim.RunUntil(Milliseconds(25));
  EXPECT_NEAR(row.background_cores(0, 0), 0.0, 1e-6);
  EXPECT_NEAR(row.background_cores(1, 0), 0.0, 1e-6);
}

// --- Row ledger property suite ----------------------------------------------

// A 4-rack row under a binding global budget, with a correlated fault wave
// (uplink flaps, a rack brownout + heal, a global brownout) driving the
// ledger through shrink/grow cycles. The invariants the rack suite proves
// for one PDU must hold one level up for the row, across seeds.
class RowLedgerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RowLedgerPropertyTest, GlobalLedgerInvariantsHold) {
  const uint64_t seed = GetParam();
  const int kRacks = 4;
  RowSpec spec = OrchestratedRowSpec(kRacks, 120);
  AppendUplinkFlapWave(spec.faults, {0, 1, 2}, Milliseconds(6), Milliseconds(3),
                       /*stagger=*/Microseconds(500));
  AppendRackBrownoutWave(spec.faults, {1}, Milliseconds(10), 8);
  AppendRackBrownoutWave(spec.faults, {1}, Milliseconds(20), -1);  // Heal.
  {
    RowFaultEventSpec brownout;
    brownout.kind = RowFaultEventSpec::Kind::kGlobalBrownout;
    brownout.at = Milliseconds(14);
    brownout.watts = 50;
    spec.faults.events.push_back(brownout);
  }

  ShardedSimulation ssim(RowShardOptions(kRacks, seed));
  RowScenario row(ssim, std::move(spec));
  row.Start();
  ssim.RunUntil(Milliseconds(30));

  RowOrchestrator& orch = *row.row_orchestrator();

  // The run exercised the machinery: reports flowed, the loop re-apportioned,
  // the brownouts fired.
  EXPECT_GT(orch.reports_received(), 0u) << "seed " << seed;
  EXPECT_GE(orch.apportion_rounds(), 2u) << "seed " << seed;
  EXPECT_EQ(orch.global_brownouts(), 1u) << "seed " << seed;
  EXPECT_EQ(orch.rack_brownouts(), 2u) << "seed " << seed;

  // (1) Every sampled apportionment total respects the budget in force.
  const auto& apportioned = orch.apportioned_series().samples();
  const auto& budget = orch.budget_series().samples();
  ASSERT_EQ(apportioned.size(), budget.size());
  ASSERT_GT(apportioned.size(), 4u);
  for (size_t i = 0; i < apportioned.size(); ++i) {
    EXPECT_EQ(apportioned[i].at, budget[i].at);
    EXPECT_LE(apportioned[i].value, budget[i].value + 1e-6)
        << "sample " << i << " seed " << seed;
  }

  // (2) Per-rack apportionments reconcile with the global ledger and sum to
  // the global cap (nothing is ceiling-clamped at the end: the rack
  // brownout healed before the run finished).
  double apportionment_sum = 0;
  for (size_t r = 0; r < orch.rack_count(); ++r) {
    const double watts = orch.CurrentApportionment(r);
    EXPECT_GE(watts, 0) << "rack " << r << " seed " << seed;
    apportionment_sum += watts;
  }
  EXPECT_DOUBLE_EQ(apportionment_sum, orch.ledger().apportioned_watts());
  EXPECT_NEAR(apportionment_sum, orch.ledger().budget_watts(), 1e-6)
      << "seed " << seed;

  // (3) Counters reconcile with the decision log exactly.
  uint64_t apportions = 0, globals = 0, racks = 0;
  for (const RowDecisionRecord& record : orch.decision_log()) {
    switch (record.kind) {
      case RowDecisionRecord::Kind::kApportion:
        ++apportions;
        EXPECT_GT(record.watts, 0);
        EXPECT_FALSE(record.rack.empty());
        break;
      case RowDecisionRecord::Kind::kGlobalBrownout:
        ++globals;
        EXPECT_TRUE(record.rack.empty());
        break;
      case RowDecisionRecord::Kind::kRackBrownout:
        ++racks;
        EXPECT_FALSE(record.rack.empty());
        break;
    }
  }
  EXPECT_EQ(apportions, orch.caps_issued()) << "seed " << seed;
  EXPECT_EQ(globals, orch.global_brownouts()) << "seed " << seed;
  EXPECT_EQ(racks, orch.rack_brownouts()) << "seed " << seed;
  EXPECT_EQ(apportions + globals + racks, orch.decision_log().size());

  // (4) Every issued cap honored the rack's ceiling in force at issue time:
  // replay the log and check each apportionment against the most recent
  // brownout ceiling for that rack.
  std::map<std::string, double> ceiling;
  for (const RowDecisionRecord& record : orch.decision_log()) {
    if (record.kind == RowDecisionRecord::Kind::kRackBrownout) {
      if (record.watts < 0) {
        ceiling.erase(record.rack);
      } else {
        ceiling[record.rack] = record.watts;
      }
      continue;
    }
    if (record.kind != RowDecisionRecord::Kind::kApportion) {
      continue;
    }
    const auto it = ceiling.find(record.rack);
    if (it != ceiling.end()) {
      // IssueCap clamps a full brownout (0 W) to the 0.01 W epsilon.
      EXPECT_LE(record.watts, std::max(it->second, 0.01) + 1e-9)
          << "rack " << record.rack << " seed " << seed;
    }
  }

  // (5) The cascade reached the racks: every rack's own budget equals the
  // row's current apportionment for it, and each rack ledger holds its own
  // invariant.
  for (int r = 0; r < kRacks; ++r) {
    const RackOrchestrator& rack = *row.rack_orchestrator(r);
    EXPECT_NEAR(rack.ledger().budget_watts(),
                std::max(orch.CurrentApportionment(static_cast<size_t>(r)), 0.01),
                0.5 + 1e-9)
        << "rack " << r << " seed " << seed;  // cap_epsilon_watts slack.
    EXPECT_LE(rack.ledger().committed_watts(),
              rack.ledger().budget_watts() + 1e-6)
        << "rack " << r << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RowLedgerPropertyTest,
                         ::testing::Values(17u, 29u, 43u));

}  // namespace
}  // namespace incod
