// Differential tests: the calendar-queue engine must be observationally
// identical to the reference heap engine — same event order, same counters,
// same end-to-end simulation results on a real testbed.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "src/kvs/kv_protocol.h"
#include "src/row/row_scenario.h"
#include "src/row/row_spec.h"
#include "src/scenarios/kvs_testbed.h"
#include "src/scenarios/multi_rack.h"
#include "src/scenarios/rack_scenario.h"
#include "src/scenarios/trace_rack.h"
#include "src/sim/sharded.h"
#include "src/sim/simulation.h"
#include "src/workload/arrival.h"
#include "src/workload/client.h"
#include "src/workload/dns_workload.h"

namespace incod {
namespace {

using Trace = std::vector<std::pair<SimTime, uint64_t>>;

// Deterministic self-expanding workload: every executed event records
// (Now, tag) and, driven by its own LCG, schedules 0-2 children at near /
// same-tick / far-future delays and cancels pseudo-randomly chosen earlier
// ids. Identical logic on both engines => traces must match exactly.
struct DiffDriver {
  Simulation* sim;
  Trace* trace;
  std::vector<uint64_t>* ids;
  uint64_t state;
  uint64_t tag;
  int depth;

  void operator()() {
    trace->push_back({sim->Now(), tag});
    if (depth >= 6) {
      return;
    }
    uint64_t s = state;
    const auto next = [&s] {
      s = s * 6364136223846793005ULL + 1442695040888963407ULL;
      return s >> 33;
    };
    const uint64_t children = next() % 3;
    for (uint64_t c = 0; c < children; ++c) {
      const uint64_t r = next();
      SimDuration gap = static_cast<SimDuration>(r % 2000);
      if (r % 7 == 0) {
        gap = 0;  // Same-tick FIFO path.
      } else if (r % 11 == 0) {
        gap = Milliseconds(static_cast<int64_t>(1 + r % 20));  // Far list.
      }
      ids->push_back(sim->Schedule(
          gap, DiffDriver{sim, trace, ids, next(), tag * 31 + c + 1, depth + 1}));
    }
    if (next() % 4 == 0 && !ids->empty()) {
      sim->Cancel((*ids)[next() % ids->size()]);
    }
  }
};

Trace RunDiffWorkload(Simulation::EngineKind kind) {
  Simulation sim(1, kind);
  Trace trace;
  std::vector<uint64_t> ids;
  for (int i = 0; i < 40; ++i) {
    ids.push_back(sim.Schedule(i % 5, DiffDriver{&sim, &trace, &ids,
                                                 0x9e3779b97f4a7c15ULL * (i + 1),
                                                 static_cast<uint64_t>(i), 0}));
  }
  sim.Run();
  EXPECT_EQ(sim.pending_events(), 0u);
  return trace;
}

TEST(EngineDiffTest, RandomChurnExecutesInIdenticalOrder) {
  const Trace calendar = RunDiffWorkload(Simulation::EngineKind::kCalendar);
  const Trace heap = RunDiffWorkload(Simulation::EngineKind::kHeap);
  ASSERT_GT(calendar.size(), 100u);  // The workload actually expanded.
  ASSERT_EQ(calendar.size(), heap.size());
  for (size_t i = 0; i < calendar.size(); ++i) {
    ASSERT_EQ(calendar[i], heap[i]) << "diverged at event " << i;
  }
}

struct KvsRunResult {
  uint64_t events_executed;
  SimTime now;
  uint64_t sent;
  uint64_t received;
  uint64_t lost;
  uint64_t p50;
  uint64_t p99;
  double watts;
};

KvsRunResult RunSeededKvsTestbed(Simulation::EngineKind kind) {
  Simulation sim(7, kind);
  KvsTestbedOptions options;
  options.mode = KvsMode::kLake;
  options.lake.l1_entries = 256;
  KvsTestbed testbed(sim, options);
  const uint64_t keys = 500;
  testbed.Prefill(keys, 0);
  auto& client = testbed.AddClient(
      LoadClientConfig{}, std::make_unique<PoissonArrival>(400000.0),
      [service = testbed.ServiceNode(), keys](NodeId src, uint64_t id, SimTime now,
                                              Rng& rng) {
        const uint64_t key =
            static_cast<uint64_t>(rng.UniformInt(0, static_cast<int64_t>(keys) - 1));
        const KvOp op = rng.Bernoulli(0.1) ? KvOp::kSet : KvOp::kGet;
        return MakeKvRequestPacket(src, service, KvRequest{op, key, 64}, id, now);
      });
  client.Start();
  sim.RunUntil(Milliseconds(50));
  return KvsRunResult{
      sim.events_executed(),
      sim.Now(),
      client.sent(),
      client.received(),
      client.lost(),
      client.latency().P50(),
      client.latency().P99(),
      testbed.meter().MeanWatts(0, sim.Now()),
  };
}

TEST(EngineDiffTest, SeededKvsTestbedBitIdenticalAcrossEngines) {
  const KvsRunResult calendar = RunSeededKvsTestbed(Simulation::EngineKind::kCalendar);
  const KvsRunResult heap = RunSeededKvsTestbed(Simulation::EngineKind::kHeap);
  EXPECT_GT(calendar.events_executed, 100000u);  // Non-trivial run.
  EXPECT_EQ(calendar.events_executed, heap.events_executed);
  EXPECT_EQ(calendar.now, heap.now);
  EXPECT_EQ(calendar.sent, heap.sent);
  EXPECT_EQ(calendar.received, heap.received);
  EXPECT_EQ(calendar.lost, heap.lost);
  EXPECT_EQ(calendar.p50, heap.p50);
  EXPECT_EQ(calendar.p99, heap.p99);
  EXPECT_DOUBLE_EQ(calendar.watts, heap.watts);
}

// --- Sharded engine: kParallel must be event-identical to kSingleQueue ---

using Mode = ShardedSimulation::Mode;

// Every externally observable number a scenario run produces: engine event
// count, per-client traffic counters and latency percentiles, mean wall
// watts. Event-identical runs must agree on all of them exactly.
struct ShardedScenarioResult {
  uint64_t events = 0;
  std::vector<uint64_t> counters;
  double watts = 0;
};

void ExpectIdentical(const ShardedScenarioResult& want,
                     const ShardedScenarioResult& got, uint64_t seed) {
  EXPECT_EQ(want.events, got.events) << "seed " << seed;
  ASSERT_EQ(want.counters.size(), got.counters.size());
  for (size_t i = 0; i < want.counters.size(); ++i) {
    EXPECT_EQ(want.counters[i], got.counters[i]) << "counter " << i << " seed " << seed;
  }
  EXPECT_DOUBLE_EQ(want.watts, got.watts) << "seed " << seed;
}

void AppendClient(ShardedScenarioResult* result, const LoadClient& client) {
  result->counters.push_back(client.sent());
  result->counters.push_back(client.received());
  result->counters.push_back(client.lost());
  result->counters.push_back(client.latency().P50());
  result->counters.push_back(client.latency().P99());
}

ShardedSimulation::Options ShardOptions(Mode mode, int shards, int threads,
                                        uint64_t seed) {
  ShardedSimulation::Options options;
  options.num_shards = shards;
  options.num_threads = threads;
  options.mode = mode;
  options.seed = seed;
  return options;
}

ShardedScenarioResult RunShardedMixedRack(Mode mode, int threads, uint64_t seed) {
  ShardedSimulation ssim(ShardOptions(mode, 4, threads, seed));
  MixedRackScenario rack(ssim, MixedRackShardPlan{});
  rack.PrefillKvs(2000, 64);
  LoadClient& kvs = rack.AddKvsClient(
      LoadClientConfig{}, std::make_unique<PoissonArrival>(300000.0),
      [](NodeId src, uint64_t id, SimTime now, Rng& rng) {
        const uint64_t key = static_cast<uint64_t>(rng.UniformInt(0, 1999));
        return MakeKvRequestPacket(src, kRackKvsServerNode,
                                   KvRequest{KvOp::kGet, key, 0}, id, now);
      });
  DnsWorkloadConfig dns_config;
  dns_config.dns_service = kRackDnsServerNode;
  LoadClient& dns = rack.AddDnsClient(LoadClientConfig{},
                                      std::make_unique<PoissonArrival>(200000.0),
                                      MakeDnsRequestFactory(dns_config));
  rack.orchestrator().Start();
  rack.paxos_client()->Start();
  kvs.Start();
  dns.Start();
  ssim.RunUntil(Milliseconds(15));

  ShardedScenarioResult result;
  result.events = ssim.events_executed();
  AppendClient(&result, kvs);
  AppendClient(&result, dns);
  result.watts = rack.meter().MeanWatts(0, Milliseconds(15));
  return result;
}

TEST(EngineDiffTest, ShardedMixedRackIdenticalToSingleQueue) {
  for (const uint64_t seed : {7u, 11u, 13u}) {
    const ShardedScenarioResult reference =
        RunShardedMixedRack(Mode::kSingleQueue, 1, seed);
    EXPECT_GT(reference.events, 50000u);  // Non-trivial run.
    const ShardedScenarioResult parallel =
        RunShardedMixedRack(Mode::kParallel, 4, seed);
    ExpectIdentical(reference, parallel, seed);
  }
}

// The engine-identity contract extends to faulted runs: fault flips are
// ordinary scheduled events in the shard that owns the entity, so a scenario
// with a device death mid-offload (heartbeat detection, checkpointed warm
// recovery) plus a link flap must stay event-identical across modes.
ShardedScenarioResult RunShardedFaultedRack(Mode mode, int threads, uint64_t seed) {
  ShardedSimulation ssim(ShardOptions(mode, 4, threads, seed));
  MixedRackOptions options;
  options.orchestrator.heartbeat_period = Milliseconds(1);
  options.orchestrator.min_dwell = Seconds(1);  // Keep the forced placement.
  options.kvs_checkpoint_period = Milliseconds(2);
  options.faults.events.push_back(
      FaultEventSpec{FaultKind::kDeviceDeath, Milliseconds(5), "netfpga-lake", 0});
  options.faults.events.push_back(
      FaultEventSpec{FaultKind::kLinkDown, Milliseconds(4), "dns-10ge", 0});
  options.faults.events.push_back(
      FaultEventSpec{FaultKind::kLinkUp, Milliseconds(8), "dns-10ge", 0});
  MixedRackScenario rack(ssim, MixedRackShardPlan{}, options);
  rack.PrefillKvs(2000, 64);
  LoadClient& kvs = rack.AddKvsClient(
      LoadClientConfig{}, std::make_unique<PoissonArrival>(300000.0),
      [](NodeId src, uint64_t id, SimTime now, Rng& rng) {
        const uint64_t key = static_cast<uint64_t>(rng.UniformInt(0, 1999));
        return MakeKvRequestPacket(src, kRackKvsServerNode,
                                   KvRequest{KvOp::kGet, key, 0}, id, now);
      });
  DnsWorkloadConfig dns_config;
  dns_config.dns_service = kRackDnsServerNode;
  LoadClient& dns = rack.AddDnsClient(LoadClientConfig{},
                                      std::make_unique<PoissonArrival>(200000.0),
                                      MakeDnsRequestFactory(dns_config));
  rack.orchestrator().Start();
  // On the FPGA when the death fires, so the recovery path runs too.
  rack.orchestrator().ForcePlacement(rack.kvs_app_index(), 0);
  rack.paxos_client()->Start();
  kvs.Start();
  dns.Start();
  ssim.RunUntil(Milliseconds(15));

  ShardedScenarioResult result;
  result.events = ssim.events_executed();
  AppendClient(&result, kvs);
  AppendClient(&result, dns);
  result.counters.push_back(rack.faults().fault_log().size());
  result.counters.push_back(rack.faults().device_deaths());
  result.counters.push_back(rack.faults().link_down_events());
  result.counters.push_back(rack.orchestrator().failures_detected());
  result.counters.push_back(rack.orchestrator().recoveries());
  result.counters.push_back(rack.orchestrator().checkpoints_taken());
  result.watts = rack.meter().MeanWatts(0, Milliseconds(15));
  return result;
}

TEST(EngineDiffTest, ShardedFaultedRackIdenticalToSingleQueue) {
  for (const uint64_t seed : {7u, 11u, 13u}) {
    const ShardedScenarioResult reference =
        RunShardedFaultedRack(Mode::kSingleQueue, 1, seed);
    EXPECT_GT(reference.events, 50000u);
    // The plan actually fired and the orchestrator actually recovered.
    EXPECT_EQ(reference.counters[10], 3u) << "fault log";
    EXPECT_GE(reference.counters[13], 1u) << "failures detected";
    EXPECT_GE(reference.counters[14], 1u) << "recoveries";
    const ShardedScenarioResult parallel =
        RunShardedFaultedRack(Mode::kParallel, 4, seed);
    ExpectIdentical(reference, parallel, seed);
  }
}

// The mechanistic host-NIC datapath under the identity contract: the same
// faulted rack with HostNicSpec on, so RSS ring placement, coalescing
// timers losing to packet-count triggers, interrupt charging on the kernel
// hosts, and tx doorbell flushes all run as ordinary scheduled events. The
// datapath counters join the signature — any engine-order divergence in the
// timer/trigger races would show up here.
ShardedScenarioResult RunShardedHostNicRack(Mode mode, int threads, uint64_t seed) {
  ShardedSimulation ssim(ShardOptions(mode, 4, threads, seed));
  MixedRackOptions options;
  options.hostnic.enabled = true;
  options.orchestrator.heartbeat_period = Milliseconds(1);
  options.orchestrator.min_dwell = Seconds(1);
  options.kvs_checkpoint_period = Milliseconds(2);
  options.faults.events.push_back(
      FaultEventSpec{FaultKind::kDeviceDeath, Milliseconds(5), "netfpga-lake", 0});
  options.faults.events.push_back(
      FaultEventSpec{FaultKind::kLinkDown, Milliseconds(4), "dns-10ge", 0});
  options.faults.events.push_back(
      FaultEventSpec{FaultKind::kLinkUp, Milliseconds(8), "dns-10ge", 0});
  MixedRackScenario rack(ssim, MixedRackShardPlan{}, options);
  rack.PrefillKvs(2000, 64);
  LoadClient& kvs = rack.AddKvsClient(
      LoadClientConfig{}, std::make_unique<PoissonArrival>(300000.0),
      [](NodeId src, uint64_t id, SimTime now, Rng& rng) {
        const uint64_t key = static_cast<uint64_t>(rng.UniformInt(0, 1999));
        return MakeKvRequestPacket(src, kRackKvsServerNode,
                                   KvRequest{KvOp::kGet, key, 0}, id, now);
      });
  DnsWorkloadConfig dns_config;
  dns_config.dns_service = kRackDnsServerNode;
  LoadClient& dns = rack.AddDnsClient(LoadClientConfig{},
                                      std::make_unique<PoissonArrival>(200000.0),
                                      MakeDnsRequestFactory(dns_config));
  rack.orchestrator().Start();
  rack.orchestrator().ForcePlacement(rack.kvs_app_index(), 0);
  rack.paxos_client()->Start();
  kvs.Start();
  dns.Start();
  ssim.RunUntil(Milliseconds(15));

  ShardedScenarioResult result;
  result.events = ssim.events_executed();
  AppendClient(&result, kvs);
  AppendClient(&result, dns);
  // Mechanistic datapath counters on the DNS member (the rack's
  // conventional-NIC host) plus the split drop accounting on both hosts.
  const ConventionalNic* dns_nic = rack.scenario().member("dns").nic;
  result.counters.push_back(dns_nic->interrupts_raised());
  result.counters.push_back(dns_nic->ring_drops());
  result.counters.push_back(dns_nic->doorbells_rung());
  for (const Server* server : {&rack.kvs_server(), &rack.dns_server()}) {
    result.counters.push_back(server->requests_received());
    result.counters.push_back(server->dropped_no_app());
    result.counters.push_back(server->dropped_overflow());
    result.counters.push_back(server->interrupts_serviced());
  }
  result.counters.push_back(rack.faults().fault_log().size());
  result.counters.push_back(rack.orchestrator().failures_detected());
  result.counters.push_back(rack.orchestrator().recoveries());
  result.watts = rack.meter().MeanWatts(0, Milliseconds(15));
  return result;
}

TEST(EngineDiffTest, ShardedHostNicRackIdenticalToSingleQueue) {
  for (const uint64_t seed : {7u, 11u, 13u}) {
    const ShardedScenarioResult reference =
        RunShardedHostNicRack(Mode::kSingleQueue, 1, seed);
    EXPECT_GT(reference.events, 50000u);
    // The datapath genuinely engaged: counters[10..12] are the DNS NIC's
    // interrupt / ring-drop / doorbell counters appended above.
    EXPECT_GT(reference.counters[10], 0u) << "no interrupts at seed " << seed;
    EXPECT_GT(reference.counters[12], 0u) << "no doorbells at seed " << seed;
    const ShardedScenarioResult parallel =
        RunShardedHostNicRack(Mode::kParallel, 4, seed);
    ExpectIdentical(reference, parallel, seed);
  }
}

ShardedScenarioResult RunShardedTraceRack(Mode mode, int threads, uint64_t seed) {
  ShardedSimulation ssim(ShardOptions(mode, 3, threads, seed));
  TraceRackOptions options;
  options.trace = {.num_tasks = 500, .num_nodes = 2};
  options.sim_horizon = Milliseconds(20);
  options.trace_seed = seed;
  TraceRackScenario rack(ssim, TraceRackShardPlan{}, options);
  rack.Start();
  ssim.RunUntil(Milliseconds(15));

  ShardedScenarioResult result;
  result.events = ssim.events_executed();
  for (size_t i = 0; i < rack.app_count(); ++i) {
    AppendClient(&result, rack.client(i));
  }
  result.watts = rack.meter().MeanWatts(0, Milliseconds(15));
  return result;
}

TEST(EngineDiffTest, ShardedTraceRackIdenticalToSingleQueue) {
  for (const uint64_t seed : {7u, 11u, 13u}) {
    const ShardedScenarioResult reference =
        RunShardedTraceRack(Mode::kSingleQueue, 1, seed);
    EXPECT_GT(reference.events, 20000u);
    const ShardedScenarioResult parallel =
        RunShardedTraceRack(Mode::kParallel, 4, seed);
    ExpectIdentical(reference, parallel, seed);
  }
}

ShardedScenarioResult RunShardedMultiRack(Mode mode, int threads, uint64_t seed) {
  ShardedSimulation ssim(ShardOptions(mode, 3, threads, seed));
  MultiRackOptions options;
  options.num_racks = 2;
  options.kvs_rate_per_second = 200000;
  options.dns_rate_per_second = 100000;
  options.prefill = 1000;
  options.keyspace = 1000;
  MultiRackScenario fabric(ssim, options);
  fabric.Start();
  ssim.RunUntil(Milliseconds(15));

  ShardedScenarioResult result;
  result.events = ssim.events_executed();
  for (int r = 0; r < fabric.num_racks(); ++r) {
    AppendClient(&result, fabric.kvs_client(r));
    AppendClient(&result, fabric.dns_client(r));
    result.watts += fabric.rack(r).meter().MeanWatts(0, Milliseconds(15));
  }
  return result;
}

TEST(EngineDiffTest, ShardedMultiRackIdenticalToSingleQueue) {
  for (const uint64_t seed : {7u, 11u}) {
    const ShardedScenarioResult reference =
        RunShardedMultiRack(Mode::kSingleQueue, 1, seed);
    EXPECT_GT(reference.events, 50000u);
    const ShardedScenarioResult parallel =
        RunShardedMultiRack(Mode::kParallel, 4, seed);
    ExpectIdentical(reference, parallel, seed);
  }
}

// Backpressure under the identity contract: the mixed rack with PFC +
// DCQCN enabled and both the KVS and DNS hosts driven past capacity, so
// pause frames cross the client-shard boundary (PostCrossShard flips), ECN
// marks trigger CNPs, and the clients' rate machines throttle mid-run. All
// of that must stay event-identical between the single-queue reference and
// the parallel engine.
ShardedScenarioResult RunShardedFlowRack(Mode mode, int threads, uint64_t seed) {
  ShardedSimulation ssim(ShardOptions(mode, 4, threads, seed));
  MixedRackOptions options;
  options.flow.enabled = true;
  // Saturate decisively: injection caps above host capacity, host pause
  // watermarks low enough to engage early.
  options.flow.dcqcn_config.line_rate_pps = 2.0e6;
  options.flow.host.pause_high_watermark = 64;
  options.flow.host.pause_low_watermark = 16;
  MixedRackScenario rack(ssim, MixedRackShardPlan{}, options);
  rack.PrefillKvs(2000, 64);
  LoadClient& kvs = rack.AddKvsClient(
      LoadClientConfig{}, std::make_unique<PoissonArrival>(2500000.0),
      [](NodeId src, uint64_t id, SimTime now, Rng& rng) {
        const uint64_t key = static_cast<uint64_t>(rng.UniformInt(0, 1999));
        return MakeKvRequestPacket(src, kRackKvsServerNode,
                                   KvRequest{KvOp::kGet, key, 0}, id, now);
      });
  DnsWorkloadConfig dns_config;
  dns_config.dns_service = kRackDnsServerNode;
  LoadClient& dns = rack.AddDnsClient(LoadClientConfig{},
                                      std::make_unique<PoissonArrival>(1500000.0),
                                      MakeDnsRequestFactory(dns_config));
  rack.orchestrator().Start();
  rack.paxos_client()->Start();
  kvs.Start();
  dns.Start();
  ssim.RunUntil(Milliseconds(10));

  ShardedScenarioResult result;
  result.events = ssim.events_executed();
  AppendClient(&result, kvs);
  AppendClient(&result, dns);
  for (const LoadClient* client : {&kvs, &dns}) {
    result.counters.push_back(client->dcqcn()->cnps_received());
    result.counters.push_back(client->dcqcn()->paced_sent());
    result.counters.push_back(client->dcqcn()->pacer_dropped());
  }
  for (const Server* server : {&rack.kvs_server(), &rack.dns_server()}) {
    result.counters.push_back(server->pause_frames_sent());
    result.counters.push_back(server->cnps_sent());
    result.counters.push_back(server->requests_dropped());
  }
  result.watts = rack.meter().MeanWatts(0, Milliseconds(10));
  return result;
}

TEST(EngineDiffTest, ShardedSaturatedFlowRackIdenticalToSingleQueue) {
  for (const uint64_t seed : {7u, 11u, 13u}) {
    const ShardedScenarioResult reference =
        RunShardedFlowRack(Mode::kSingleQueue, 1, seed);
    EXPECT_GT(reference.events, 50000u);
    // The congestion machinery genuinely engaged in the reference run:
    // counters[10..15] are the per-client CNP/pacer triples appended above.
    EXPECT_GT(reference.counters[10] + reference.counters[13], 0u)
        << "no CNPs reached either client at seed " << seed;
    const ShardedScenarioResult parallel =
        RunShardedFlowRack(Mode::kParallel, 4, seed);
    ExpectIdentical(reference, parallel, seed);
  }
}

// The identity contract's hardest case: a 4-rack row under a *global* power
// budget, with a correlated fault plan armed — uplink flap wave across three
// racks, a staggered FPGA death wave, a global brownout whose cap cascade
// evicts across racks. Row reports and caps ride PostCrossShard (the same
// conservative path packets use), so everything — client traffic, rack
// orchestrator decisions, row ledger history — must stay event-identical.
ShardedScenarioResult RunShardedPowerRow(Mode mode, int threads, uint64_t seed) {
  const int kRacks = 4;
  MultiRackOptions fabric_options;
  fabric_options.num_racks = kRacks;
  fabric_options.kvs_rate_per_second = 150000;
  fabric_options.dns_rate_per_second = 75000;
  fabric_options.prefill = 1000;
  fabric_options.keyspace = 1000;
  RowSpec spec = MakeMultiRackRowSpec(fabric_options);
  for (RowRackSpec& rack : spec.racks) {
    rack.scenario.members[0].target.initially_active = false;
    rack.scenario.members[0].target.name = "lake";
    rack.orchestrate = true;
    rack.orchestrator.check_period = Milliseconds(2);
    rack.orchestrator.min_dwell = Milliseconds(2);
    rack.orchestrator.sample_period = Milliseconds(2);
    rack.orchestrator.heartbeat_period = Milliseconds(1);
    rack.orchestrator.checkpoint_period = Milliseconds(2);
    RowAppSpec app;
    app.member = 0;
    rack.apps.push_back(app);
  }
  spec.power.global_budget_watts = 120;
  spec.power.report_period = Milliseconds(2);
  spec.power.apportion_period = Milliseconds(5);
  spec.power.sample_period = Milliseconds(2);
  spec.power.min_rack_watts = 5;
  AppendUplinkFlapWave(spec.faults, {0, 1, 2}, Milliseconds(6), Milliseconds(3),
                       /*stagger=*/Microseconds(500));
  AppendDeviceDeathWave(spec.faults, {0, 1, 2, 3}, "lake", Milliseconds(10),
                        /*stagger=*/Milliseconds(1));
  RowFaultEventSpec brownout;
  brownout.kind = RowFaultEventSpec::Kind::kGlobalBrownout;
  brownout.at = Milliseconds(14);
  brownout.watts = 50;
  spec.faults.events.push_back(brownout);

  ShardedSimulation ssim(ShardOptions(mode, kRacks + 1, threads, seed));
  RowScenario row(ssim, std::move(spec));
  row.Start();
  ssim.RunUntil(Milliseconds(20));

  ShardedScenarioResult result;
  result.events = ssim.events_executed();
  for (int r = 0; r < kRacks; ++r) {
    for (size_t c = 0; c < row.client_count(r); ++c) {
      AppendClient(&result, row.client(r, c));
    }
    const RackOrchestrator& rack = *row.rack_orchestrator(r);
    result.counters.push_back(rack.total_shifts());
    result.counters.push_back(rack.failures_detected());
    result.counters.push_back(rack.recoveries());
    result.counters.push_back(rack.flap_suppressions());
    result.counters.push_back(rack.checkpoints_taken());
    result.counters.push_back(rack.decision_log().size());
    result.counters.push_back(row.rack(r).faults().fault_log().size());
    result.counters.push_back(row.rack(r).faults().device_deaths());
    result.counters.push_back(
        static_cast<uint64_t>(rack.ledger().committed_watts() * 1e6));
    result.watts += row.rack(r).meter().MeanWatts(0, Milliseconds(20));
  }
  const RowOrchestrator& orch = *row.row_orchestrator();
  result.counters.push_back(orch.caps_issued());
  result.counters.push_back(orch.reports_received());
  result.counters.push_back(orch.apportion_rounds());
  result.counters.push_back(orch.global_brownouts());
  result.counters.push_back(orch.decision_log().size());
  result.counters.push_back(
      static_cast<uint64_t>(orch.ledger().apportioned_watts() * 1e6));
  return result;
}

TEST(EngineDiffTest, ShardedPowerRowIdenticalToSingleQueue) {
  for (const uint64_t seed : {7u, 11u, 13u}) {
    const ShardedScenarioResult reference =
        RunShardedPowerRow(Mode::kSingleQueue, 1, seed);
    EXPECT_GT(reference.events, 50000u) << "seed " << seed;
    // The row machinery actually ran: reports crossed shards, the global
    // brownout fired and the wave of deaths was detected.
    const size_t row_base = reference.counters.size() - 6;
    EXPECT_GT(reference.counters[row_base + 1], 0u) << "reports";
    EXPECT_EQ(reference.counters[row_base + 3], 1u) << "global brownout";
    const ShardedScenarioResult parallel =
        RunShardedPowerRow(Mode::kParallel, 4, seed);
    ExpectIdentical(reference, parallel, seed);
  }
}

TEST(EngineDiffTest, RunUntilBoundaryMatchesAcrossEngines) {
  for (const auto kind :
       {Simulation::EngineKind::kCalendar, Simulation::EngineKind::kHeap}) {
    Simulation sim(3, kind);
    Trace trace;
    std::vector<uint64_t> ids;
    for (int i = 0; i < 20; ++i) {
      // depth 6: record-only events, so exactly one event per 10 us slot.
      sim.Schedule(Microseconds(10 * i), DiffDriver{&sim, &trace, &ids, 99ULL * (i + 1),
                                                    static_cast<uint64_t>(i), 6});
    }
    sim.RunUntil(Microseconds(95));
    EXPECT_EQ(trace.size(), 10u) << "engine " << static_cast<int>(kind);
    EXPECT_EQ(sim.Now(), Microseconds(95));
  }
}

}  // namespace
}  // namespace incod
