// Tests for the FPGA NIC, switch ASIC, conventional NICs and SmartNIC data.
#include <gtest/gtest.h>

#include <memory>

#include "src/app/smartnic_app.h"
#include "src/device/conventional_nic.h"
#include "src/device/fpga_nic.h"
#include "src/device/smartnic.h"
#include "src/device/switch_asic.h"
#include "src/kvs/kv_protocol.h"
#include "src/kvs/lake.h"
#include "src/net/topology.h"
#include "src/sim/simulation.h"

namespace incod {
namespace {

class CollectorSink : public PacketSink {
 public:
  void Receive(Packet packet) override { packets.push_back(std::move(packet)); }
  std::string SinkName() const override { return "collector"; }
  std::vector<Packet> packets;
};

// Minimal FPGA app that consumes matching packets and echoes to network.
class EchoFpgaApp : public FpgaApp {
 public:
  AppProto proto() const override { return AppProto::kKv; }
  std::string AppName() const override { return "echo-hw"; }
  std::vector<ModulePowerSpec> PowerModules() const override {
    return {MakeModuleSpec("logic", 2.0, 0.6, 1.0),
            MakeModuleSpec("dram_if", 4.8, 1.0, 0.6)};
  }
  double DynamicWattsAtCapacity() const override { return 1.0; }
  FpgaPipelineSpec PipelineSpec() const override {
    FpgaPipelineSpec spec;
    spec.workers = 2;
    spec.worker_service = Nanoseconds(500);
    spec.pipeline_latency = Microseconds(1);
    spec.input_queue_capacity = 8;
    return spec;
  }
  void Process(Packet packet) override {
    ++processed;
    Packet reply;
    reply.src = nic()->config().device_node;
    reply.dst = packet.src;
    reply.proto = AppProto::kKv;
    nic()->TransmitToNetwork(reply);
  }
  int processed = 0;
};

struct FpgaHarness {
  FpgaHarness(bool standalone = false, bool with_host = true)
      : sim(), topo(sim), fpga(sim, MakeConfig(standalone)) {
    fpga.InstallApp(&app);
    net_link = topo.Connect(&net_side, &fpga);
    fpga.SetNetworkLink(net_link);
    if (with_host) {
      host_link = topo.Connect(&fpga, &host_side);
      fpga.SetHostLink(host_link);
    }
  }
  static FpgaNicConfig MakeConfig(bool standalone) {
    FpgaNicConfig config;
    config.host_node = 1;
    config.device_node = 50;
    config.standalone = standalone;
    return config;
  }
  Packet KvPacket(NodeId src, NodeId dst) {
    Packet pkt;
    pkt.src = src;
    pkt.dst = dst;
    pkt.proto = AppProto::kKv;
    return pkt;
  }
  Simulation sim;
  Topology topo;
  CollectorSink net_side;
  CollectorSink host_side;
  EchoFpgaApp app;
  FpgaNic fpga;
  Link* net_link;
  Link* host_link = nullptr;
};

TEST(FpgaNicTest, InactivePassesThroughToHost) {
  FpgaHarness h;
  h.fpga.SetAppActive(false);
  h.fpga.Receive(h.KvPacket(100, 1));
  h.sim.Run();
  EXPECT_EQ(h.host_side.packets.size(), 1u);
  EXPECT_EQ(h.app.processed, 0);
  EXPECT_EQ(h.fpga.delivered_to_host(), 1u);
}

TEST(FpgaNicTest, ActiveProcessesMatchingTraffic) {
  FpgaHarness h;
  h.fpga.SetAppActive(true);
  h.fpga.Receive(h.KvPacket(100, 1));
  h.sim.Run();
  EXPECT_EQ(h.app.processed, 1);
  EXPECT_EQ(h.net_side.packets.size(), 1u);
  EXPECT_TRUE(h.host_side.packets.empty());
  EXPECT_EQ(h.fpga.processed_in_hardware(), 1u);
}

TEST(FpgaNicTest, NonMatchingTrafficGoesToHostEvenWhenActive) {
  FpgaHarness h;
  h.fpga.SetAppActive(true);
  Packet raw = h.KvPacket(100, 1);
  raw.proto = AppProto::kRaw;
  h.fpga.Receive(raw);
  h.sim.Run();
  EXPECT_EQ(h.host_side.packets.size(), 1u);
  EXPECT_EQ(h.app.processed, 0);
}

TEST(FpgaNicTest, HostEgressForwardsToNetwork) {
  FpgaHarness h;
  h.fpga.Receive(h.KvPacket(1, 100));  // src == host node.
  h.sim.Run();
  EXPECT_EQ(h.net_side.packets.size(), 1u);
}

TEST(FpgaNicTest, AppIngressCountedEvenWhenInactive) {
  FpgaHarness h;
  h.fpga.SetAppActive(false);
  h.fpga.Receive(h.KvPacket(100, 1));
  h.fpga.Receive(h.KvPacket(100, 1));
  h.sim.Run();
  EXPECT_EQ(h.fpga.app_ingress_packets(), 2u);
}

TEST(FpgaNicTest, ReferenceNicPowerIsShellPlusPcie) {
  Simulation sim;
  FpgaNicConfig config;
  FpgaNic bare(sim, config);  // No app installed: the reference NIC.
  EXPECT_DOUBLE_EQ(bare.PowerWatts(), kFpgaShellWatts + kFpgaPcieWatts);
}

TEST(FpgaNicTest, PowerStatesFollowGatingControls) {
  FpgaHarness h;
  const double idle = h.fpga.PowerWatts();  // 11 + 2 + 4.8 = 17.8.
  EXPECT_NEAR(idle, 17.8, 1e-9);
  h.fpga.SetClockGating(true);  // logic 2.0 -> 1.2.
  EXPECT_NEAR(h.fpga.PowerWatts(), 17.0, 1e-9);
  h.fpga.SetMemoryReset(true);  // dram 4.8 -> 2.88.
  EXPECT_NEAR(h.fpga.PowerWatts(), 15.08, 1e-9);
  // Activating restores everything to active draw.
  h.fpga.SetAppActive(true);
  EXPECT_NEAR(h.fpga.PowerWatts(), 17.8, 1e-9);
}

TEST(FpgaNicTest, PowerGatedModuleStaysOff) {
  FpgaHarness h;
  h.fpga.PowerGateModule("dram_if");
  EXPECT_NEAR(h.fpga.PowerWatts(), 13.0, 1e-9);
  h.fpga.SetAppActive(true);  // Gated module must not wake.
  EXPECT_NEAR(h.fpga.PowerWatts(), 13.0, 1e-9);
}

TEST(FpgaNicTest, StandalonePowerIncludesPsuOverhead) {
  FpgaHarness inserver(/*standalone=*/false, /*with_host=*/false);
  FpgaHarness standalone(/*standalone=*/true, /*with_host=*/false);
  EXPECT_GT(standalone.fpga.PowerWatts(), inserver.fpga.PowerWatts() + 2.0);
}

TEST(FpgaNicTest, StandaloneDropsHostTraffic) {
  FpgaHarness h(/*standalone=*/true, /*with_host=*/false);
  h.fpga.SetAppActive(true);
  Packet raw = h.KvPacket(100, 1);
  raw.proto = AppProto::kRaw;
  h.fpga.Receive(raw);
  h.sim.Run();
  EXPECT_EQ(h.fpga.dropped(), 1u);
}

TEST(FpgaNicTest, PipelineDropsWhenOverloaded) {
  FpgaHarness h;
  h.fpga.SetAppActive(true);
  // 2 workers x 500 ns = 4 Mpps capacity; queue 8. Blast 100 at once.
  for (int i = 0; i < 100; ++i) {
    h.fpga.Receive(h.KvPacket(100, 1));
  }
  h.sim.Run();
  EXPECT_GT(h.fpga.dropped(), 0u);
  EXPECT_LT(h.app.processed, 100);
}

TEST(FpgaNicTest, MemoryResetNotifiesApp) {
  struct ResetProbeApp : EchoFpgaApp {
    void OnMemoryReset() override { ++resets; }
    int resets = 0;
  };
  Simulation sim;
  Topology topo(sim);
  FpgaNicConfig config;
  FpgaNic fpga(sim, config);
  ResetProbeApp app;
  fpga.InstallApp(&app);
  fpga.SetMemoryReset(true);
  fpga.SetMemoryReset(true);  // Idempotent: only the edge notifies.
  EXPECT_EQ(app.resets, 1);
  fpga.SetMemoryReset(false);
  fpga.SetMemoryReset(true);
  EXPECT_EQ(app.resets, 2);
}

TEST(FpgaNicTest, SecondAppInstallRejected) {
  Simulation sim;
  FpgaNic fpga(sim, FpgaNicConfig{});
  EchoFpgaApp a;
  EchoFpgaApp b;
  fpga.InstallApp(&a);
  EXPECT_THROW(fpga.InstallApp(&b), std::logic_error);
  EXPECT_THROW(FpgaNic(sim, FpgaNicConfig{}).SetAppActive(true), std::logic_error);
}

// ---- Switch ASIC ----

TEST(SwitchAsicTest, IdlePowerIsSameWithAndWithoutPrograms) {
  Simulation sim;
  SwitchAsic sw(sim, SwitchAsicConfig{});
  const double idle = sw.PowerWatts();
  DiagProgram diag;
  sw.LoadProgram(&diag);
  EXPECT_DOUBLE_EQ(sw.PowerWatts(), idle);  // §6: identical at idle.
}

TEST(SwitchAsicTest, NormalizedIdleFraction) {
  Simulation sim;
  SwitchAsicConfig config;
  SwitchAsic sw(sim, config);
  EXPECT_NEAR(sw.NormalizedPower(), config.idle_power_fraction, 1e-9);
}

TEST(SwitchAsicTest, LineRatePpsMatchesConfig) {
  Simulation sim;
  SwitchAsic sw(sim, SwitchAsicConfig{});
  // 32 x 40G = 1.28 Tbps at 64 B -> 2.5 Gpps (§6).
  EXPECT_NEAR(sw.LineRatePps(), 2.5e9, 1e7);
}

TEST(SwitchAsicTest, MinMaxSpreadUnder20Percent) {
  SwitchAsicConfig config;
  // At full utilization (without programs) power is Pmax; idle 0.84 Pmax.
  EXPECT_GT(config.idle_power_fraction, 0.8);
}

TEST(SwitchAsicTest, ProgramOverheadScalesWithLoad) {
  Simulation sim;
  Topology topo(sim);
  SwitchAsicConfig config;
  config.rate_window = Milliseconds(1);
  SwitchAsic sw(sim, config);
  CollectorSink host;
  topo.ConnectToSwitch(&sw, &host, 1);
  DiagProgram diag;
  sw.LoadProgram(&diag);
  // Push some traffic through to raise the observed rate.
  for (int i = 0; i < 1000; ++i) {
    Packet pkt;
    pkt.src = 9;
    pkt.dst = 1;
    sw.Receive(pkt);
  }
  const double with_diag = sw.PowerWatts();
  const double forwarding_only = sw.ForwardingOnlyWatts();
  EXPECT_GT(with_diag, forwarding_only);
  // At utilization u the diag overhead is 4.8 % of base at most.
  EXPECT_LE(with_diag / forwarding_only, 1.048 + 1e-9);
}

TEST(SwitchAsicTest, UnloadProgramRestoresPower) {
  Simulation sim;
  SwitchAsic sw(sim, SwitchAsicConfig{});
  DiagProgram diag;
  sw.LoadProgram(&diag);
  EXPECT_EQ(sw.LoadedPrograms().size(), 1u);
  sw.UnloadProgram("diag.p4");
  EXPECT_TRUE(sw.LoadedPrograms().empty());
  EXPECT_THROW(sw.LoadProgram(nullptr), std::invalid_argument);
}

// ---- Conventional NIC ----

TEST(ConventionalNicTest, PassesThroughBothDirections) {
  Simulation sim;
  Topology topo(sim);
  ConventionalNic nic(sim, MellanoxConnectX3Config(1));
  CollectorSink net;
  CollectorSink host;
  Link* net_link = topo.Connect(&net, &nic);
  Link* host_link = topo.Connect(&nic, &host);
  nic.SetNetworkLink(net_link);
  nic.SetHostLink(host_link);
  Packet in;
  in.src = 100;
  in.dst = 1;
  nic.Receive(in);
  Packet out;
  out.src = 1;
  out.dst = 100;
  nic.Receive(out);
  sim.Run();
  EXPECT_EQ(host.packets.size(), 1u);
  EXPECT_EQ(net.packets.size(), 1u);
}

TEST(ConventionalNicTest, IntelNicCapsPacketRate) {
  Simulation sim;
  Topology topo(sim);
  ConventionalNic nic(sim, IntelX520Config(1));
  CollectorSink host;
  Link* host_link = topo.Connect(&nic, &host);
  nic.SetHostLink(host_link);
  // Blast 10000 packets instantaneously; the 600 Kpps cap + 128-slot buffer
  // forces drops.
  for (int i = 0; i < 10000; ++i) {
    Packet pkt;
    pkt.src = 100;
    pkt.dst = 1;
    nic.Receive(pkt);
  }
  sim.Run();
  EXPECT_GT(nic.dropped(), 0u);
  EXPECT_LT(host.packets.size(), 10000u);
}

TEST(ConventionalNicTest, PresetsDiffer) {
  const auto mellanox = MellanoxConnectX3Config(1);
  const auto intel = IntelX520Config(1);
  EXPECT_GT(mellanox.watts, intel.watts);  // §4.2: Intel more efficient...
  EXPECT_EQ(mellanox.max_pps, 0);          // ...but Mellanox sustains more.
  EXPECT_GT(intel.max_pps, 0);
}

// ---- SmartNIC presets ----

TEST(SmartNicTest, PresetsCoverAllArchitectures) {
  const auto presets = StandardSmartNicPresets();
  ASSERT_EQ(presets.size(), 4u);
  bool fpga = false;
  bool soc = false;
  for (const auto& p : presets) {
    EXPECT_LE(p.max_watts, 25.0);  // §10: PCIe slot budget.
    EXPECT_GT(OpsPerWattAtPeak(p), 1e6);  // "millions of operations per Watt".
    if (p.arch == SmartNicArch::kFpga) {
      fpga = true;
      // AccelNet: 17-19 W, ~4 Mpps/W.
      EXPECT_NEAR(OpsPerWattAtPeak(p) / 1e6, 4.0, 0.5);
    }
    if (p.arch == SmartNicArch::kSoc) {
      soc = true;
      EXPECT_FALSE(p.scalable_resources);  // The §10 "resource wall".
    }
  }
  EXPECT_TRUE(fpga);
  EXPECT_TRUE(soc);
  EXPECT_STREQ(SmartNicArchName(SmartNicArch::kAsicPlusFpga), "asic+fpga");
}

// Pin the preset efficiency figures. OpsPerWattAtPeak is what the placement
// advisor ranks §10 boards by, and the AccelNet anchor is the paper's one
// hard number ("close to 4 Mpps/W"): preset edits must not drift silently.
TEST(SmartNicTest, OpsPerWattPinnedAgainstPaperFigures) {
  for (const auto& p : StandardSmartNicPresets()) {
    EXPECT_DOUBLE_EQ(OpsPerWattAtPeak(p), p.peak_mpps * 1e6 / p.max_watts) << p.name;
  }
  const SmartNicPreset accelnet = SmartNicPresetByName("accelnet-fpga");
  // 72 Mpps on a 19 W board: 3.789... Mpps/W, the §10 "close to 4 Mpps/W".
  EXPECT_DOUBLE_EQ(OpsPerWattAtPeak(accelnet), 72.0e6 / 19.0);
  EXPECT_NEAR(OpsPerWattAtPeak(accelnet) / 1e6, 4.0, 0.25);
  EXPECT_DOUBLE_EQ(OpsPerWattAtPeak(SmartNicPresetByName("agilio-asic")),
                   120.0e6 / 25.0);
  EXPECT_DOUBLE_EQ(OpsPerWattAtPeak(SmartNicPresetByName("innova-asic+fpga")),
                   90.0e6 / 25.0);
  EXPECT_DOUBLE_EQ(OpsPerWattAtPeak(SmartNicPresetByName("bluefield-soc")),
                   30.0e6 / 25.0);
  EXPECT_THROW(SmartNicPresetByName("no-such-board"), std::invalid_argument);
}

// ---- SmartNIC as an application substrate (§10 placement) ----

struct SmartNicAppHarness {
  explicit SmartNicAppHarness(const std::string& preset_name = "accelnet-fpga")
      : nic(sim, SmartNicPresetByName(preset_name), Config()),
        net_link(sim, Link::Config{}),
        host_link(sim, Link::Config{}) {
    net_link.Connect(&nic, &network);
    host_link.Connect(&nic, &host);
    nic.SetNetworkLink(&net_link);
    nic.SetHostLink(&host_link);
  }

  static SmartNicDeviceConfig Config() {
    SmartNicDeviceConfig config;
    config.host_node = 1;
    config.device_node = 50;
    return config;
  }

  struct Collector : PacketSink {
    void Receive(Packet packet) override { packets.push_back(std::move(packet)); }
    std::string SinkName() const override { return "collector"; }
    std::vector<Packet> packets;
  };

  Packet Get(uint64_t key) {
    return MakeKvRequestPacket(/*src=*/100, /*dst=*/1, KvRequest{KvOp::kGet, key, 0},
                               /*id=*/key, sim.Now());
  }

  Simulation sim;
  Collector network;
  Collector host;
  SmartNic nic;
  Link net_link;
  Link host_link;
};

TEST(SmartNicHostingTest, HostedAppServesHitsAndPuntsMisses) {
  SmartNicAppHarness h;
  LakeConfig lake_config;
  lake_config.l1_entries = 64;
  SmartNicHostedApp app(std::make_unique<LakeCache>(lake_config),
                        SmartNicPlacementProfile{});
  h.nic.InstallApp(&app);
  auto* lake = app.inner_as<LakeCache>();
  ASSERT_NE(lake, nullptr);
  lake->WarmFill(0, 10, 64);
  h.nic.SetAppActive(true);

  h.nic.Receive(h.Get(3));    // Hit: answered by the engine.
  h.nic.Receive(h.Get(999));  // Miss: punted to the host.
  h.sim.RunUntil(Milliseconds(1));

  ASSERT_EQ(h.network.packets.size(), 1u);
  const KvResponse& resp = PayloadAs<KvResponse>(h.network.packets[0]);
  EXPECT_TRUE(resp.hit);
  EXPECT_EQ(resp.key, 3u);
  EXPECT_EQ(h.network.packets[0].src, 50u);  // Replies carry the board address.
  ASSERT_EQ(h.host.packets.size(), 1u);
  EXPECT_EQ(PayloadAs<KvRequest>(h.host.packets[0]).key, 999u);
  EXPECT_EQ(h.nic.processed_in_hardware(), 2u);
  EXPECT_EQ(h.nic.app_ingress_packets(), 2u);
}

TEST(SmartNicHostingTest, InactiveEnginePassesClaimedTrafficToHost) {
  SmartNicAppHarness h;
  SmartNicHostedApp app(std::make_unique<LakeCache>(LakeConfig{}),
                        SmartNicPlacementProfile{});
  h.nic.InstallApp(&app);
  h.nic.Receive(h.Get(1));
  h.sim.RunUntil(Milliseconds(1));
  EXPECT_EQ(h.network.packets.size(), 0u);
  ASSERT_EQ(h.host.packets.size(), 1u);
  // Classifier-visible even while parked: the §9.1 controller signal.
  EXPECT_EQ(h.nic.app_ingress_packets(), 1u);
  EXPECT_EQ(h.nic.processed_in_hardware(), 0u);
}

TEST(SmartNicHostingTest, PerArchProfileScalesTheEngineCeiling) {
  SmartNicPlacementProfile profile;
  profile.asic_mpps_fraction = 0.5;
  SmartNicAppHarness fpga_board("accelnet-fpga");
  SmartNicHostedApp on_fpga(std::make_unique<LakeCache>(LakeConfig{}), profile);
  fpga_board.nic.InstallApp(&on_fpga);
  EXPECT_DOUBLE_EQ(fpga_board.nic.OffloadCapacityPps(), 72e6);

  SmartNicAppHarness asic_board("agilio-asic");
  SmartNicHostedApp on_asic(std::make_unique<LakeCache>(LakeConfig{}), profile);
  asic_board.nic.InstallApp(&on_asic);
  EXPECT_DOUBLE_EQ(asic_board.nic.OffloadCapacityPps(), 0.5 * 120e6);
}

TEST(SmartNicHostingTest, SocResourceWallCapsConcurrentApps) {
  // BlueField-class SoC: 2 engine slots. A two-slot KVS firmware fills the
  // board; the next app hits the §10 resource wall loudly.
  SmartNicAppHarness soc("bluefield-soc");
  EXPECT_EQ(soc.nic.AppSlotCapacity(), 2);
  SmartNicPlacementProfile kvs_profile;
  kvs_profile.resource_slots = 2;
  SmartNicHostedApp kvs(std::make_unique<LakeCache>(LakeConfig{}), kvs_profile);
  soc.nic.InstallApp(&kvs);
  EXPECT_EQ(soc.nic.app_slots_used(), 2);
  SmartNicHostedApp second(std::make_unique<LakeCache>(LakeConfig{}),
                           SmartNicPlacementProfile{});
  EXPECT_THROW(soc.nic.InstallApp(&second), std::invalid_argument);

  // A scalable board fits both firmwares side by side.
  SmartNicAppHarness fpga_board("accelnet-fpga");
  SmartNicHostedApp kvs2(std::make_unique<LakeCache>(LakeConfig{}), kvs_profile);
  SmartNicHostedApp extra(std::make_unique<LakeCache>(LakeConfig{}),
                          SmartNicPlacementProfile{});
  fpga_board.nic.InstallApp(&kvs2);
  fpga_board.nic.InstallApp(&extra);
  EXPECT_EQ(fpga_board.nic.app_count(), 2u);
}

TEST(SmartNicHostingTest, LateInstallOntoLiveEngineActivatesTheApp) {
  // An app installed after SetAppActive(true) must receive the same
  // activation its already-installed peers got with the transition.
  struct CountingApp : App {
    AppProto proto() const override { return AppProto::kKv; }
    std::string AppName() const override { return "counting"; }
    bool SupportsPlacement(PlacementKind p) const override {
      return p == PlacementKind::kFpgaNic;
    }
    void HandlePacket(AppContext&, Packet) override {}
    void OnActivate() override { ++activations; }
    int activations = 0;
  };
  SmartNicAppHarness h;
  SmartNicHostedApp early(std::make_unique<CountingApp>(), SmartNicPlacementProfile{});
  h.nic.InstallApp(&early);
  h.nic.SetAppActive(true);
  SmartNicHostedApp late(std::make_unique<CountingApp>(), SmartNicPlacementProfile{});
  h.nic.InstallApp(&late);
  EXPECT_EQ(early.inner_as<CountingApp>()->activations, 1);
  EXPECT_EQ(late.inner_as<CountingApp>()->activations, 1);
}

TEST(SmartNicHostingTest, ReprogramParkWipesOnBoardState) {
  SmartNicAppHarness h("accelnet-fpga");  // Reprogrammable arch.
  LakeConfig lake_config;
  SmartNicHostedApp app(std::make_unique<LakeCache>(lake_config),
                        SmartNicPlacementProfile{});
  h.nic.InstallApp(&app);
  auto* lake = app.inner_as<LakeCache>();
  lake->WarmFill(0, 16, 64);
  ASSERT_GT(lake->l1().size(), 0u);
  h.nic.SetAppActive(false);
  h.nic.PowerGateParkedApp();  // Bitstream removed: on-board state is lost.
  EXPECT_EQ(lake->l1().size(), 0u);
  EXPECT_EQ(lake->l2()->size(), 0u);
}

TEST(SmartNicHostingTest, GatedParkMemoryResetWipesOnBoardState) {
  // The kGatedPark park policy holds memories in reset while the host
  // serves; entering reset must lose hosted state (the §9.2 re-warm) so a
  // later cold shift really starts cold.
  SmartNicAppHarness h;
  EXPECT_TRUE(h.nic.Traits().supports_memory_reset);
  SmartNicHostedApp app(std::make_unique<LakeCache>(LakeConfig{}),
                        SmartNicPlacementProfile{});
  h.nic.InstallApp(&app);
  auto* lake = app.inner_as<LakeCache>();
  lake->WarmFill(0, 16, 64);
  h.nic.SetAppActive(false);
  h.nic.SetMemoryReset(true);
  EXPECT_TRUE(h.nic.memory_reset());
  EXPECT_EQ(lake->l1().size(), 0u);
  EXPECT_EQ(lake->l2()->size(), 0u);
  // Re-entering reset without leaving it does not re-fire the wipe hook.
  lake->WarmFill(0, 4, 64);
  h.nic.SetMemoryReset(true);
  EXPECT_EQ(lake->l1().size(), 4u);
  h.nic.SetMemoryReset(false);
  h.nic.SetMemoryReset(true);
  EXPECT_EQ(lake->l1().size(), 0u);
}

}  // namespace
}  // namespace incod
