// Tests for the FPGA NIC, switch ASIC, conventional NICs and SmartNIC data.
#include <gtest/gtest.h>

#include <memory>

#include "src/device/conventional_nic.h"
#include "src/device/fpga_nic.h"
#include "src/device/smartnic.h"
#include "src/device/switch_asic.h"
#include "src/net/topology.h"
#include "src/sim/simulation.h"

namespace incod {
namespace {

class CollectorSink : public PacketSink {
 public:
  void Receive(Packet packet) override { packets.push_back(std::move(packet)); }
  std::string SinkName() const override { return "collector"; }
  std::vector<Packet> packets;
};

// Minimal FPGA app that consumes matching packets and echoes to network.
class EchoFpgaApp : public FpgaApp {
 public:
  AppProto proto() const override { return AppProto::kKv; }
  std::string AppName() const override { return "echo-hw"; }
  std::vector<ModulePowerSpec> PowerModules() const override {
    return {MakeModuleSpec("logic", 2.0, 0.6, 1.0),
            MakeModuleSpec("dram_if", 4.8, 1.0, 0.6)};
  }
  double DynamicWattsAtCapacity() const override { return 1.0; }
  FpgaPipelineSpec PipelineSpec() const override {
    FpgaPipelineSpec spec;
    spec.workers = 2;
    spec.worker_service = Nanoseconds(500);
    spec.pipeline_latency = Microseconds(1);
    spec.input_queue_capacity = 8;
    return spec;
  }
  void Process(Packet packet) override {
    ++processed;
    Packet reply;
    reply.src = nic()->config().device_node;
    reply.dst = packet.src;
    reply.proto = AppProto::kKv;
    nic()->TransmitToNetwork(reply);
  }
  int processed = 0;
};

struct FpgaHarness {
  FpgaHarness(bool standalone = false, bool with_host = true)
      : sim(), topo(sim), fpga(sim, MakeConfig(standalone)) {
    fpga.InstallApp(&app);
    net_link = topo.Connect(&net_side, &fpga);
    fpga.SetNetworkLink(net_link);
    if (with_host) {
      host_link = topo.Connect(&fpga, &host_side);
      fpga.SetHostLink(host_link);
    }
  }
  static FpgaNicConfig MakeConfig(bool standalone) {
    FpgaNicConfig config;
    config.host_node = 1;
    config.device_node = 50;
    config.standalone = standalone;
    return config;
  }
  Packet KvPacket(NodeId src, NodeId dst) {
    Packet pkt;
    pkt.src = src;
    pkt.dst = dst;
    pkt.proto = AppProto::kKv;
    return pkt;
  }
  Simulation sim;
  Topology topo;
  CollectorSink net_side;
  CollectorSink host_side;
  EchoFpgaApp app;
  FpgaNic fpga;
  Link* net_link;
  Link* host_link = nullptr;
};

TEST(FpgaNicTest, InactivePassesThroughToHost) {
  FpgaHarness h;
  h.fpga.SetAppActive(false);
  h.fpga.Receive(h.KvPacket(100, 1));
  h.sim.Run();
  EXPECT_EQ(h.host_side.packets.size(), 1u);
  EXPECT_EQ(h.app.processed, 0);
  EXPECT_EQ(h.fpga.delivered_to_host(), 1u);
}

TEST(FpgaNicTest, ActiveProcessesMatchingTraffic) {
  FpgaHarness h;
  h.fpga.SetAppActive(true);
  h.fpga.Receive(h.KvPacket(100, 1));
  h.sim.Run();
  EXPECT_EQ(h.app.processed, 1);
  EXPECT_EQ(h.net_side.packets.size(), 1u);
  EXPECT_TRUE(h.host_side.packets.empty());
  EXPECT_EQ(h.fpga.processed_in_hardware(), 1u);
}

TEST(FpgaNicTest, NonMatchingTrafficGoesToHostEvenWhenActive) {
  FpgaHarness h;
  h.fpga.SetAppActive(true);
  Packet raw = h.KvPacket(100, 1);
  raw.proto = AppProto::kRaw;
  h.fpga.Receive(raw);
  h.sim.Run();
  EXPECT_EQ(h.host_side.packets.size(), 1u);
  EXPECT_EQ(h.app.processed, 0);
}

TEST(FpgaNicTest, HostEgressForwardsToNetwork) {
  FpgaHarness h;
  h.fpga.Receive(h.KvPacket(1, 100));  // src == host node.
  h.sim.Run();
  EXPECT_EQ(h.net_side.packets.size(), 1u);
}

TEST(FpgaNicTest, AppIngressCountedEvenWhenInactive) {
  FpgaHarness h;
  h.fpga.SetAppActive(false);
  h.fpga.Receive(h.KvPacket(100, 1));
  h.fpga.Receive(h.KvPacket(100, 1));
  h.sim.Run();
  EXPECT_EQ(h.fpga.app_ingress_packets(), 2u);
}

TEST(FpgaNicTest, ReferenceNicPowerIsShellPlusPcie) {
  Simulation sim;
  FpgaNicConfig config;
  FpgaNic bare(sim, config);  // No app installed: the reference NIC.
  EXPECT_DOUBLE_EQ(bare.PowerWatts(), kFpgaShellWatts + kFpgaPcieWatts);
}

TEST(FpgaNicTest, PowerStatesFollowGatingControls) {
  FpgaHarness h;
  const double idle = h.fpga.PowerWatts();  // 11 + 2 + 4.8 = 17.8.
  EXPECT_NEAR(idle, 17.8, 1e-9);
  h.fpga.SetClockGating(true);  // logic 2.0 -> 1.2.
  EXPECT_NEAR(h.fpga.PowerWatts(), 17.0, 1e-9);
  h.fpga.SetMemoryReset(true);  // dram 4.8 -> 2.88.
  EXPECT_NEAR(h.fpga.PowerWatts(), 15.08, 1e-9);
  // Activating restores everything to active draw.
  h.fpga.SetAppActive(true);
  EXPECT_NEAR(h.fpga.PowerWatts(), 17.8, 1e-9);
}

TEST(FpgaNicTest, PowerGatedModuleStaysOff) {
  FpgaHarness h;
  h.fpga.PowerGateModule("dram_if");
  EXPECT_NEAR(h.fpga.PowerWatts(), 13.0, 1e-9);
  h.fpga.SetAppActive(true);  // Gated module must not wake.
  EXPECT_NEAR(h.fpga.PowerWatts(), 13.0, 1e-9);
}

TEST(FpgaNicTest, StandalonePowerIncludesPsuOverhead) {
  FpgaHarness inserver(/*standalone=*/false, /*with_host=*/false);
  FpgaHarness standalone(/*standalone=*/true, /*with_host=*/false);
  EXPECT_GT(standalone.fpga.PowerWatts(), inserver.fpga.PowerWatts() + 2.0);
}

TEST(FpgaNicTest, StandaloneDropsHostTraffic) {
  FpgaHarness h(/*standalone=*/true, /*with_host=*/false);
  h.fpga.SetAppActive(true);
  Packet raw = h.KvPacket(100, 1);
  raw.proto = AppProto::kRaw;
  h.fpga.Receive(raw);
  h.sim.Run();
  EXPECT_EQ(h.fpga.dropped(), 1u);
}

TEST(FpgaNicTest, PipelineDropsWhenOverloaded) {
  FpgaHarness h;
  h.fpga.SetAppActive(true);
  // 2 workers x 500 ns = 4 Mpps capacity; queue 8. Blast 100 at once.
  for (int i = 0; i < 100; ++i) {
    h.fpga.Receive(h.KvPacket(100, 1));
  }
  h.sim.Run();
  EXPECT_GT(h.fpga.dropped(), 0u);
  EXPECT_LT(h.app.processed, 100);
}

TEST(FpgaNicTest, MemoryResetNotifiesApp) {
  struct ResetProbeApp : EchoFpgaApp {
    void OnMemoryReset() override { ++resets; }
    int resets = 0;
  };
  Simulation sim;
  Topology topo(sim);
  FpgaNicConfig config;
  FpgaNic fpga(sim, config);
  ResetProbeApp app;
  fpga.InstallApp(&app);
  fpga.SetMemoryReset(true);
  fpga.SetMemoryReset(true);  // Idempotent: only the edge notifies.
  EXPECT_EQ(app.resets, 1);
  fpga.SetMemoryReset(false);
  fpga.SetMemoryReset(true);
  EXPECT_EQ(app.resets, 2);
}

TEST(FpgaNicTest, SecondAppInstallRejected) {
  Simulation sim;
  FpgaNic fpga(sim, FpgaNicConfig{});
  EchoFpgaApp a;
  EchoFpgaApp b;
  fpga.InstallApp(&a);
  EXPECT_THROW(fpga.InstallApp(&b), std::logic_error);
  EXPECT_THROW(FpgaNic(sim, FpgaNicConfig{}).SetAppActive(true), std::logic_error);
}

// ---- Switch ASIC ----

TEST(SwitchAsicTest, IdlePowerIsSameWithAndWithoutPrograms) {
  Simulation sim;
  SwitchAsic sw(sim, SwitchAsicConfig{});
  const double idle = sw.PowerWatts();
  DiagProgram diag;
  sw.LoadProgram(&diag);
  EXPECT_DOUBLE_EQ(sw.PowerWatts(), idle);  // §6: identical at idle.
}

TEST(SwitchAsicTest, NormalizedIdleFraction) {
  Simulation sim;
  SwitchAsicConfig config;
  SwitchAsic sw(sim, config);
  EXPECT_NEAR(sw.NormalizedPower(), config.idle_power_fraction, 1e-9);
}

TEST(SwitchAsicTest, LineRatePpsMatchesConfig) {
  Simulation sim;
  SwitchAsic sw(sim, SwitchAsicConfig{});
  // 32 x 40G = 1.28 Tbps at 64 B -> 2.5 Gpps (§6).
  EXPECT_NEAR(sw.LineRatePps(), 2.5e9, 1e7);
}

TEST(SwitchAsicTest, MinMaxSpreadUnder20Percent) {
  SwitchAsicConfig config;
  // At full utilization (without programs) power is Pmax; idle 0.84 Pmax.
  EXPECT_GT(config.idle_power_fraction, 0.8);
}

TEST(SwitchAsicTest, ProgramOverheadScalesWithLoad) {
  Simulation sim;
  Topology topo(sim);
  SwitchAsicConfig config;
  config.rate_window = Milliseconds(1);
  SwitchAsic sw(sim, config);
  CollectorSink host;
  topo.ConnectToSwitch(&sw, &host, 1);
  DiagProgram diag;
  sw.LoadProgram(&diag);
  // Push some traffic through to raise the observed rate.
  for (int i = 0; i < 1000; ++i) {
    Packet pkt;
    pkt.src = 9;
    pkt.dst = 1;
    sw.Receive(pkt);
  }
  const double with_diag = sw.PowerWatts();
  const double forwarding_only = sw.ForwardingOnlyWatts();
  EXPECT_GT(with_diag, forwarding_only);
  // At utilization u the diag overhead is 4.8 % of base at most.
  EXPECT_LE(with_diag / forwarding_only, 1.048 + 1e-9);
}

TEST(SwitchAsicTest, UnloadProgramRestoresPower) {
  Simulation sim;
  SwitchAsic sw(sim, SwitchAsicConfig{});
  DiagProgram diag;
  sw.LoadProgram(&diag);
  EXPECT_EQ(sw.LoadedPrograms().size(), 1u);
  sw.UnloadProgram("diag.p4");
  EXPECT_TRUE(sw.LoadedPrograms().empty());
  EXPECT_THROW(sw.LoadProgram(nullptr), std::invalid_argument);
}

// ---- Conventional NIC ----

TEST(ConventionalNicTest, PassesThroughBothDirections) {
  Simulation sim;
  Topology topo(sim);
  ConventionalNic nic(sim, MellanoxConnectX3Config(1));
  CollectorSink net;
  CollectorSink host;
  Link* net_link = topo.Connect(&net, &nic);
  Link* host_link = topo.Connect(&nic, &host);
  nic.SetNetworkLink(net_link);
  nic.SetHostLink(host_link);
  Packet in;
  in.src = 100;
  in.dst = 1;
  nic.Receive(in);
  Packet out;
  out.src = 1;
  out.dst = 100;
  nic.Receive(out);
  sim.Run();
  EXPECT_EQ(host.packets.size(), 1u);
  EXPECT_EQ(net.packets.size(), 1u);
}

TEST(ConventionalNicTest, IntelNicCapsPacketRate) {
  Simulation sim;
  Topology topo(sim);
  ConventionalNic nic(sim, IntelX520Config(1));
  CollectorSink host;
  Link* host_link = topo.Connect(&nic, &host);
  nic.SetHostLink(host_link);
  // Blast 10000 packets instantaneously; the 600 Kpps cap + 128-slot buffer
  // forces drops.
  for (int i = 0; i < 10000; ++i) {
    Packet pkt;
    pkt.src = 100;
    pkt.dst = 1;
    nic.Receive(pkt);
  }
  sim.Run();
  EXPECT_GT(nic.dropped(), 0u);
  EXPECT_LT(host.packets.size(), 10000u);
}

TEST(ConventionalNicTest, PresetsDiffer) {
  const auto mellanox = MellanoxConnectX3Config(1);
  const auto intel = IntelX520Config(1);
  EXPECT_GT(mellanox.watts, intel.watts);  // §4.2: Intel more efficient...
  EXPECT_EQ(mellanox.max_pps, 0);          // ...but Mellanox sustains more.
  EXPECT_GT(intel.max_pps, 0);
}

// ---- SmartNIC presets ----

TEST(SmartNicTest, PresetsCoverAllArchitectures) {
  const auto presets = StandardSmartNicPresets();
  ASSERT_EQ(presets.size(), 4u);
  bool fpga = false;
  bool soc = false;
  for (const auto& p : presets) {
    EXPECT_LE(p.max_watts, 25.0);  // §10: PCIe slot budget.
    EXPECT_GT(OpsPerWattAtPeak(p), 1e6);  // "millions of operations per Watt".
    if (p.arch == SmartNicArch::kFpga) {
      fpga = true;
      // AccelNet: 17-19 W, ~4 Mpps/W.
      EXPECT_NEAR(OpsPerWattAtPeak(p) / 1e6, 4.0, 0.5);
    }
    if (p.arch == SmartNicArch::kSoc) {
      soc = true;
      EXPECT_FALSE(p.scalable_resources);  // The §10 "resource wall".
    }
  }
  EXPECT_TRUE(fpga);
  EXPECT_TRUE(soc);
  EXPECT_STREQ(SmartNicArchName(SmartNicArch::kAsicPlusFpga), "asic+fpga");
}

}  // namespace
}  // namespace incod
